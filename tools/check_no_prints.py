#!/usr/bin/env python
"""Lint: no bare ``print(`` calls inside the library.

Experiment and library code must report through the telemetry layer
(:mod:`repro.telemetry`) or the sanctioned stdout path
(:func:`repro.experiments.reporting.emit`); stray prints bypass both
and break consumers that parse the CLI output.  The check walks the
AST — not the raw text — so ``print`` mentioned in docstrings or
comments does not trip it.

Covers ``src/repro``, ``benchmarks``, and ``tools``.  Each allow-list
entry carries the reason it is a sanctioned stdout boundary, printed
when an offending file is *almost* allowed (same basename) to make
accidental near-misses debuggable; the lint itself writes through
``sys.stdout`` directly, which the AST check does not flag —
``print`` is the lint target because it is the idiom stray debug
output arrives in.

Usage::

    python tools/check_no_prints.py [SRC_DIR]

Exits non-zero listing every offending ``file:line``.
"""

from __future__ import annotations

import ast
import os
import sys

#: Paths (relative to the package root) where print calls are allowed,
#: mapped to the reason each one is a sanctioned stdout boundary.
ALLOWED = {
    os.path.join("src", "repro", "cli.py"):
        "the CLI is the stdout boundary",
    os.path.join("src", "repro", "experiments", "reporting.py"):
        "home of the sanctioned emit() path",
    os.path.join("src", "repro", "telemetry", "dashboard.py"):
        "embedded HTML/JS asset; main() dumps it for dev preview",
}


def find_prints(path: str):
    """Yield line numbers of bare ``print(...)`` calls in one file."""
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield node.lineno


def main(argv) -> int:
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    roots = [
        os.path.join(root, "src", "repro"),
        os.path.join(root, "benchmarks"),
        os.path.join(root, "tools"),
    ]
    failures = []
    for tree in roots:
        for dirpath, dirnames, filenames in os.walk(tree):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                if rel in ALLOWED:
                    continue
                for lineno in find_prints(path):
                    failures.append((rel, lineno))
    if failures:
        sys.stderr.write(
            "bare print() calls found (use repro.telemetry or "
            "repro.experiments.reporting.emit instead):\n"
        )
        by_basename = {
            os.path.basename(allowed): (allowed, reason)
            for allowed, reason in ALLOWED.items()
        }
        for rel, lineno in failures:
            hint = by_basename.get(os.path.basename(rel))
            note = ""
            if hint is not None and hint[0] != rel:
                note = f"  (only {hint[0]} is allowed: {hint[1]})"
            sys.stderr.write(f"  {rel}:{lineno}{note}\n")
        return 1
    sys.stdout.write(
        "no stray print() calls in src/repro, benchmarks, tools\n"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
