"""Streaming telemetry: a bounded fan-out bus plus the SSE wire format.

:class:`TelemetryBus` tees trace records and metric snapshots into
bounded per-subscriber queues so HTTP threads (or tests) can watch a
running simulation without ever touching it.  The feed is a plain
listener attribute on :class:`~repro.telemetry.trace.TraceLog` — the
same ``None``-attribute discipline as every other telemetry hook — and
the :class:`SnapshotSampler` that drives it is *sim-time* based: a
metrics snapshot is published whenever the trace's simulated clock
crosses the sampling interval, never on a wall-clock timer.

Nothing in this module schedules events, draws randomness, or blocks
the publisher: ``publish`` appends to each subscriber's deque (dropping
that subscriber's oldest record, with accounting, when it is full) and
returns.  Golden traces, fork==cold, and ``jobs=N`` bit-identity all
hold with a live bus installed — pinned by
``tests/test_telemetry_live.py``.

The module-level :func:`install` hook is how ``--live-port`` reaches a
run: :func:`repro.telemetry.pipeline.attach_simulation` consults it and
wires the sampler into any simulation activated while a bus is
installed.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

#: Default bound of one subscriber's queue (records, not bytes).
DEFAULT_QUEUE_LIMIT = 1024

#: Default sim-time spacing of metric snapshots when the controller's
#: observation interval is unknown (ms).
DEFAULT_SNAPSHOT_MS = 2000.0


class Subscription:
    """One subscriber's bounded view of a :class:`TelemetryBus`.

    Records are delivered oldest-first; when the queue is full the
    *oldest* record is dropped (and counted in :attr:`dropped`) so a
    slow consumer always converges on the newest state instead of
    stalling the publisher.
    """

    __slots__ = ("_queue", "_cond", "_closed", "dropped", "delivered")

    def __init__(self, maxlen: int = DEFAULT_QUEUE_LIMIT):
        if maxlen < 1:
            raise ValueError("subscription queue bound must be >= 1")
        self._queue: deque = deque(maxlen=maxlen)
        self._cond = threading.Condition()
        self._closed = False
        #: Records evicted because this subscriber fell behind.
        self.dropped = 0
        #: Records handed out via :meth:`get`.
        self.delivered = 0

    def _offer(self, record: Dict) -> None:
        with self._cond:
            if self._closed:
                return
            if len(self._queue) == self._queue.maxlen:
                self._queue.popleft()
                self.dropped += 1
            self._queue.append(record)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Dict]:
        """Next record, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout or once the subscription is closed
        and drained.
        """
        with self._cond:
            if not self._queue and not self._closed:
                self._cond.wait(timeout)
            if not self._queue:
                return None
            self.delivered += 1
            return self._queue.popleft()

    def close(self) -> None:
        """Wake any blocked reader and refuse further records."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """True once the bus (or the reader) closed this subscription."""
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._queue)


class TelemetryBus:
    """Fan-out of telemetry records to bounded subscriber queues.

    ``publish`` is called from the simulation thread (via the trace
    listener) and must stay cheap and non-blocking: it appends to each
    subscriber's deque under that subscriber's lock and returns.  Slow
    subscribers lose *their own* oldest records — accounted per
    subscription — and never back-pressure the publisher or each other.
    """

    def __init__(self, default_maxlen: int = DEFAULT_QUEUE_LIMIT):
        self._default_maxlen = default_maxlen
        self._subscribers: List[Subscription] = []
        self._lock = threading.Lock()
        self._closed = False
        #: Total records ever published (delivered or dropped).
        self.published = 0

    def subscribe(self, maxlen: Optional[int] = None) -> Subscription:
        """Register and return a new bounded subscription."""
        sub = Subscription(maxlen or self._default_maxlen)
        with self._lock:
            if self._closed:
                sub.close()
            else:
                self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach ``sub`` (idempotent) and wake its reader."""
        with self._lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass
        sub.close()

    def publish(self, record: Dict) -> None:
        """Offer ``record`` to every subscriber; never blocks."""
        with self._lock:
            if self._closed:
                return
            self.published += 1
            subscribers = list(self._subscribers)
        for sub in subscribers:
            sub._offer(record)

    def close(self) -> None:
        """Close the bus and every live subscription."""
        with self._lock:
            self._closed = True
            subscribers = self._subscribers
            self._subscribers = []
        for sub in subscribers:
            sub.close()

    @property
    def subscriber_count(self) -> int:
        """Number of live subscriptions."""
        with self._lock:
            return len(self._subscribers)

    def total_dropped(self) -> int:
        """Records dropped across current subscribers."""
        with self._lock:
            return sum(sub.dropped for sub in self._subscribers)


class SnapshotSampler:
    """TraceLog listener: publish records plus sim-time metric deltas.

    Installed as ``telemetry.trace.listener`` when a live bus is
    wired.  Every trace record is forwarded as a ``trace`` bus record;
    whenever the record's simulated timestamp crosses the sampling
    interval the registry samplers run (read-only) and the instruments
    whose values changed since the last snapshot are published as one
    ``metrics`` record.  The sampler keys off the *record's* sim-time —
    no wall clock, no event scheduling — so a paused or forked
    simulation publishes nothing until its own clock advances.
    """

    __slots__ = ("_telemetry", "_bus", "interval_ms", "_next_t", "_last")

    def __init__(self, telemetry, bus: TelemetryBus,
                 interval_ms: float = DEFAULT_SNAPSHOT_MS):
        self._telemetry = telemetry
        self._bus = bus
        self.interval_ms = max(float(interval_ms), 1.0)
        self._next_t = 0.0
        self._last: Dict[Tuple, object] = {}

    def __call__(self, record: Dict) -> None:
        self._bus.publish({"type": "trace", "record": record})
        t = record.get("t")
        if isinstance(t, (int, float)) and t >= self._next_t:
            self.snapshot(float(t))

    def snapshot(self, t: float) -> None:
        """Publish the changed metric samples as of sim-time ``t``."""
        self._next_t = t + self.interval_ms
        self._telemetry.collect()
        changed = []
        for kind, name, labels, instrument in self._telemetry.registry.samples():
            if kind == "counter":
                value = instrument.value
            elif kind == "gauge":
                value = instrument.read()
            else:  # histogram: publish the cheap summary triple
                value = (instrument.count, instrument.stats.mean,
                         instrument.p95.value)
            key = (name, labels)
            if self._last.get(key) == value:
                continue
            self._last[key] = value
            entry = {"kind": kind, "name": name, "labels": dict(labels)}
            if kind == "histogram":
                entry.update(count=value[0], mean=value[1], p95=value[2])
            else:
                entry["value"] = value
            changed.append(entry)
        if changed:
            self._bus.publish({"type": "metrics", "t": t, "samples": changed})


# -- the module-level live hook ----------------------------------------

#: Bus consulted by ``attach_simulation``; None when live streaming is
#: off (the default), so attachment costs one module-global check.
_live_bus: Optional[TelemetryBus] = None

#: The most recently wired pipeline, for /metrics in live mode.
_live_telemetry = None


def install(bus: TelemetryBus) -> None:
    """Arm live streaming: simulations activated after this call wire
    a :class:`SnapshotSampler` feeding ``bus`` into their telemetry
    pipeline (attaching one even without an export directory)."""
    global _live_bus
    _live_bus = bus


def uninstall() -> None:
    """Disarm live streaming (idempotent)."""
    global _live_bus, _live_telemetry
    _live_bus = None
    _live_telemetry = None


def installed() -> Optional[TelemetryBus]:
    """The installed live bus, or None."""
    return _live_bus


def attached_telemetry():
    """The most recently live-wired pipeline (for ``/metrics``)."""
    return _live_telemetry


def wire(telemetry, interval_ms: float = DEFAULT_SNAPSHOT_MS) -> bool:
    """Wire ``telemetry`` to the installed bus; no-op when none is.

    Called by :func:`repro.telemetry.pipeline.attach_simulation` after
    attachment.  Publishes a ``run_start`` record carrying the
    pipeline's meta so dashboards can label the stream.
    """
    global _live_telemetry
    bus = _live_bus
    if bus is None:
        return False
    telemetry.trace.listener = SnapshotSampler(telemetry, bus, interval_ms)
    _live_telemetry = telemetry
    bus.publish({"type": "run_start", "meta": dict(telemetry.meta)})
    return True


# -- SSE wire format ---------------------------------------------------


def sse_format(event: str, data: Dict) -> str:
    """One Server-Sent-Events frame: ``event:`` + canonical JSON data.

    ``json.dumps`` never emits raw newlines, so the frame is always a
    single ``data:`` line — but :func:`parse_sse` still implements the
    multi-line join for spec compliance.
    """
    payload = json.dumps(data, sort_keys=True)
    return f"event: {event}\ndata: {payload}\n\n"


def parse_sse(text: str) -> List[Tuple[str, Dict]]:
    """Parse SSE frames back into ``(event, data)`` pairs.

    The inverse of :func:`sse_format` (round-trip pinned by tests):
    frames are separated by blank lines, ``:`` comment lines (the
    keepalives) are ignored, and multiple ``data:`` lines concatenate
    with newlines per the SSE specification.  A trailing partial frame
    (no terminating blank line yet) is ignored rather than raised on,
    since callers typically parse a truncated live stream.
    """
    frames: List[Tuple[str, Dict]] = []
    for block in text.split("\n\n"):
        event = "message"
        data_lines: List[str] = []
        for line in block.split("\n"):
            if not line or line.startswith(":"):
                continue
            if line.startswith("event:"):
                event = line[len("event:"):].strip()
            elif line.startswith("data:"):
                data_lines.append(line[len("data:"):].lstrip())
        if not data_lines:
            continue
        try:
            data = json.loads("\n".join(data_lines))
        except ValueError:
            continue  # truncated tail of a live stream
        frames.append((event, data))
    return frames
