"""A bounded append-only log that evicts its oldest entries.

:class:`RingLog` backs :attr:`repro.core.coordinator.Coordinator.decision_log`
— the coordinator's per-interval decision audit — with true ring
semantics: appends are O(1), the newest ``limit`` entries are retained,
and the oldest entry is evicted when the cap is reached (instead of the
historical list-slice truncation, which shifted the whole list on every
append once full).
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterator, List


class RingLog:
    """Keep the newest ``limit`` appended entries, oldest first."""

    __slots__ = ("_items", "_limit", "appended")

    def __init__(self, limit: int = 512):
        if limit < 1:
            raise ValueError("ring limit must be >= 1")
        self._limit = limit
        self._items: deque = deque(maxlen=limit)
        #: Total entries ever appended (evictions included).
        self.appended = 0

    def append(self, item) -> None:
        """Append ``item``, evicting the oldest entry when full."""
        self._items.append(item)
        self.appended += 1

    @property
    def limit(self) -> int:
        """Maximum number of retained entries."""
        return self._limit

    @limit.setter
    def limit(self, value: int) -> None:
        if value < 1:
            raise ValueError("ring limit must be >= 1")
        if value != self._limit:
            self._limit = value
            self._items = deque(
                islice(self._items, max(0, len(self._items) - value), None),
                maxlen=value,
            )

    @property
    def evicted(self) -> int:
        """How many entries have been evicted so far."""
        return self.appended - len(self._items)

    def to_list(self) -> List:
        """The retained entries as a list, oldest first."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._items)[index]
        return self._items[index]

    def __repr__(self) -> str:
        return (
            f"RingLog(limit={self._limit}, len={len(self._items)}, "
            f"appended={self.appended})"
        )
