"""Labeled metrics instruments: counters, gauges, histograms.

The registry is the metrics half of :mod:`repro.telemetry`.  Instruments
are memoized by ``(name, labels)`` so hot paths can cache the returned
object and pay only an attribute access plus the instrument update.
Histograms reuse the streaming estimators of :mod:`repro.sim.stats`
(Welford moments + a P² p95 marker), so no samples are retained.

Everything here is deterministic: no wall clock, no randomness, and
:meth:`MetricsRegistry.samples` yields instruments in sorted
``(name, labels)`` order regardless of creation order.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.sim.stats import OnlineStats, P2Quantile

#: Canonical label tuple: sorted (key, value-as-string) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount


class Gauge:
    """A point-in-time value, either set directly or sampled via ``fn``."""

    __slots__ = ("_fn", "value")

    def __init__(self, fn: Optional[Callable[[], float]] = None):
        self._fn = fn
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def read(self) -> float:
        """Current value (calls the sampling callback when given one)."""
        if self._fn is not None:
            return float(self._fn())
        return self.value


class Histogram:
    """A streaming distribution: count/sum/min/max/stddev plus p95."""

    __slots__ = ("stats", "p95")

    def __init__(self):
        self.stats = OnlineStats()
        self.p95 = P2Quantile(0.95)

    def add(self, value: float) -> None:
        """Fold one sample into the distribution."""
        self.stats.add(value)
        self.p95.add(value)

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self.stats.count

    @property
    def sum(self) -> float:
        """Sum of all samples (mean × count)."""
        return self.stats.mean * self.stats.count


def _label_set(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """All instruments of one telemetry pipeline, keyed by (name, labels)."""

    def __init__(self):
        self._instruments: Dict[Tuple[str, LabelSet], Tuple[str, object]] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, object],
             factory: Callable[[], object]):
        key = (name, _label_set(labels))
        entry = self._instruments.get(key)
        if entry is None:
            entry = (kind, factory())
            self._instruments[key] = entry
        elif entry[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {entry[0]}"
            )
        return entry[1]

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under ``(name, labels)``."""
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        return self._get("gauge", name, labels, lambda: Gauge(fn))

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram registered under ``(name, labels)``."""
        return self._get("histogram", name, labels, Histogram)

    def samples(self) -> Iterator[Tuple[str, str, LabelSet, object]]:
        """Yield ``(kind, name, labels, instrument)`` in sorted order."""
        for (name, labels), (kind, instrument) in sorted(
            self._instruments.items()
        ):
            yield kind, name, labels, instrument

    def __len__(self) -> int:
        return len(self._instruments)
