"""The telemetry pipeline: hot-path hooks, samplers, and attachment.

One :class:`Telemetry` object carries a simulation's metrics registry
and structured trace.  The wiring follows the fault layer's discipline:
every instrumented component holds a ``telemetry`` attribute (or a
``_tel_wait`` histogram on resources) that is ``None`` by default, so
disabled telemetry costs one attribute check on the hot paths and
nothing else.

Two kinds of collection coexist:

* **hot-path hooks** (:meth:`Telemetry.on_access`,
  :meth:`Telemetry.on_evictions`, the resource wait histograms, trace
  emits from the feedback loop) record at event time, instruments
  cached per call site;
* **export-time samplers** read cumulative state the simulation already
  tracks (pool occupancy, network accounting, resource utilization,
  loop counters, agent lifetime statistics) only when an exporter runs
  — they cost nothing during the simulation.

Nothing here draws randomness, schedules events, or reads the wall
clock; all timestamps are simulated milliseconds supplied by callers.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import TraceLog


class Telemetry:
    """Metrics registry + trace log for one simulation."""

    __slots__ = (
        "registry", "trace", "meta",
        "_access", "_evictions", "_fault_counts", "_samplers",
    )

    def __init__(self):
        self.registry = MetricsRegistry()
        self.trace = TraceLog()
        #: Identifying context (seed, node count, ...) for exports.
        self.meta: Dict = {}
        self._access: Dict = {}
        self._evictions: Dict = {}
        self._fault_counts: Dict = {}
        self._samplers: List[Callable[[], None]] = []

    # -- hot-path hooks ------------------------------------------------

    def on_access(self, node_id: int, class_id: int, level,
                  elapsed_ms: float) -> None:
        """Record one completed page access and its response time."""
        key = (node_id, class_id, level)
        pair = self._access.get(key)
        if pair is None:
            labels = {"node": node_id, "class": class_id,
                      "level": level.name.lower()}
            pair = (
                self.registry.counter("repro_page_access_total", **labels),
                self.registry.histogram("repro_page_access_ms", **labels),
            )
            self._access[key] = pair
        counter, hist = pair
        counter.value += 1
        hist.add(elapsed_ms)

    def on_evictions(self, node_id: int, count: int) -> None:
        """Record ``count`` pages evicted from node ``node_id``."""
        counter = self._evictions.get(node_id)
        if counter is None:
            counter = self.registry.counter(
                "repro_pool_evictions_total", node=node_id
            )
            self._evictions[node_id] = counter
        counter.value += count

    def on_fault(self, fault) -> None:
        """Record an injected fault activation (trace + counter)."""
        counter = self._fault_counts.get(fault.kind)
        if counter is None:
            counter = self.registry.counter(
                "repro_fault_activations_total", fault=fault.kind
            )
            self._fault_counts[fault.kind] = counter
        counter.value += 1
        self.trace.emit(
            "fault", fault.time_ms, fault=fault.kind, node=fault.node,
            duration_ms=fault.duration_ms,
            dropped_pages=fault.dropped_pages,
            nodes=list(fault.nodes),
        )

    def emit(self, kind: str, t: float, **fields) -> None:
        """Append a structured trace record (see :class:`TraceLog`)."""
        self.trace.emit(kind, t, **fields)

    # -- export-time sampling ------------------------------------------

    def add_sampler(self, fn: Callable[[], None]) -> None:
        """Register a callback that updates the registry at export."""
        self._samplers.append(fn)

    def collect(self) -> None:
        """Run all samplers (exporters call this before reading)."""
        for fn in self._samplers:
            fn()


# -- attachment --------------------------------------------------------


def attach_cluster(cluster) -> Telemetry:
    """Wire a fresh :class:`Telemetry` into a cluster's hot paths.

    Installs the per-object sinks (``cluster.telemetry``, each buffer
    manager's ``telemetry``, the CPU/disk/network wait histograms) and
    registers the export-time samplers over state the cluster already
    tracks.  Attaching mutates attributes only — no events, no RNG — so
    a warmed simulation's fingerprint is unchanged.
    """
    tel = Telemetry()
    tel.meta = {
        "seed": cluster.rng.seed,
        "num_nodes": cluster.num_nodes,
        "attached_at_ms": cluster.env.now,
    }
    cluster.telemetry = tel
    registry = tel.registry
    for node in cluster.nodes:
        node.buffers.telemetry = tel
        node.cpu.resource._tel_wait = registry.histogram(
            "repro_resource_wait_ms", node=node.node_id, resource="cpu"
        )
        node.disk.resource._tel_wait = registry.histogram(
            "repro_resource_wait_ms", node=node.node_id, resource="disk"
        )
    cluster.network.medium._tel_wait = registry.histogram(
        "repro_resource_wait_ms", node="shared", resource="network"
    )
    tel.add_sampler(_cluster_sampler(cluster, tel))
    return tel


def attach_simulation(sim) -> Telemetry:
    """Attach telemetry to a full simulation (cluster + feedback loop).

    Besides the cluster wiring this arms the controller's extended
    p50/p90/p95/p99 quantile tracking and — when a live bus is
    installed (``repro.telemetry.live.install``) — tees the trace into
    it via a sim-time snapshot sampler paced at the controller's
    observation interval.
    """
    from repro.telemetry import live

    tel = attach_cluster(sim.cluster)
    controller = getattr(sim, "controller", None)
    if controller is not None:
        controller.telemetry = tel
        controller.track_extended_quantiles()
        for coordinator in controller.coordinators.values():
            coordinator.telemetry = tel
        tel.add_sampler(_controller_sampler(controller, tel))
        live.wire(tel, interval_ms=controller.interval_ms)
    else:
        live.wire(tel)
    return tel


def _cluster_sampler(cluster, tel: Telemetry) -> Callable[[], None]:
    def sample() -> None:
        registry = tel.registry
        for node in cluster.nodes:
            manager = node.buffers
            for class_id in sorted(manager._pools):
                pool = manager._pools[class_id]
                labels = {"node": node.node_id, "pool": class_id}
                registry.gauge(
                    "repro_pool_capacity_pages", **labels
                ).set(pool.capacity)
                registry.gauge("repro_pool_pages", **labels).set(
                    sum(1 for _ in pool.page_ids())
                )
            for class_id in sorted(manager.hits_by_class):
                registry.counter(
                    "repro_buffer_hits_total",
                    node=node.node_id, **{"class": class_id},
                ).value = manager.hits_by_class[class_id]
            for class_id in sorted(manager.misses_by_class):
                registry.counter(
                    "repro_buffer_misses_total",
                    node=node.node_id, **{"class": class_id},
                ).value = manager.misses_by_class[class_id]
            for name, res in (("cpu", node.cpu.resource),
                              ("disk", node.disk.resource)):
                labels = {"node": node.node_id, "resource": name}
                registry.gauge(
                    "repro_resource_utilization", **labels
                ).set(res.utilization())
                registry.gauge(
                    "repro_resource_mean_wait_ms", **labels
                ).set(res.mean_wait)
                registry.counter(
                    "repro_resource_grants_total", **labels
                ).value = res._grants
        medium = cluster.network.medium
        labels = {"node": "shared", "resource": "network"}
        registry.gauge(
            "repro_resource_utilization", **labels
        ).set(medium.utilization())
        registry.gauge(
            "repro_resource_mean_wait_ms", **labels
        ).set(medium.mean_wait)
        registry.counter(
            "repro_resource_grants_total", **labels
        ).value = medium._grants
        env = cluster.env
        registry.gauge("repro_event_pool_recycled").set(
            env.event_pool_size
        )
        registry.gauge("repro_event_pool_high_water").set(
            env.event_pool_high_water
        )
        accounting = cluster.network.accounting
        for kind in sorted(accounting.bytes_by_kind, key=lambda k: k.value):
            registry.counter(
                "repro_network_bytes_total", kind=kind.value
            ).value = accounting.bytes_by_kind[kind]
            registry.counter(
                "repro_network_messages_total", kind=kind.value
            ).value = accounting.messages_by_kind.get(kind, 0)
    return sample


def _controller_sampler(controller, tel: Telemetry) -> Callable[[], None]:
    def sample() -> None:
        registry = tel.registry
        registry.counter(
            "repro_controller_reports_dropped_total"
        ).value = controller.reports_dropped
        registry.counter(
            "repro_controller_allocation_retries_total"
        ).value = controller.allocation_retries
        registry.counter(
            "repro_controller_allocation_unconfirmed_total"
        ).value = controller.allocation_unconfirmed
        registry.counter(
            "repro_controller_restarts_observed_total"
        ).value = controller.restarts_observed
        registry.counter(
            "repro_controller_coordinator_crashes_total"
        ).value = controller.coordinator_crashes
        registry.counter(
            "repro_controller_reports_unreachable_total"
        ).value = controller.reports_unreachable
        registry.counter(
            "repro_controller_allocations_deferred_total"
        ).value = controller.allocations_deferred
        registry.counter(
            "repro_controller_stale_allocations_rejected_total"
        ).value = controller.stale_allocations_rejected
        registry.counter(
            "repro_controller_degraded_entries_total"
        ).value = controller.degraded_entries
        registry.counter(
            "repro_controller_degraded_exits_total"
        ).value = controller.degraded_exits
        registry.gauge(
            "repro_controller_degraded_nodes"
        ).set(sum(controller.degraded))
        registry.counter(
            "repro_cluster_directory_reconciles_total"
        ).value = controller.cluster.reconciles
        registry.counter(
            "repro_cluster_directory_repairs_total"
        ).value = controller.cluster.reconcile_repairs
        registry.gauge(
            "repro_controller_intervals"
        ).set(controller.interval_index)
        for class_id, coordinator in sorted(controller.coordinators.items()):
            labels = {"class": class_id}
            registry.gauge(
                "repro_coordinator_epoch", **labels
            ).set(coordinator.epoch)
            registry.counter(
                "repro_coordinator_optimizations_total", **labels
            ).value = coordinator.optimizations
            registry.counter(
                "repro_coordinator_lp_solves_total", **labels
            ).value = coordinator.lp_solves
            registry.counter(
                "repro_coordinator_invalidated_points_total", **labels
            ).value = coordinator.invalidated_points
            registry.counter(
                "repro_coordinator_decisions_total", **labels
            ).value = coordinator.decision_log.appended
            registry.gauge(
                "repro_coordinator_goal_ms", **labels
            ).set(coordinator.goal_ms)
            quantiles = controller.response_quantiles(class_id)
            if quantiles:
                for q, value in sorted(quantiles.items()):
                    registry.gauge(
                        "repro_class_response_ms",
                        quantile=f"{q:g}", **labels,
                    ).set(value)
        for (class_id, node_id), agent in sorted(controller.agents.items()):
            if agent.lifetime_completions == 0:
                continue
            labels = {"class": class_id, "node": node_id}
            registry.gauge(
                "repro_response_ms_mean", **labels
            ).set(agent.lifetime_mean_response_ms)
            registry.gauge(
                "repro_response_ms_p95", **labels
            ).set(agent.lifetime_p95_response_ms)
            registry.counter(
                "repro_operations_completed_total", **labels
            ).value = agent.lifetime_completions
    return sample
