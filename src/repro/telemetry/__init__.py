"""Zero-overhead observability: metrics, structured traces, exporters.

The telemetry layer is **off by default**: every instrumented component
keeps a ``telemetry`` attribute (or a ``_tel_wait`` histogram slot on
resources) that is ``None`` until :func:`attach_simulation` installs a
pipeline, so the hot paths pay a single attribute check — the same
discipline as the idle fault layer.  Attachment is opt-in per
simulation (``Simulation(telemetry=...)`` / ``--telemetry DIR``) or
globally via the module-level switch below.

Telemetry never draws from RNG streams, never schedules events, and
never reads the wall clock: all timestamps are simulated milliseconds,
records are buffered in memory, and files are only written at export
time (post-fork in forked sweeps).  Enabled or disabled, simulation
results are bit-identical.

See ``docs/observability.md`` for the architecture and the exporter
formats (Prometheus text, JSONL trace, Chrome trace-event timeline).
"""

from repro.telemetry.exporters import (
    chrome_trace,
    merge_point_dirs,
    prometheus_text,
    write_export,
)
from repro.telemetry.pipeline import (
    Telemetry,
    attach_cluster,
    attach_simulation,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.ring import RingLog
from repro.telemetry.trace import TraceLog

#: Module-level master switch.  When False (the default) simulations
#: attach telemetry only when explicitly configured; flipping it to
#: True via :func:`enable` makes every subsequently activated
#: simulation attach an in-memory pipeline even without an export
#: directory (useful for interactive inspection via ``sim.telemetry``).
_enabled = False


def is_enabled() -> bool:
    """Whether the module-level telemetry switch is on."""
    return _enabled


def enable() -> None:
    """Turn the module-level telemetry switch on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the module-level telemetry switch off (the default)."""
    global _enabled
    _enabled = False


def live_installed() -> bool:
    """Whether a live streaming bus is installed (``--live-port``).

    Lazy: the :mod:`repro.telemetry.live` module is only imported once
    something has installed a bus, so the common non-streaming path
    costs a dict lookup in ``sys.modules``.
    """
    import sys

    live = sys.modules.get("repro.telemetry.live")
    return live is not None and live.installed() is not None


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RingLog",
    "Telemetry",
    "TraceLog",
    "attach_cluster",
    "attach_simulation",
    "chrome_trace",
    "disable",
    "enable",
    "is_enabled",
    "live_installed",
    "merge_point_dirs",
    "prometheus_text",
    "write_export",
]
