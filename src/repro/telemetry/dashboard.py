"""The single-file HTML/JS convergence dashboard served at ``/``.

The asset is embedded as a module string so the live service stays
stdlib-only and dependency-free: no bundler, no static file tree, one
GET.  The page drives everything through the service's own endpoints —
``/api/runs`` for the catalog, ``/events`` for the SSE stream (live or
``?replay=<id>&speed=N``) — and renders with bare canvas/DOM:

* per-class response time vs. goal lines (``decision`` records),
* per-node allocation shares (``allocation_ship`` records),
* degraded/epoch/fault timeline lanes (``degraded_enter``/``exit``,
  ``coord_restart``, ``fault``, ``interval`` records),
* event-pool / scheduler gauges (``metrics`` frames).

Run ``python -m repro.telemetry.dashboard > dashboard.html`` to dump
the asset for standalone hacking; the module is on the no-print lint
allow-list for exactly that entry point.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro convergence dashboard</title>
<style>
  :root { --bg:#11151a; --panel:#1a2027; --ink:#d7dde4; --dim:#78858f;
          --grid:#2a323b; --goal:#e0b341; --ok:#4fba6f; --bad:#e05d5d; }
  body { margin:0; font:13px/1.4 ui-monospace,Menlo,Consolas,monospace;
         background:var(--bg); color:var(--ink); }
  header { display:flex; gap:1em; align-items:center; padding:8px 14px;
           background:var(--panel); border-bottom:1px solid var(--grid); }
  header h1 { font-size:14px; margin:0; font-weight:600; }
  select,button,input { background:var(--bg); color:var(--ink);
         border:1px solid var(--grid); border-radius:3px; padding:3px 6px;
         font:inherit; }
  #status { color:var(--dim); margin-left:auto; }
  main { display:grid; grid-template-columns:2fr 1fr; gap:10px;
         padding:10px 14px; }
  section { background:var(--panel); border:1px solid var(--grid);
            border-radius:4px; padding:8px 10px; }
  section h2 { font-size:12px; margin:0 0 6px; color:var(--dim);
               text-transform:uppercase; letter-spacing:.06em; }
  canvas { width:100%; display:block; }
  #lanes { grid-column:1 / -1; }
  #gauges table { width:100%; border-collapse:collapse; }
  #gauges td { padding:2px 4px; border-bottom:1px solid var(--grid); }
  #gauges td:last-child { text-align:right; color:var(--ok); }
  .legend { color:var(--dim); font-size:11px; margin-top:4px; }
</style>
</head>
<body>
<header>
  <h1>repro &middot; multiclass memory-goal convergence</h1>
  <select id="run"><option value="">live stream</option></select>
  <label>speed <input id="speed" type="number" value="50" min="0"
                      step="10" style="width:5em"></label>
  <button id="go">watch</button>
  <span id="status">idle</span>
</header>
<main>
  <section><h2>response time vs. goal (ms)</h2>
    <canvas id="rt" height="220"></canvas>
    <div class="legend">solid: observed per class &middot;
      dashed: goal &middot; red x: goal violated</div></section>
  <section><h2>allocation share per node (bytes)</h2>
    <canvas id="alloc" height="220"></canvas>
    <div class="legend">latest shipped allocation, stacked by
      class</div></section>
  <section id="lanes"><h2>timeline: intervals &middot; degraded &middot;
      epochs &middot; faults</h2>
    <canvas id="lane" height="120"></canvas></section>
  <section id="gauges"><h2>scheduler / pools</h2>
    <table id="gtab"></table></section>
</main>
<script>
"use strict";
const palette = ["#5aa9e6","#e6a85a","#9a6ae6","#5ae6c8","#e65a9d"];
const state = {
  decisions: {},        // class -> [{t, rt, goal, ok}]
  alloc: {},            // node -> class -> bytes
  lanes: {degraded:{}, epochs:[], faults:[], intervals:[]},
  gauges: {},
  t: 0,
};
const statusEl = document.getElementById("status");
let source = null, dirty = false;

function classColor(id) { return palette[(id - 1 + 5) % 5]; }

function onTrace(rec) {
  state.t = Math.max(state.t, rec.t || 0);
  if (rec.kind === "decision") {
    (state.decisions[rec.class_id] ||= []).push(
      {t: rec.t, rt: rec.observed_rt, goal: rec.goal_ms,
       ok: rec.satisfied});
  } else if (rec.kind === "allocation_ship") {
    (state.alloc[rec.node] ||= {})[rec.class_id] = rec.requested_bytes;
  } else if (rec.kind === "interval") {
    state.lanes.intervals.push(rec.t);
  } else if (rec.kind === "degraded_enter") {
    (state.lanes.degraded[rec.node] ||= []).push({on: rec.t, off: null});
  } else if (rec.kind === "degraded_exit") {
    const spans = state.lanes.degraded[rec.node];
    if (spans && spans.length) spans[spans.length - 1].off = rec.t;
  } else if (rec.kind === "coord_restart") {
    state.lanes.epochs.push({t: rec.t, epoch: rec.epoch});
  } else if (rec.kind === "fault") {
    state.lanes.faults.push({t: rec.t, kind: rec.fault,
                             dur: rec.duration_ms || 0});
  }
  dirty = true;
}

function onMetrics(frame) {
  for (const s of frame.samples) {
    const tag = Object.entries(s.labels).map(([k, v]) => k + "=" + v)
      .sort().join(",");
    state.gauges[s.name + (tag ? "{" + tag + "}" : "")] =
      s.kind === "histogram"
        ? s.count + " n, p95 " + (+s.p95).toFixed(1)
        : s.value;
  }
  dirty = true;
}

function sizeCanvas(c) {
  const w = c.clientWidth || 600;
  if (c.width !== w * devicePixelRatio) {
    c.width = w * devicePixelRatio;
    c.height = c.getAttribute("height") * devicePixelRatio;
  }
  const g = c.getContext("2d");
  g.setTransform(devicePixelRatio, 0, 0, devicePixelRatio, 0, 0);
  return [g, w, +c.getAttribute("height")];
}

function drawRT() {
  const [g, w, h] = sizeCanvas(document.getElementById("rt"));
  g.clearRect(0, 0, w, h);
  const all = Object.values(state.decisions).flat();
  if (!all.length) return;
  const t1 = state.t || 1;
  const y1 = Math.max(...all.map(d => Math.max(d.rt, d.goal))) * 1.15 || 1;
  const X = t => 30 + (w - 40) * t / t1;
  const Y = v => h - 18 - (h - 30) * v / y1;
  g.strokeStyle = getComputedStyle(document.body)
    .getPropertyValue("--grid");
  g.strokeRect(30, 12, w - 40, h - 30);
  g.fillStyle = "#78858f";
  g.fillText((y1).toFixed(0) + "ms", 2, 20);
  g.fillText((t1 / 1000).toFixed(0) + "s", w - 34, h - 4);
  for (const [cid, pts] of Object.entries(state.decisions)) {
    g.strokeStyle = classColor(+cid);
    g.setLineDash([]);
    g.beginPath();
    pts.forEach((d, i) => i ? g.lineTo(X(d.t), Y(d.rt))
                            : g.moveTo(X(d.t), Y(d.rt)));
    g.stroke();
    g.setLineDash([5, 4]);
    g.beginPath();
    pts.forEach((d, i) => i ? g.lineTo(X(d.t), Y(d.goal))
                            : g.moveTo(X(d.t), Y(d.goal)));
    g.stroke();
    g.setLineDash([]);
    g.fillStyle = "#e05d5d";
    for (const d of pts) if (!d.ok) {
      g.fillText("x", X(d.t) - 3, Y(d.rt) - 4);
    }
  }
}

function drawAlloc() {
  const [g, w, h] = sizeCanvas(document.getElementById("alloc"));
  g.clearRect(0, 0, w, h);
  const nodes = Object.keys(state.alloc).map(Number).sort((a, b) => a - b);
  if (!nodes.length) return;
  const total = Math.max(...nodes.map(n =>
    Object.values(state.alloc[n]).reduce((a, b) => a + b, 0))) || 1;
  const bw = Math.min(60, (w - 40) / nodes.length - 8);
  nodes.forEach((n, i) => {
    let y = h - 18;
    const x = 24 + i * ((w - 40) / nodes.length);
    for (const cid of Object.keys(state.alloc[n]).sort()) {
      const frac = state.alloc[n][cid] / total;
      const bh = frac * (h - 40);
      g.fillStyle = classColor(+cid);
      g.fillRect(x, y - bh, bw, bh);
      y -= bh;
    }
    g.fillStyle = "#78858f";
    g.fillText("n" + n, x + bw / 2 - 7, h - 4);
  });
}

function drawLanes() {
  const [g, w, h] = sizeCanvas(document.getElementById("lane"));
  g.clearRect(0, 0, w, h);
  const t1 = state.t || 1;
  const X = t => 60 + (w - 70) * t / t1;
  const lane = (i, name) => {
    const y = 14 + i * 26;
    g.fillStyle = "#78858f";
    g.fillText(name, 2, y + 10);
    return y;
  };
  let y = lane(0, "intervals");
  g.fillStyle = "#3b4652";
  for (const t of state.lanes.intervals) g.fillRect(X(t), y, 1.5, 12);
  y = lane(1, "degraded");
  g.fillStyle = "#e0b341";
  for (const spans of Object.values(state.lanes.degraded))
    for (const s of spans)
      g.fillRect(X(s.on), y, Math.max(2, X(s.off ?? state.t) - X(s.on)), 12);
  y = lane(2, "epochs");
  g.fillStyle = "#9a6ae6";
  for (const e of state.lanes.epochs) {
    g.fillRect(X(e.t), y, 2, 12);
    g.fillText("e" + e.epoch, X(e.t) + 3, y + 10);
  }
  y = lane(3, "faults");
  g.fillStyle = "#e05d5d";
  for (const f of state.lanes.faults) {
    g.fillRect(X(f.t), y, Math.max(2, (w - 70) * f.dur / t1), 12);
  }
}

function drawGauges() {
  const rows = Object.entries(state.gauges)
    .filter(([k]) => /event_pool|resource_utilization|intervals|degraded_nodes|reports_dropped/.test(k))
    .sort();
  document.getElementById("gtab").innerHTML = rows.map(([k, v]) =>
    "<tr><td>" + k + "</td><td>" +
    (typeof v === "number" ? (+v).toPrecision(4) : v) +
    "</td></tr>").join("");
}

function redraw() {
  if (!dirty) return;
  dirty = false;
  drawRT(); drawAlloc(); drawLanes(); drawGauges();
}
setInterval(redraw, 250);

function reset() {
  Object.assign(state, {decisions: {}, alloc: {},
    lanes: {degraded: {}, epochs: [], faults: [], intervals: []},
    gauges: {}, t: 0});
  dirty = true;
}

function watch() {
  if (source) source.close();
  reset();
  const run = document.getElementById("run").value;
  const speed = document.getElementById("speed").value || 50;
  const url = run ? "/events?replay=" + encodeURIComponent(run) +
                    "&speed=" + speed
                  : "/events";
  source = new EventSource(url);
  statusEl.textContent = run ? "replaying " + run : "waiting for run...";
  source.addEventListener("trace", e =>
    onTrace(JSON.parse(e.data).record));
  source.addEventListener("metrics", e => onMetrics(JSON.parse(e.data)));
  source.addEventListener("run_start", e => {
    const meta = JSON.parse(e.data).meta || {};
    statusEl.textContent = "live: seed " + meta.seed + ", " +
      meta.num_nodes + " nodes";
  });
  source.addEventListener("end", () => {
    statusEl.textContent = "replay complete @ " +
      (state.t / 1000).toFixed(1) + "s sim";
    source.close();
  });
  source.onerror = () => { statusEl.textContent = "stream closed"; };
}

fetch("/api/runs").then(r => r.json()).then(doc => {
  const sel = document.getElementById("run");
  for (const run of doc.runs || []) {
    const opt = document.createElement("option");
    opt.value = run.id;
    opt.textContent = run.name + " (" + run.records + " records)";
    sel.appendChild(opt);
  }
  if (doc.runs && doc.runs.length && !doc.live) {
    sel.value = doc.runs[0].id;
  }
}).catch(() => {});
document.getElementById("go").addEventListener("click", watch);
</script>
</body>
</html>
"""


def main() -> None:
    """Dump the dashboard asset to stdout (dev preview entry point)."""
    print(DASHBOARD_HTML)


if __name__ == "__main__":
    main()
