"""Structured trace log: deterministic, in-memory event records.

Each record is a plain dict with at least ``kind`` (the record type) and
``t`` (simulated milliseconds).  Records are buffered in memory in emit
order — nothing is written to disk until an exporter runs, so emitting
never perturbs event ordering, RNG streams, or the wall clock.

An optional ``listener`` callable (the live-streaming tee, see
:mod:`repro.telemetry.live`) observes each record as it is emitted.  It
follows the same ``None``-attribute discipline as the rest of the
telemetry layer: ``None`` by default, one attribute check per emit, and
listeners must never mutate the record or touch simulation state.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class TraceLog:
    """Append-only buffer of structured trace records."""

    __slots__ = ("records", "listener")

    def __init__(self):
        self.records: List[Dict] = []
        #: Observer of each emitted record; None when not streaming.
        self.listener: Optional[Callable[[Dict], None]] = None

    def emit(self, kind: str, t: float, **fields) -> None:
        """Record an event of ``kind`` at simulated time ``t`` (ms)."""
        record = {"kind": kind, "t": t}
        record.update(fields)
        self.records.append(record)
        if self.listener is not None:
            self.listener(record)

    def __len__(self) -> int:
        return len(self.records)

    def kinds(self) -> Dict[str, int]:
        """Count of records per ``kind``, sorted by kind."""
        counts: Dict[str, int] = {}
        for record in self.records:
            kind = record["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))
