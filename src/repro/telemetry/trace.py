"""Structured trace log: deterministic, in-memory event records.

Each record is a plain dict with at least ``kind`` (the record type) and
``t`` (simulated milliseconds).  Records are buffered in memory in emit
order — nothing is written to disk until an exporter runs, so emitting
never perturbs event ordering, RNG streams, or the wall clock.
"""

from __future__ import annotations

from typing import Dict, List


class TraceLog:
    """Append-only buffer of structured trace records."""

    __slots__ = ("records",)

    def __init__(self):
        self.records: List[Dict] = []

    def emit(self, kind: str, t: float, **fields) -> None:
        """Record an event of ``kind`` at simulated time ``t`` (ms)."""
        record = {"kind": kind, "t": t}
        record.update(fields)
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def kinds(self) -> Dict[str, int]:
        """Count of records per ``kind``, sorted by kind."""
        counts: Dict[str, int] = {}
        for record in self.records:
            kind = record["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))
