"""The live observability HTTP service (stdlib-only).

:class:`LiveService` wraps a threading ``http.server`` around the
telemetry layer in one of two modes:

* **live** (:meth:`LiveService.live`) — installs a
  :class:`~repro.telemetry.live.TelemetryBus` via the module-level
  hook, so any simulation activated afterwards streams trace records
  and metric snapshots to ``/events`` subscribers while it runs;
* **replay** (:meth:`LiveService.replay`) — serves a recorded
  ``--telemetry DIR`` tree: the run catalog under ``/api/runs`` and
  any run's trace re-streamed over SSE at adjustable speed.

Endpoints (both modes): ``/`` single-file HTML dashboard, ``/metrics``
Prometheus text, ``/events`` SSE, ``/api/runs`` + ``/api/runs/<id>``
JSON catalog.  Everything runs on HTTP server threads; the simulation
thread only ever appends to bounded bus queues, so serving cannot
perturb results.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.telemetry import catalog, live
from repro.telemetry.dashboard import DASHBOARD_HTML
from repro.telemetry.exporters import METRICS_TEXT_FILE, prometheus_text
from repro.telemetry.live import TelemetryBus, sse_format

#: Seconds between SSE keepalive comments when a live stream is idle.
KEEPALIVE_S = 5.0

#: Ceiling on one replay pacing sleep, so even speed=1 over a long
#: interval gap stays responsive to disconnects (seconds).
MAX_REPLAY_SLEEP_S = 1.0


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against the owning :class:`LiveService`."""

    protocol_version = "HTTP/1.1"
    service: "LiveService" = None  # set on the per-service subclass

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: D102 - silence stderr
        pass

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, doc: Dict, status: int = 200) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self._send(status, "application/json; charset=utf-8", body)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/":
                self._send(200, "text/html; charset=utf-8",
                           DASHBOARD_HTML.encode("utf-8"))
            elif url.path == "/metrics":
                self._get_metrics()
            elif url.path == "/api/runs":
                self._get_runs()
            elif url.path.startswith("/api/runs/"):
                self._get_run(url.path[len("/api/runs/"):])
            elif url.path == "/events":
                self._get_events(query)
            else:
                self._send_json({"error": f"no route {url.path}"}, 404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    # -- endpoints -----------------------------------------------------

    def _get_metrics(self) -> None:
        text = self.service.metrics_text()
        self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                   text.encode("utf-8"))

    def _get_runs(self) -> None:
        runs = self.service.runs()
        self._send_json({
            "live": self.service.bus is not None,
            "runs": [info.to_dict() for info in runs],
        })

    def _get_run(self, run_id: str) -> None:
        info = self.service.find_run(run_id)
        if info is None:
            self._send_json({"error": f"no run {run_id!r}"}, 404)
            return
        self._send_json(catalog.run_detail(info))

    def _get_events(self, query: Dict) -> None:
        replay = query.get("replay", [None])[0]
        if replay is None and self.service.bus is None:
            replay = "latest"
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Access-Control-Allow-Origin", "*")
        # Unframed stream: the connection itself delimits the body.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        if replay is not None:
            speed = float(query.get("speed", ["0"])[0] or 0.0)
            self.service.stream_replay(self.wfile, replay, speed)
        else:
            self.service.stream_live(self.wfile)


class LiveService:
    """The observability HTTP service; one per port.

    Construct via :meth:`live` (stream a running experiment) or
    :meth:`replay` (serve a recorded telemetry tree); both accept
    ``port=0`` to bind an ephemeral port (read it back from
    :attr:`port` after :meth:`start`).
    """

    def __init__(self, *, bus: Optional[TelemetryBus] = None,
                 telemetry_dir: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 0):
        if bus is None and telemetry_dir is None:
            raise ValueError("need a live bus or a telemetry directory")
        self.bus = bus
        self.telemetry_dir = telemetry_dir
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- constructors --------------------------------------------------

    @classmethod
    def live(cls, port: int = 0, host: str = "127.0.0.1",
             telemetry_dir: Optional[str] = None) -> "LiveService":
        """Start streaming mode: install a bus and arm the live hook.

        Simulations activated while the service runs attach telemetry
        and stream to it; an optional ``telemetry_dir`` additionally
        serves any recorded runs alongside the live stream.
        """
        bus = TelemetryBus()
        service = cls(bus=bus, telemetry_dir=telemetry_dir,
                      host=host, port=port)
        live.install(bus)
        return service

    @classmethod
    def replay(cls, telemetry_dir: str, port: int = 0,
               host: str = "127.0.0.1") -> "LiveService":
        """Catalog/replay mode over a recorded telemetry tree."""
        return cls(telemetry_dir=telemetry_dir, host=host, port=port)

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "LiveService":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-live-:{self.port}", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down, close the bus, and disarm the live hook."""
        self._stopping.set()
        if self.bus is not None:
            if live.installed() is self.bus:
                live.uninstall()
            self.bus.close()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- endpoint backends ---------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus exposition: live registry, or the recorded one."""
        if self.bus is not None:
            telemetry = live.attached_telemetry()
            if telemetry is not None:
                # The sim thread may be registering new instruments
                # while we render; one retry absorbs the race without
                # locking the hot path.
                for _ in range(3):
                    try:
                        return prometheus_text(telemetry.registry)
                    except RuntimeError:
                        continue
            if self.telemetry_dir is None:
                return "# no simulation attached yet\n"
        parts = []
        for info in self.runs():
            path = f"{info.path}/{METRICS_TEXT_FILE}"
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    parts.append(fh.read())
            except OSError:
                continue
        return "".join(parts) or "# no recorded metrics\n"

    def runs(self):
        """Catalog of recorded runs (empty in pure live mode)."""
        if self.telemetry_dir is None:
            return []
        return catalog.scan_runs(self.telemetry_dir)

    def find_run(self, run_id: str):
        """Look up a recorded run by id (``"latest"`` works too)."""
        if self.telemetry_dir is None:
            return None
        return catalog.find_run(self.telemetry_dir, run_id)

    def stream_live(self, wfile) -> None:
        """Pump the bus subscription to one SSE client until it drops."""
        sub = self.bus.subscribe()
        try:
            while not self._stopping.is_set():
                record = sub.get(timeout=KEEPALIVE_S)
                if record is None:
                    if sub.closed:
                        break
                    wfile.write(b": keepalive\n\n")
                    wfile.flush()
                    continue
                event = record.get("type", "message")
                wfile.write(sse_format(event, record).encode("utf-8"))
                wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            self.bus.unsubscribe(sub)

    def stream_replay(self, wfile, run_id: str, speed: float) -> None:
        """Re-stream a recorded run's trace as SSE.

        ``speed`` is simulated-ms per wall-ms: ``10`` replays a minute
        of sim time in six wall seconds; ``0`` (the default, and what
        CI uses) dumps all frames immediately.  Pacing follows the
        records' own sim-time deltas.
        """
        info = self.find_run(run_id)
        if info is None:
            wfile.write(sse_format(
                "error", {"error": f"no run {run_id!r}"}).encode("utf-8"))
            wfile.flush()
            return
        wfile.write(sse_format(
            "run_start", {"type": "run_start", "meta": info.meta,
                          "run": info.run_id}).encode("utf-8"))
        prev_t: Optional[float] = None
        count = 0
        try:
            for record in catalog.iter_trace(
                    f"{info.path}/trace.jsonl"):
                t = record.get("t")
                if (speed > 0 and isinstance(t, (int, float))
                        and prev_t is not None and t > prev_t):
                    time.sleep(min((t - prev_t) / 1000.0 / speed,
                                   MAX_REPLAY_SLEEP_S))
                if isinstance(t, (int, float)):
                    prev_t = float(t)
                wfile.write(sse_format(
                    "trace", {"type": "trace", "record": record}
                ).encode("utf-8"))
                count += 1
                if count % 100 == 0:
                    wfile.flush()
                if self._stopping.is_set():
                    break
            wfile.write(sse_format(
                "end", {"type": "end", "records": count}).encode("utf-8"))
            wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
