"""Exporters: Prometheus text, JSONL traces, Chrome trace-event timelines.

Exporting is the only point where telemetry touches the filesystem.  A
fork-server child therefore opens its own files post-fork (export runs
inside the child's measure function), and the sweep parent merges the
per-point directories deterministically with :func:`merge_point_dirs`.

All timestamps are simulated milliseconds; the Chrome trace-event
timeline (``timeline.json``) maps them to microseconds as required by
the format and loads directly in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, Iterable, List, Sequence, Tuple

TRACE_FILE = "trace.jsonl"
METRICS_TEXT_FILE = "metrics.prom"
METRICS_JSON_FILE = "metrics.json"
TIMELINE_FILE = "timeline.json"
MANIFEST_FILE = "points.json"

#: Trace pid/tid layout for the Chrome timeline.
_PID_CONTROLLER = 1
_PID_FAULTS = 2

#: Record kinds rendered as duration spans (``ph: "X"``).
_SPAN_KINDS = frozenset({"interval", "fault"})


def _jsonable(value):
    """Coerce ``value`` into plain JSON types (numpy included)."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    if hasattr(value, "tolist"):  # numpy array
        return _jsonable(value.tolist())
    return str(value)


def trace_lines(records: Iterable[Dict]) -> Iterable[str]:
    """One canonical JSON line per trace record."""
    for record in records:
        yield json.dumps(_jsonable(record), sort_keys=True)


def _fmt_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{float(value):.9g}"


def prometheus_text(registry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    typed = set()
    for kind, name, labels, instrument in registry.samples():
        prom_kind = {"counter": "counter", "gauge": "gauge",
                     "histogram": "summary"}[kind]
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {prom_kind}")
        base = "".join(f'{k}="{v}",' for k, v in labels)
        if kind == "counter":
            lines.append(f"{name}{{{base[:-1]}}} {instrument.value}"
                         if base else f"{name} {instrument.value}")
        elif kind == "gauge":
            value = _fmt_value(instrument.read())
            lines.append(f"{name}{{{base[:-1]}}} {value}"
                         if base else f"{name} {value}")
        else:  # histogram -> summary with a p95 quantile line
            q = base + 'quantile="0.95"'
            lines.append(f"{name}{{{q}}} {_fmt_value(instrument.p95.value)}")
            suffix = f"{{{base[:-1]}}}" if base else ""
            lines.append(f"{name}_sum{suffix} {_fmt_value(instrument.sum)}")
            lines.append(f"{name}_count{suffix} {instrument.count}")
    return "\n".join(lines) + "\n"


def metrics_json(registry) -> List[Dict]:
    """Registry contents as plain dicts (for machine consumption)."""
    out: List[Dict] = []
    for kind, name, labels, instrument in registry.samples():
        entry: Dict = {"kind": kind, "name": name, "labels": dict(labels)}
        if kind == "counter":
            entry["value"] = instrument.value
        elif kind == "gauge":
            entry["value"] = instrument.read()
        else:
            stats = instrument.stats
            entry.update(
                count=stats.count,
                mean=stats.mean,
                stddev=stats.stddev,
                min=stats.minimum,
                max=stats.maximum,
                p95=instrument.p95.value,
            )
        out.append(_jsonable(entry))
    return out


def _timeline_event(record: Dict) -> Dict:
    kind = record["kind"]
    t_us = float(record["t"]) * 1000.0
    if kind == "fault":
        pid, tid = _PID_FAULTS, int(record.get("node") or 0)
        cat = "faults"
        name = f"fault:{record.get('fault', '?')}"
    elif kind in ("degraded_enter", "degraded_exit", "reconcile",
                  "coord_restart"):
        # Control-plane fault-domain transitions live on the faults
        # process, one thread per node (0 for cluster-wide records).
        pid, tid = _PID_FAULTS, int(record.get("node") or 0)
        cat = "faults"
        name = kind
    else:
        pid = _PID_CONTROLLER
        tid = int(record.get("class_id") or 0)
        cat = "controller"
        name = kind
    args = {k: _jsonable(v) for k, v in record.items()
            if k not in ("kind", "t")}
    if kind in _SPAN_KINDS:
        dur_us = float(record.get("duration_ms") or 0.0) * 1000.0
        return {"ph": "X", "pid": pid, "tid": tid, "cat": cat, "name": name,
                "ts": t_us - dur_us, "dur": dur_us, "args": args}
    return {"ph": "i", "s": "t", "pid": pid, "tid": tid, "cat": cat,
            "name": name, "ts": t_us, "args": args}


def chrome_trace(records: Sequence[Dict], meta: Dict = None) -> Dict:
    """Build a Chrome trace-event document over simulated time."""
    events: List[Dict] = [
        {"ph": "M", "pid": _PID_CONTROLLER, "name": "process_name",
         "args": {"name": "controller"}},
        {"ph": "M", "pid": _PID_FAULTS, "name": "process_name",
         "args": {"name": "faults"}},
    ]
    class_ids = sorted({int(r.get("class_id") or 0) for r in records
                        if r["kind"] != "fault"})
    for class_id in class_ids:
        name = "intervals" if class_id == 0 else f"class {class_id}"
        events.append({"ph": "M", "pid": _PID_CONTROLLER, "tid": class_id,
                       "name": "thread_name", "args": {"name": name}})
    events.extend(_timeline_event(record) for record in records)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if meta:
        doc["otherData"] = _jsonable(meta)
    return doc


def write_export(telemetry, outdir: str) -> Dict[str, str]:
    """Write all exporter outputs for ``telemetry`` into ``outdir``.

    Returns a mapping of artifact name to path.  This is the first (and
    only) point where telemetry opens files, so in forked sweeps it runs
    post-fork inside each child.
    """
    os.makedirs(outdir, exist_ok=True)
    telemetry.collect()
    paths = {
        "trace": os.path.join(outdir, TRACE_FILE),
        "metrics_text": os.path.join(outdir, METRICS_TEXT_FILE),
        "metrics_json": os.path.join(outdir, METRICS_JSON_FILE),
        "timeline": os.path.join(outdir, TIMELINE_FILE),
    }
    with open(paths["trace"], "w", encoding="utf-8") as fh:
        for line in trace_lines(telemetry.trace.records):
            fh.write(line + "\n")
    with open(paths["metrics_text"], "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(telemetry.registry))
    with open(paths["metrics_json"], "w", encoding="utf-8") as fh:
        json.dump({"meta": _jsonable(telemetry.meta),
                   "metrics": metrics_json(telemetry.registry)},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(paths["timeline"], "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(telemetry.trace.records, telemetry.meta),
                  fh, sort_keys=True)
        fh.write("\n")
    return paths


def merge_point_dirs(outdir: str,
                     points: Sequence[Tuple[str, str]]) -> Dict[str, str]:
    """Merge per-point sweep exports into ``outdir`` deterministically.

    ``points`` is an ordered list of ``(label, point_dir)``.  The merged
    ``trace.jsonl`` carries each point's records annotated with its
    label and sorted by **(sim-time, point position, emit sequence)**:
    records interleave on the shared simulated clock, ties broken first
    by the point's position in ``points`` and then by the record's emit
    order within its own trace.  The sort is stable and depends only on
    the inputs, so fork and cold sweeps over the same labels produce a
    bit-identical merge.

    Partially written point directories — a missing or truncated
    ``trace.jsonl`` left behind by a killed sweep — are skipped with a
    :class:`RuntimeWarning` instead of aborting the merge; their
    manifest entries carry a ``"skipped"`` reason and zero records.
    ``points.json`` records the layout either way.
    """
    os.makedirs(outdir, exist_ok=True)
    merged = os.path.join(outdir, TRACE_FILE)
    manifest: List[Dict] = []
    collected: List[Tuple[float, int, int, Dict]] = []
    for point_id, (label, point_dir) in enumerate(points):
        trace_path = os.path.join(point_dir, TRACE_FILE)
        entry = {"label": label,
                 "dir": os.path.relpath(point_dir, outdir),
                 "records": 0}
        if not os.path.exists(trace_path):
            entry["skipped"] = "missing trace.jsonl"
            warnings.warn(
                f"sweep point {label!r}: no trace at {trace_path}; "
                "skipping (killed sweep?)",
                RuntimeWarning, stacklevel=2,
            )
            manifest.append(entry)
            continue
        records: List[Tuple[float, int, int, Dict]] = []
        try:
            with open(trace_path, "r", encoding="utf-8") as fh:
                for seq, line in enumerate(fh):
                    record = json.loads(line)
                    record["point"] = label
                    records.append(
                        (float(record.get("t", 0.0)), point_id, seq, record)
                    )
        except ValueError as exc:
            # A torn final line means the whole point is suspect: the
            # writer died mid-export, so drop it rather than merge a
            # partial trace.
            entry["skipped"] = f"unparsable trace.jsonl: {exc}"
            warnings.warn(
                f"sweep point {label!r}: unparsable trace at "
                f"{trace_path} ({exc}); skipping (killed sweep?)",
                RuntimeWarning, stacklevel=2,
            )
            manifest.append(entry)
            continue
        entry["records"] = len(records)
        collected.extend(records)
        manifest.append(entry)
    collected.sort(key=lambda item: item[:3])
    with open(merged, "w", encoding="utf-8") as out:
        for _, _, _, record in collected:
            out.write(json.dumps(record, sort_keys=True) + "\n")
    manifest_path = os.path.join(outdir, MANIFEST_FILE)
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return {"trace": merged, "manifest": manifest_path}


def append_trace_records(outdir: str, records: Iterable[Dict]) -> str:
    """Append sweep-level records to the merged ``trace.jsonl``.

    Sweep-scoped events — e.g. the analytic ``prescreen`` record — have
    no point simulation to ride, so they are appended to the merged
    trace after :func:`merge_point_dirs`, labelled ``point: "sweep"``
    unless the record carries its own label.  Creates the file when the
    sweep ran without per-point telemetry.
    """
    os.makedirs(outdir, exist_ok=True)
    merged = os.path.join(outdir, TRACE_FILE)
    with open(merged, "a", encoding="utf-8") as out:
        for record in records:
            record = dict(record)
            record.setdefault("point", "sweep")
            out.write(json.dumps(_jsonable(record), sort_keys=True) + "\n")
    return merged
