"""Run catalog: scan telemetry export trees into a browsable index.

The live service's ``/api/runs`` endpoints are backed by this module:
:func:`scan_runs` walks a directory tree for telemetry exports — single
``--telemetry DIR`` runs and ``merge_point_dirs`` sweep roots alike —
and summarizes each into a :class:`RunInfo` keyed by a stable
config-hash id (derived from the run's meta, point layout, and record
count, so re-scanning the same tree yields the same ids).

Scanning is read-only and tolerant: partially written runs from killed
sweeps are indexed with whatever parses, and malformed lines never
abort the scan.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.exporters import (
    MANIFEST_FILE,
    METRICS_JSON_FILE,
    METRICS_TEXT_FILE,
    TIMELINE_FILE,
    TRACE_FILE,
)

#: Hex digits of the config hash used as a run id.
_ID_LEN = 12


@dataclass
class RunInfo:
    """Summary of one telemetry export directory."""

    run_id: str
    path: str
    #: Directory name relative to the scan root (the human handle).
    name: str
    #: Pipeline meta from metrics.json (seed, num_nodes, ...), if any.
    meta: Dict = field(default_factory=dict)
    #: Point labels from points.json for merged sweeps, else empty.
    points: List[str] = field(default_factory=list)
    #: Point labels skipped by the merge (partial exports).
    skipped_points: List[str] = field(default_factory=list)
    records: int = 0
    #: Simulated time span covered by the trace (ms).
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    #: Artifact filenames present in the directory.
    artifacts: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        """Plain-dict form for the JSON API."""
        return {
            "id": self.run_id,
            "name": self.name,
            "path": self.path,
            "meta": self.meta,
            "points": self.points,
            "skipped_points": self.skipped_points,
            "records": self.records,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "artifacts": self.artifacts,
        }


def iter_trace(path: str):
    """Yield parsed records from a trace file, ignoring torn lines."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                try:
                    yield json.loads(line)
                except ValueError:
                    return  # torn tail of a killed export
    except OSError:
        return


def _load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _summarize_dir(root: str, run_dir: str) -> Optional[RunInfo]:
    trace_path = os.path.join(run_dir, TRACE_FILE)
    records = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for record in iter_trace(trace_path):
        records += 1
        t = record.get("t")
        if isinstance(t, (int, float)):
            t_min = float(t) if t_min is None else min(t_min, float(t))
            t_max = float(t) if t_max is None else max(t_max, float(t))

    meta: Dict = {}
    metrics = _load_json(os.path.join(run_dir, METRICS_JSON_FILE))
    if isinstance(metrics, dict) and isinstance(metrics.get("meta"), dict):
        meta = metrics["meta"]

    points: List[str] = []
    skipped: List[str] = []
    manifest = _load_json(os.path.join(run_dir, MANIFEST_FILE))
    if isinstance(manifest, list):
        for entry in manifest:
            if not isinstance(entry, dict):
                continue
            label = str(entry.get("label", "?"))
            if entry.get("skipped"):
                skipped.append(label)
            else:
                points.append(label)

    artifacts = sorted(
        name for name in (TRACE_FILE, METRICS_TEXT_FILE, METRICS_JSON_FILE,
                          TIMELINE_FILE, MANIFEST_FILE)
        if os.path.exists(os.path.join(run_dir, name))
    )
    if not artifacts:
        return None

    name = os.path.relpath(run_dir, root)
    if name == ".":
        name = os.path.basename(os.path.abspath(run_dir)) or "run"
    digest = hashlib.sha256(
        json.dumps(
            {"meta": meta, "points": points, "records": records,
             "name": name},
            sort_keys=True, default=str,
        ).encode("utf-8")
    ).hexdigest()[:_ID_LEN]
    return RunInfo(
        run_id=digest, path=run_dir, name=name, meta=meta,
        points=points, skipped_points=skipped, records=records,
        t_min=t_min, t_max=t_max, artifacts=artifacts,
    )


def scan_runs(root: str) -> List[RunInfo]:
    """Index every telemetry export directory under ``root``.

    A directory counts as a run when it holds a ``trace.jsonl`` (or a
    sweep manifest).  Per-point subdirectories referenced by a parent's
    ``points.json`` are folded into the merged run rather than listed
    twice.  Results are sorted by name; colliding config hashes (e.g.
    two copies of the same export) get a positional suffix so ids stay
    unique within one scan.
    """
    root = os.path.abspath(root)
    run_dirs: List[str] = []
    merged_children = set()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        if TRACE_FILE in filenames or MANIFEST_FILE in filenames:
            run_dirs.append(dirpath)
            manifest = _load_json(os.path.join(dirpath, MANIFEST_FILE))
            if isinstance(manifest, list):
                for entry in manifest:
                    if isinstance(entry, dict) and "dir" in entry:
                        child = os.path.normpath(
                            os.path.join(dirpath, str(entry["dir"]))
                        )
                        merged_children.add(child)

    runs: List[RunInfo] = []
    seen_ids: Dict[str, int] = {}
    for run_dir in sorted(run_dirs):
        if run_dir in merged_children:
            continue
        info = _summarize_dir(root, run_dir)
        if info is None:
            continue
        bump = seen_ids.get(info.run_id)
        seen_ids[info.run_id] = (bump or 0) + 1
        if bump:
            info.run_id = f"{info.run_id[:-2]}{bump:02d}"
        runs.append(info)
    runs.sort(key=lambda info: info.name)
    return runs


def find_run(root: str, run_id: str) -> Optional[RunInfo]:
    """Look up one run by id (or ``"latest"`` for the newest trace)."""
    runs = scan_runs(root)
    if not runs:
        return None
    if run_id == "latest":
        return max(
            runs,
            key=lambda info: os.path.getmtime(
                os.path.join(info.path, TRACE_FILE)
            ) if os.path.exists(os.path.join(info.path, TRACE_FILE)) else 0.0,
        )
    for info in runs:
        if info.run_id == run_id:
            return info
    return None


def run_detail(info: RunInfo) -> Dict:
    """Full detail for ``/api/runs/<id>``: summary plus record kinds."""
    kinds: Dict[str, int] = {}
    for record in iter_trace(os.path.join(info.path, TRACE_FILE)):
        kind = str(record.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
    detail = info.to_dict()
    detail["kinds"] = dict(sorted(kinds.items()))
    return detail
