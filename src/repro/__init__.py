"""repro — goal-oriented distributed buffer management.

A full reproduction of *"Managing Distributed Memory to Meet Multiclass
Workload Response Time Goals"* (Sinnwell & König, ICDE 1999): an online
feedback method that partitions the aggregate buffer memory of a
network of workstations into per-class dedicated pools so that
user-specified response time goals are met, built on top of a
self-contained discrete-event simulation of the cluster.

Quickstart::

    from repro import build_base_experiment

    sim = build_base_experiment(seed=1)
    sim.run(intervals=40)
    print(sim.controller.series[1].observed_rt.values[-1])

Package layout:

- :mod:`repro.sim` — discrete-event simulation kernel.
- :mod:`repro.cluster` — NOW substrate (CPU, disk, network, directory).
- :mod:`repro.bufmgr` — buffer pools, heat, cost-based replacement.
- :mod:`repro.workload` — multiclass synthetic workloads.
- :mod:`repro.core` — the goal-oriented partitioning algorithm.
- :mod:`repro.baselines` — fragment fencing, class fencing, and friends.
- :mod:`repro.faults` — deterministic fault injection (crashes, message
  loss, latency spikes, disk slowdowns) for resilience experiments.
- :mod:`repro.experiments` — the paper's tables and figures.
"""

from repro.bufmgr import AccessLevel, NO_GOAL_CLASS
from repro.cluster import Cluster, SystemConfig
from repro.core import GoalOrientedController, ServiceLevelAgreement
from repro.experiments.runner import Simulation, build_base_experiment
from repro.workload import ClassSpec, WorkloadGenerator, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "AccessLevel",
    "ClassSpec",
    "Cluster",
    "GoalOrientedController",
    "NO_GOAL_CLASS",
    "ServiceLevelAgreement",
    "Simulation",
    "SystemConfig",
    "WorkloadGenerator",
    "WorkloadSpec",
    "build_base_experiment",
    "__version__",
]
