"""Synthetic trace recording and replay.

Recording a workload run produces a deterministic operation trace
(arrival time, node, class, page list) that can be replayed against a
differently configured cluster — useful for apples-to-apples policy
comparisons (same accesses, different buffer management).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class TraceRecord:
    """One recorded operation."""

    time: float
    node_id: int
    class_id: int
    pages: Tuple[int, ...]


class TraceRecorder:
    """Collects :class:`TraceRecord` entries during a run."""

    def __init__(self):
        self.records: List[TraceRecord] = []

    def record(
        self, time: float, node_id: int, class_id: int, pages: Tuple[int, ...]
    ) -> None:
        """Append one operation to the trace."""
        self.records.append(TraceRecord(time, node_id, class_id, pages))

    def save(self, path: str) -> None:
        """Write the trace to ``path`` as JSON lines."""
        with open(path, "w") as handle:
            for rec in self.records:
                handle.write(
                    json.dumps(
                        {
                            "time": rec.time,
                            "node": rec.node_id,
                            "class": rec.class_id,
                            "pages": list(rec.pages),
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str) -> "TraceRecorder":
        """Read a trace previously written by :meth:`save`."""
        recorder = cls()
        with open(path) as handle:
            for line in handle:
                if not line.strip():
                    continue
                data = json.loads(line)
                recorder.record(
                    data["time"],
                    data["node"],
                    data["class"],
                    tuple(data["pages"]),
                )
        return recorder


class TraceReplayer:
    """Replays a recorded trace against a cluster."""

    def __init__(self, cluster: Cluster, records: List[TraceRecord],
                 sink=None):
        self.cluster = cluster
        self.records = sorted(records, key=lambda r: r.time)
        self.sink = sink
        self.operations_completed = 0

    def start(self) -> None:
        """Schedule the whole trace (call once, before env.run)."""
        self.cluster.env.process(self._driver())

    def _driver(self):
        env = self.cluster.env
        for rec in self.records:
            if rec.time > env.now:
                yield env.timeout(rec.time - env.now)
            env.process(self._operation(rec))

    def _operation(self, rec: TraceRecord):
        env = self.cluster.env
        started = env.now
        if self.sink is not None:
            self.sink.on_arrival(rec.node_id, rec.class_id, started)
        yield from self.cluster.access_run(
            rec.node_id, rec.pages, rec.class_id
        )
        self.operations_completed += 1
        if self.sink is not None:
            self.sink.on_complete(
                rec.node_id, rec.class_id, env.now - started, env.now
            )
