"""Multiclass synthetic workloads: specs, Zipf sampling, generators,
and trace record/replay."""

from repro.workload.closed import ClosedLoopDriver
from repro.workload.generator import NullSink, WorkloadGenerator, WorkloadSink
from repro.workload.presets import oltp_dss_mix, uniform_multiclass
from repro.workload.spec import (
    ClassSpec,
    WorkloadSpec,
    partition_pages,
    shared_pages,
)
from repro.workload.trace import TraceRecord, TraceRecorder, TraceReplayer
from repro.workload.zipf import ZipfPagePicker, ZipfSampler

__all__ = [
    "ClassSpec",
    "ClosedLoopDriver",
    "NullSink",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayer",
    "WorkloadGenerator",
    "WorkloadSink",
    "WorkloadSpec",
    "ZipfPagePicker",
    "ZipfSampler",
    "oltp_dss_mix",
    "partition_pages",
    "shared_pages",
    "uniform_multiclass",
]
