"""Canned workload mixes for examples, tests, and experiments.

These encode the scenarios the paper's introduction motivates: OLTP
transactions with firm deadlines next to resource-hungry decision
support, plus background work without a goal.
"""

from __future__ import annotations

from repro.cluster.config import SystemConfig
from repro.workload.spec import ClassSpec, WorkloadSpec, partition_pages


def oltp_dss_mix(
    config: SystemConfig,
    oltp_goal_ms: float = 2.5,
    dss_goal_ms: float = 40.0,
    oltp_rate: float = 0.04,
    dss_rate: float = 0.002,
    background_rate: float = 0.005,
) -> WorkloadSpec:
    """OLTP + decision support + background (the §1 motivation).

    - class 1 "oltp": short (2-page) operations over a hot, skewed set
      with a tight goal;
    - class 2 "dss": long (16-page) scans over a uniform set with a
      loose goal;
    - class 0: background work without a goal.
    """
    oltp_pages, dss_pages, other_pages = partition_pages(
        config.num_pages, 3
    )
    return WorkloadSpec(classes=[
        ClassSpec(
            class_id=0, goal_ms=None, pages=other_pages,
            pages_per_op=4, arrival_rate_per_node=background_rate,
            name="background",
        ),
        ClassSpec(
            class_id=1, goal_ms=oltp_goal_ms, pages=oltp_pages,
            skew=0.8, pages_per_op=2,
            arrival_rate_per_node=oltp_rate, name="oltp",
        ),
        ClassSpec(
            class_id=2, goal_ms=dss_goal_ms, pages=dss_pages,
            skew=0.0, pages_per_op=16,
            arrival_rate_per_node=dss_rate, name="dss",
        ),
    ])


def uniform_multiclass(
    config: SystemConfig,
    goals_ms,
    pages_per_op: int = 4,
    skew: float = 0.0,
    arrival_rate_per_node: float = 0.02,
) -> WorkloadSpec:
    """K goal classes with identical shapes on disjoint page sets.

    ``goals_ms`` is a sequence of response time goals; class ids are
    1..K and a no-goal class 0 takes the last page partition.
    """
    goals = list(goals_ms)
    sets = partition_pages(config.num_pages, len(goals) + 1)
    classes = [
        ClassSpec(
            class_id=0, goal_ms=None, pages=sets[-1], skew=skew,
            pages_per_op=pages_per_op,
            arrival_rate_per_node=arrival_rate_per_node,
            name="no-goal",
        )
    ]
    for i, goal_ms in enumerate(goals, start=1):
        classes.append(
            ClassSpec(
                class_id=i, goal_ms=goal_ms, pages=sets[i - 1],
                skew=skew, pages_per_op=pages_per_op,
                arrival_rate_per_node=arrival_rate_per_node,
                name=f"class-{i}",
            )
        )
    return WorkloadSpec(classes=classes)
