"""Operation streams driving the cluster.

For each node and each class a stream of operations is generated
(§7.1): inter-arrival times are exponential, page identities are drawn
from the class's Zipfian distribution, and each operation performs its
page accesses through the cluster's data-shipping path.  Completed
operations report their response time to a *sink* (normally the
goal-oriented controller's agents).
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.cluster.cluster import Cluster
from repro.workload.spec import ClassSpec, WorkloadSpec
from repro.workload.trace import TraceRecorder
from repro.workload.zipf import ZipfPagePicker


class WorkloadSink(Protocol):
    """Receiver of workload life-cycle callbacks."""

    def on_arrival(self, node_id: int, class_id: int, now: float) -> None:
        """An operation of ``class_id`` arrived at ``node_id``."""

    def on_complete(
        self, node_id: int, class_id: int, response_ms: float, now: float
    ) -> None:
        """An operation finished with the given response time."""


class NullSink:
    """A sink that ignores everything (for standalone runs)."""

    def on_arrival(self, node_id: int, class_id: int, now: float) -> None:
        """Ignore the arrival."""

    def on_complete(
        self, node_id: int, class_id: int, response_ms: float, now: float
    ) -> None:
        """Ignore the completion."""


class WorkloadGenerator:
    """Spawns one arrival process per (node, class) pair."""

    def __init__(
        self,
        cluster: Cluster,
        spec: WorkloadSpec,
        sink: Optional[WorkloadSink] = None,
        recorder: Optional[TraceRecorder] = None,
        txn_manager=None,
    ):
        self.cluster = cluster
        self.spec = spec
        self.sink = sink if sink is not None else NullSink()
        self.recorder = recorder
        #: Required when any class has write_fraction > 0: operations
        #: of such classes run as transactions (§3 update model).
        self.txn_manager = txn_manager
        needs_txn = any(c.write_fraction > 0 for c in spec.classes)
        if needs_txn and txn_manager is None:
            raise ValueError(
                "classes with write_fraction > 0 need a txn_manager"
            )
        self._pickers = {
            c.class_id: (c, ZipfPagePicker(c.pages, c.skew))
            for c in spec.classes
        }
        self.operations_started = 0
        self.operations_completed = 0

    def _picker_for(self, spec: ClassSpec) -> ZipfPagePicker:
        """The page picker for ``spec``, rebuilt only if it changed.

        Goal controllers replace ClassSpec objects wholesale (e.g.
        ``with_goal`` clones) without touching the page distribution;
        comparing the distribution inputs — not object identity —
        avoids rebuilding the picker on every such replacement.  The
        rank sequence is unaffected either way (the alias table depends
        only on the page count and skew), so reuse is free.
        """
        cached = self._pickers.get(spec.class_id)
        if cached is not None:
            old, picker = cached
            if old is spec:
                return picker
            if old.skew == spec.skew and (
                old.pages is spec.pages or old.pages == spec.pages
            ):
                # Same distribution, new spec object: rebind the cache
                # entry so later identity checks hit.
                self._pickers[spec.class_id] = (spec, picker)
                return picker
        picker = ZipfPagePicker(spec.pages, spec.skew)
        self._pickers[spec.class_id] = (spec, picker)
        return picker

    def start(self) -> None:
        """Begin the arrival front-end (call once, before env.run).

        One block-drawn dispatcher per node replaces the classic
        per-(node, class) coroutines; arrival times and page draws are
        bit-identical (see :mod:`repro.workload.blockgen`).
        """
        from repro.workload.blockgen import node_dispatcher

        if not self.spec.classes:
            return
        for node_id in range(self.cluster.num_nodes):
            self.cluster.env.process(node_dispatcher(self, node_id))

    # -- processes ---------------------------------------------------

    def _arrivals(self, node_id: int, class_spec: ClassSpec):
        """Sequential reference front-end for one (node, class) pair.

        No longer spawned by :meth:`start` — the block-drawn dispatcher
        replaces it — but kept as the executable specification of the
        draw-order contract: the equivalence tests replay both paths
        and require identical arrival traces.
        """
        env = self.cluster.env
        rng = self.cluster.rng
        class_id = class_spec.class_id
        arrival_stream = f"arrivals/n{node_id}/c{class_id}"
        page_stream = f"pages/n{node_id}/c{class_id}"
        while True:
            # Re-read the spec every iteration so evolving workloads
            # (changed arrival rates or page sets, §7.2) take effect
            # on running streams.
            spec = self.spec.spec_for(class_id)
            picker = self._picker_for(spec)
            delay = rng.exponential(
                arrival_stream, 1.0 / spec.rate_for(node_id)
            )
            yield env.timeout(delay)
            pages = [
                picker.pick(rng.stream(page_stream))
                for _ in range(spec.pages_per_op)
            ]
            env.process(self._operation(node_id, spec, pages))

    def _operation(self, node_id: int, class_spec: ClassSpec, pages):
        env = self.cluster.env
        started = env.now
        self.operations_started += 1
        self.sink.on_arrival(node_id, class_spec.class_id, started)
        if self.recorder is not None:
            self.recorder.record(
                started, node_id, class_spec.class_id, tuple(pages)
            )
        if class_spec.write_fraction > 0 and self.txn_manager is not None:
            yield from self._transactional_operation(
                node_id, class_spec, pages
            )
        else:
            # Batched entry point: same events as per-page access_page
            # calls, one generator frame for the whole operation.
            yield from self.cluster.access_run(
                node_id, pages, class_spec.class_id
            )
        response = env.now - started
        self.operations_completed += 1
        self.sink.on_complete(
            node_id, class_spec.class_id, response, env.now
        )

    def _transactional_operation(self, node_id, class_spec, pages):
        """Run one operation as a 2PL/WAL/2PC transaction (§3)."""
        from repro.txn.locks import DeadlockError

        rng = self.cluster.rng
        write_stream = f"writes/n{node_id}/c{class_spec.class_id}"
        txn = self.txn_manager.begin(node_id)
        try:
            for page_id in pages:
                if rng.random(write_stream) < class_spec.write_fraction:
                    yield from self.txn_manager.write(
                        txn, page_id,
                        payload=f"t{txn.txn_id}",
                        class_id=class_spec.class_id,
                    )
                else:
                    yield from self.txn_manager.read(
                        txn, page_id, class_id=class_spec.class_id
                    )
            yield from self.txn_manager.commit(txn)
        except DeadlockError:
            # The victim was already rolled back; the operation still
            # completes (with the time it burned) — no retry, as in an
            # open system the client sees the failure latency.
            pass
