"""Block-drawn arrival variates: the vectorized workload front-end.

The classic front-end runs one generator coroutine per (node, class)
pair, and every arrival pays a named-stream dictionary lookup, an
``expovariate`` call, a fresh ``Timeout`` and — per page — another
stream lookup plus an alias-method draw.  At 256 nodes × k classes
that bookkeeping dominates the arrival path.

This module replaces the N×k coroutines with **one dispatcher process
per node** that walks precomputed variate columns:

- :class:`ExponentialColumn` pre-draws ``-log(1 - u)`` gap factors in
  fixed-size blocks from the stream's existing ``random()`` sequence.
  ``expovariate(lambd)`` in CPython is exactly
  ``-log(1.0 - random()) / lambd``, so dividing a stored factor by the
  current rate reproduces the sequential draw bit for bit — and keeps
  the block *rate independent*: an arrival-rate change mid-block
  simply rescales the not-yet-consumed factors.
- :class:`ZipfColumn` pre-draws raw page uniforms (``array('d')``) and
  eagerly transforms them to Zipf ranks (``array('l')``) through the
  class's alias table.  The raw uniforms are kept so a mid-block page
  set or skew change re-transforms only the unconsumed tail under the
  new sampler — consumption order and variate identity never change.

**Draw-order contract** (pinned by the block-equivalence property
test): for every stream, the i-th variate consumed through a column
equals the i-th variate the sequential front-end would have drawn,
for any block size and any refill point.  Named streams are
independent, so pre-drawing one stream in blocks cannot perturb any
other; the golden arrival trace is unchanged.

Arrival *coalescing* — fusing back-to-back same-class operations into
one ``access_run`` batch — is deliberately **not** done here: open
system operations overlap in time and each one carries its own
response-time observation, so fusing them would change contention and
per-class statistics.  The batching win lives below, in the cluster's
fetch-chain access path.
"""

from __future__ import annotations

import math
from array import array
from typing import List

from repro.sim.engine import pooled_timeout_at

#: Variates drawn per refill.  Large enough to amortize stream/attr
#: lookups, small enough that goal-sweep workloads (seconds of sim
#: time) do not pre-draw far past the horizon.
DEFAULT_BLOCK = 256


class ExponentialColumn:
    """Pre-drawn ``-log(1 - u)`` factors for one exponential stream.

    Dividing :meth:`next_neglog` by the rate ``lambd`` reproduces
    ``stream.expovariate(lambd)`` exactly (same float operations in the
    same order on the same uniform), which is why the column stores the
    rate-independent factor rather than finished gaps.
    """

    __slots__ = ("stream", "block", "col", "cursor")

    def __init__(self, stream, block: int = DEFAULT_BLOCK):
        if block < 1:
            raise ValueError("block size must be >= 1")
        self.stream = stream
        self.block = block
        self.col = array("d")
        self.cursor = 0

    def refill(self) -> None:
        """Draw the next ``block`` factors from the stream, in order."""
        rnd = self.stream.random
        log = math.log
        self.col = array(
            "d", [-log(1.0 - rnd()) for _ in range(self.block)]
        )
        self.cursor = 0

    def next_neglog(self) -> float:
        """The next ``-log(1 - u)`` factor (refills on exhaustion)."""
        cur = self.cursor
        col = self.col
        if cur >= len(col):
            self.refill()
            cur = 0
            col = self.col
        self.cursor = cur + 1
        return col[cur]


class ZipfColumn:
    """Pre-drawn page uniforms and their Zipf ranks for one stream.

    Ranks are transformed eagerly at refill through ``sampler``'s alias
    table; the raw uniforms are retained so :meth:`retarget` can
    re-transform the unconsumed tail when the class's page distribution
    changes mid-block.
    """

    __slots__ = ("stream", "block", "uniforms", "ranks", "cursor", "_sampler")

    def __init__(self, stream, sampler, block: int = DEFAULT_BLOCK):
        if block < 1:
            raise ValueError("block size must be >= 1")
        self.stream = stream
        self.block = block
        self.uniforms = array("d")
        self.ranks = array("l")
        self.cursor = 0
        self._sampler = sampler

    def refill(self) -> None:
        """Draw the next ``block`` uniforms and transform them."""
        rnd = self.stream.random
        uniforms = array("d", [rnd() for _ in range(self.block)])
        self.uniforms = uniforms
        transform = self._sampler.sample_from_uniform
        self.ranks = array("l", [transform(u) for u in uniforms])
        self.cursor = 0

    def retarget(self, sampler) -> None:
        """Switch to ``sampler``, re-transforming the unconsumed tail.

        The uniforms themselves are untouched — each pending variate is
        simply mapped through the new alias table, exactly as the
        sequential front-end would map a freshly drawn uniform through
        the picker in force at consumption time.
        """
        old = self._sampler
        self._sampler = sampler
        if (
            sampler.num_items == old.num_items
            and sampler.theta == old.theta
        ):
            return  # identical distribution — ranks already correct
        uniforms = self.uniforms
        cur = self.cursor
        if cur < len(uniforms):
            transform = sampler.sample_from_uniform
            ranks = self.ranks
            for i in range(cur, len(uniforms)):
                ranks[i] = transform(uniforms[i])

    def next_rank(self) -> int:
        """The next Zipf rank (refills on exhaustion)."""
        cur = self.cursor
        ranks = self.ranks
        if cur >= len(ranks):
            self.refill()
            cur = 0
            ranks = self.ranks
        self.cursor = cur + 1
        return ranks[cur]


class ClassStream:
    """Block-drawn arrival state for one (node, class) pair.

    ``spec``/``picker``/``lambd`` mirror the bindings the sequential
    loop holds across its sleep: the spec read *before* an arrival's
    gap governs both that gap's rate and the pages drawn at the
    arrival.  :meth:`rebind` refreshes them after each arrival, exactly
    where the sequential loop re-reads ``spec_for``.
    """

    __slots__ = ("class_id", "spec", "picker", "lambd", "gaps", "pages", "next_t")

    def __init__(self, generator, node_id: int, class_spec, now: float,
                 block: int = DEFAULT_BLOCK):
        rng = generator.cluster.rng
        class_id = class_spec.class_id
        self.class_id = class_id
        self.spec = class_spec
        self.picker = generator._picker_for(class_spec)
        # The sequential path calls expovariate(1.0 / mean) with
        # mean = 1.0 / rate; fold the floats identically.
        mean = 1.0 / class_spec.rate_for(node_id)
        self.lambd = 1.0 / mean
        self.gaps = ExponentialColumn(
            rng.stream(f"arrivals/n{node_id}/c{class_id}"), block
        )
        self.pages = ZipfColumn(
            rng.stream(f"pages/n{node_id}/c{class_id}"),
            self.picker.sampler, block,
        )
        self.next_t = now + self.gaps.next_neglog() / self.lambd

    def rebind(self, generator, node_id: int) -> None:
        """Re-read the class spec (evolving workloads, §7.2)."""
        spec = generator.spec.spec_for(self.class_id)
        if spec is not self.spec:
            self.spec = spec
            mean = 1.0 / spec.rate_for(node_id)
            self.lambd = 1.0 / mean
            picker = generator._picker_for(spec)
            if picker is not self.picker:
                self.picker = picker
                self.pages.retarget(picker.sampler)


def node_dispatcher(generator, node_id: int, block: int = DEFAULT_BLOCK):
    """Process: merged block-drawn arrival front-end for one node.

    Replaces the node's k per-class arrival coroutines.  Each wake-up
    lands on a precomputed absolute timestamp (``pooled_timeout_at``
    avoids the ``now + delta`` re-rounding a relative timeout would
    introduce), emits exactly one operation, then sleeps to the
    earliest pending arrival across the node's classes.  Ties go to
    the class listed first in the workload spec.
    """
    env = generator.cluster.env
    streams: List[ClassStream] = [
        ClassStream(generator, node_id, class_spec, env._now, block)
        for class_spec in generator.spec.classes
    ]
    if not streams:
        return
    process = env.process
    operation = generator._operation
    if len(streams) == 1:
        (stream,) = streams
        while True:
            yield pooled_timeout_at(env, stream.next_t)
            spec = stream.spec
            page_ids = stream.picker.pages
            column = stream.pages
            pages = [
                page_ids[column.next_rank()]
                for _ in range(spec.pages_per_op)
            ]
            process(operation(node_id, spec, pages))
            stream.rebind(generator, node_id)
            stream.next_t = (
                env._now + stream.gaps.next_neglog() / stream.lambd
            )
    while True:
        stream = streams[0]
        when = stream.next_t
        for other in streams:
            if other.next_t < when:
                stream = other
                when = other.next_t
        yield pooled_timeout_at(env, when)
        spec = stream.spec
        page_ids = stream.picker.pages
        column = stream.pages
        pages = [
            page_ids[column.next_rank()]
            for _ in range(spec.pages_per_op)
        ]
        process(operation(node_id, spec, pages))
        stream.rebind(generator, node_id)
        stream.next_t = env._now + stream.gaps.next_neglog() / stream.lambd
