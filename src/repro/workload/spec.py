"""Declarative workload specification.

Operations are grouped into classes (§3): goal classes 1..K carry a
mean response time goal; class 0 is the no-goal class.  Each class
accesses an ordered page set with Zipfian skew, arrives independently
at every node with exponential inter-arrival times, and touches a fixed
number of pages per operation (the paper's base experiment uses 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bufmgr.manager import NO_GOAL_CLASS


@dataclass(frozen=True)
class ClassSpec:
    """One workload class."""

    class_id: int
    #: Mean response time goal in ms; None for the no-goal class.
    goal_ms: Optional[float]
    #: Ordered page set; rank 0 is the hottest page under skew.
    pages: Tuple[int, ...]
    #: Zipf skew parameter theta (0 = uniform).
    skew: float = 0.0
    #: Page accesses per operation.
    pages_per_op: int = 4
    #: Mean operations per millisecond arriving at *each* node.
    arrival_rate_per_node: float = 0.01
    #: Optional per-node arrival rates (overrides the scalar for the
    #: nodes listed; useful for asymmetric-load studies such as the
    #: §8 variance-objective extension).
    node_rates: Optional[Tuple[float, ...]] = None
    #: Probability that a page access is a write (§3 update model).
    #: Non-zero fractions require the generator to run operations as
    #: transactions through a :class:`repro.txn.TransactionManager`.
    write_fraction: float = 0.0
    name: str = ""

    def __post_init__(self):
        if self.class_id < 0:
            raise ValueError("class ids are non-negative")
        if self.class_id == NO_GOAL_CLASS and self.goal_ms is not None:
            raise ValueError("class 0 is the no-goal class; it has no goal")
        if self.class_id != NO_GOAL_CLASS and self.goal_ms is None:
            raise ValueError(f"goal class {self.class_id} needs a goal")
        if self.goal_ms is not None and self.goal_ms <= 0:
            raise ValueError("response time goals must be positive")
        if not self.pages:
            raise ValueError("page set must not be empty")
        if self.pages_per_op < 1:
            raise ValueError("operations access at least one page")
        if self.arrival_rate_per_node <= 0:
            raise ValueError("arrival rate must be positive")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write fraction must lie in [0, 1]")
        if self.node_rates is not None and any(
            r <= 0 for r in self.node_rates
        ):
            raise ValueError("per-node arrival rates must be positive")

    @property
    def is_goal_class(self) -> bool:
        """True for classes 1..K (classes with a response time goal)."""
        return self.class_id != NO_GOAL_CLASS

    @property
    def mean_interarrival_ms(self) -> float:
        """Mean time between arrivals at one node (scalar rate)."""
        return 1.0 / self.arrival_rate_per_node

    def rate_for(self, node_id: int) -> float:
        """Arrival rate at ``node_id`` (per-node override or scalar)."""
        if self.node_rates is not None and node_id < len(self.node_rates):
            return self.node_rates[node_id]
        return self.arrival_rate_per_node


@dataclass
class WorkloadSpec:
    """A complete multiclass workload."""

    classes: List[ClassSpec] = field(default_factory=list)

    def __post_init__(self):
        ids = [c.class_id for c in self.classes]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate class ids")

    @property
    def goal_classes(self) -> List[ClassSpec]:
        """Classes 1..K, sorted by id."""
        return sorted(
            (c for c in self.classes if c.is_goal_class),
            key=lambda c: c.class_id,
        )

    @property
    def no_goal_class(self) -> Optional[ClassSpec]:
        """The no-goal class spec if present."""
        for spec in self.classes:
            if not spec.is_goal_class:
                return spec
        return None

    def spec_for(self, class_id: int) -> ClassSpec:
        """Look up the spec of ``class_id``."""
        for spec in self.classes:
            if spec.class_id == class_id:
                return spec
        raise KeyError(class_id)

    def with_goal(self, class_id: int, goal_ms: float) -> "WorkloadSpec":
        """Copy of this spec with one class's goal replaced."""
        from dataclasses import replace

        return WorkloadSpec(
            classes=[
                replace(c, goal_ms=goal_ms) if c.class_id == class_id else c
                for c in self.classes
            ]
        )


def partition_pages(
    num_pages: int, num_sets: int
) -> List[Tuple[int, ...]]:
    """Split [0, num_pages) into ``num_sets`` disjoint contiguous sets."""
    if num_sets < 1:
        raise ValueError("need at least one set")
    if num_pages < num_sets:
        raise ValueError("fewer pages than sets")
    bounds = [round(i * num_pages / num_sets) for i in range(num_sets + 1)]
    return [
        tuple(range(bounds[i], bounds[i + 1])) for i in range(num_sets)
    ]


def shared_pages(
    base: Sequence[int], other: Sequence[int], sharing: float
) -> Tuple[int, ...]:
    """Build a page set overlapping ``base`` by fraction ``sharing``.

    Used by the §7.4 data-sharing experiments: the returned set has the
    same size as ``other`` but its first ``sharing * len(other)`` pages
    are taken from ``base`` (the hot end under skew), the rest from
    ``other``.
    """
    if not 0.0 <= sharing <= 1.0:
        raise ValueError("sharing must lie in [0, 1]")
    n_shared = round(sharing * len(other))
    n_shared = min(n_shared, len(base))
    taken = list(base[:n_shared]) + list(other[: len(other) - n_shared])
    return tuple(taken)
