"""Closed-loop clients: an alternative to the open arrival streams.

The paper's experiments use an open system (exponential arrivals,
§7.1).  Interactive database populations are often better described as
*closed*: a fixed number of clients per node, each thinking for an
exponential time and then issuing the next operation.  Throughput then
self-regulates with the response time — useful for studying the
partitioner under feedback-coupled load, where taking memory from a
class also reduces the load it generates.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster
from repro.workload.generator import NullSink, WorkloadSink
from repro.workload.spec import ClassSpec
from repro.workload.zipf import ZipfPagePicker


class ClosedLoopDriver:
    """A population of think/request clients for one workload class."""

    def __init__(
        self,
        cluster: Cluster,
        class_spec: ClassSpec,
        clients_per_node: int,
        think_time_ms: float,
        sink: Optional[WorkloadSink] = None,
    ):
        if clients_per_node < 1:
            raise ValueError("need at least one client per node")
        if think_time_ms <= 0:
            raise ValueError("think time must be positive")
        self.cluster = cluster
        self.class_spec = class_spec
        self.clients_per_node = clients_per_node
        self.think_time_ms = think_time_ms
        self.sink = sink if sink is not None else NullSink()
        self._picker = ZipfPagePicker(class_spec.pages, class_spec.skew)
        self.operations_completed = 0
        self.in_flight = 0

    def start(self) -> None:
        """Spawn every client process (call once, before env.run)."""
        for node_id in range(self.cluster.num_nodes):
            for client_id in range(self.clients_per_node):
                self.cluster.env.process(
                    self._client(node_id, client_id)
                )

    def throughput(self) -> float:
        """Completed operations per ms of simulated time so far."""
        now = self.cluster.env.now
        return self.operations_completed / now if now > 0 else 0.0

    def _client(self, node_id: int, client_id: int):
        env = self.cluster.env
        rng = self.cluster.rng
        spec = self.class_spec
        think_stream = f"closed/think/n{node_id}/k{client_id}"
        page_stream = f"closed/pages/n{node_id}/k{client_id}"
        while True:
            yield env.timeout(
                rng.exponential(think_stream, self.think_time_ms)
            )
            started = env.now
            self.sink.on_arrival(node_id, spec.class_id, started)
            self.in_flight += 1
            # Draw the operation's pages up front (same stream, same
            # order, so the values are unchanged) and run them through
            # the batched access path.
            pages = [
                self._picker.pick(rng.stream(page_stream))
                for _ in range(spec.pages_per_op)
            ]
            yield from self.cluster.access_run(
                node_id, pages, spec.class_id
            )
            self.in_flight -= 1
            self.operations_completed += 1
            self.sink.on_complete(
                node_id, spec.class_id, env.now - started, env.now
            )
