"""Zipfian page selection (§7.1).

The paper draws page identities from a Zipfian distribution with skew
parameter theta: the access frequency of the page with rank ``p``
(1-based) is proportional to ``1 / p**theta``.  ``theta = 0`` is the
uniform distribution; ``theta = 1`` is classic Zipf ("very highly
skewed" in the paper's words).

Sampling uses Walker's alias method: after an O(n) table build, every
draw costs O(1) and consumes exactly **one** uniform variate from the
caller's RNG stream, so the named-stream determinism of
:class:`~repro.sim.rng.RandomStreams` is preserved (a fixed stream
always yields the same rank sequence).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

#: Memoized alias tables keyed by ``(num_items, theta)``.  Goal sweeps
#: clone ClassSpecs per sweep point, and every clone used to pay the
#: O(n) Vose rebuild even though the distribution — which depends only
#: on the item count and skew — was unchanged.  The tables are
#: immutable once built, so sharing them across samplers (and across
#: replicas of the same workload) is safe.
_ALIAS_CACHE: Dict[Tuple[int, float], Tuple[float, List[float], List[int]]] = {}


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^theta."""

    def __init__(self, num_items: int, theta: float):
        if num_items < 1:
            raise ValueError("need at least one item")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.num_items = num_items
        self.theta = theta
        cached = _ALIAS_CACHE.get((num_items, theta))
        if cached is None:
            weights = [
                rank ** (-theta) for rank in range(1, num_items + 1)
            ]
            total = sum(weights)
            accept, alias = self._build_alias(weights, total)
            cached = (total, accept, alias)
            _ALIAS_CACHE[(num_items, theta)] = cached
        self._total, self._accept, self._alias = cached

    @staticmethod
    def _build_alias(weights: List[float], total: float):
        """Vose's stable construction of the alias table."""
        n = len(weights)
        accept = [0.0] * n
        alias = list(range(n))
        # Scale so the average weight is exactly 1.
        scaled = [w * n / total for w in weights]
        small = [i for i, w in enumerate(scaled) if w < 1.0]
        large = [i for i, w in enumerate(scaled) if w >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            accept[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftovers are exactly 1 up to float rounding.
        for i in large:
            accept[i] = 1.0
        for i in small:
            accept[i] = 1.0
        return accept, alias

    def sample(self, rng: random.Random) -> int:
        """Draw one rank in [0, num_items) — O(1), one uniform consumed."""
        scaled = rng.random() * self.num_items
        column = int(scaled)
        if scaled - column < self._accept[column]:
            return column
        return self._alias[column]

    def sample_from_uniform(self, u: float) -> int:
        """Map one uniform variate in [0, 1) to a rank.

        Bit-identical to :meth:`sample` fed the same variate — the
        block-drawing arrival front-end pre-draws uniforms in stream
        order and transforms them here, so a block-drawn rank sequence
        equals the sequential one variate for variate.
        """
        scaled = u * self.num_items
        column = int(scaled)
        if scaled - column < self._accept[column]:
            return column
        return self._alias[column]

    def probability(self, rank: int) -> float:
        """Exact access probability of ``rank`` (0-based)."""
        if not 0 <= rank < self.num_items:
            raise ValueError("rank out of range")
        return (rank + 1) ** (-self.theta) / self._total


class ZipfPagePicker:
    """Maps Zipf ranks onto an explicit, ordered page set."""

    def __init__(self, pages: Sequence[int], theta: float):
        self.pages = list(pages)
        self.sampler = ZipfSampler(len(self.pages), theta)

    def pick(self, rng: random.Random) -> int:
        """Draw one page id from the set."""
        return self.pages[self.sampler.sample(rng)]

    def pick_from_uniform(self, u: float) -> int:
        """Map one pre-drawn uniform variate to a page id."""
        return self.pages[self.sampler.sample_from_uniform(u)]
