"""Zipfian page selection (§7.1).

The paper draws page identities from a Zipfian distribution with skew
parameter theta: the access frequency of the page with rank ``p``
(1-based) is proportional to ``1 / p**theta``.  ``theta = 0`` is the
uniform distribution; ``theta = 1`` is classic Zipf ("very highly
skewed" in the paper's words).
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^theta."""

    def __init__(self, num_items: int, theta: float):
        if num_items < 1:
            raise ValueError("need at least one item")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.num_items = num_items
        self.theta = theta
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, num_items + 1):
            total += rank ** (-theta)
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """Draw one rank in [0, num_items)."""
        u = rng.random() * self._total
        return bisect.bisect_left(self._cumulative, u)

    def probability(self, rank: int) -> float:
        """Exact access probability of ``rank`` (0-based)."""
        if not 0 <= rank < self.num_items:
            raise ValueError("rank out of range")
        return (rank + 1) ** (-self.theta) / self._total


class ZipfPagePicker:
    """Maps Zipf ranks onto an explicit, ordered page set."""

    def __init__(self, pages: Sequence[int], theta: float):
        self.pages = list(pages)
        self.sampler = ZipfSampler(len(self.pages), theta)

    def pick(self, rng: random.Random) -> int:
        """Draw one page id from the set."""
        return self.pages[self.sampler.sample(rng)]
