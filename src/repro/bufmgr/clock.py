"""CLOCK (second-chance) replacement.

A classic LRU approximation: pages sit on a circular list with a
reference bit; the clock hand sweeps, clearing bits, and evicts the
first page found with a cleared bit.  Included to back the paper's §1
claim that the partitioning algorithm "can be used in combination with
almost every replacement strategy".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.bufmgr.base import BufferPool


class ClockPool(BufferPool):
    """Second-chance replacement with a sweeping hand."""

    policy = "clock"

    __slots__ = ("_pages",)

    def __init__(self, capacity: int):
        super().__init__(capacity)
        #: page id -> reference bit; insertion order is the ring order.
        self._pages: "OrderedDict[int, bool]" = OrderedDict()

    def _select_victim(self) -> int:
        # Sweep: give referenced pages a second chance by clearing the
        # bit and rotating them behind the hand.
        while True:
            page_id, referenced = next(iter(self._pages.items()))
            if not referenced:
                return page_id
            self._pages[page_id] = False
            self._pages.move_to_end(page_id)

    def _store(self, page_id: int) -> None:
        self._pages[page_id] = False

    def _discard(self, page_id: int) -> None:
        del self._pages[page_id]

    def touch(self, page_id: int) -> None:
        self._pages[page_id] = True

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page_ids(self) -> Iterable[int]:
        return iter(self._pages)
