"""Storage-hierarchy levels and measured access costs.

The NOW has a three-level storage hierarchy (§1): local cache, remote
cache, and disk.  The cost-based replacement needs the access cost of
each level; per §6 these are *measured*, by tagging each page request
with the level it was served from and observing the response times of
finished requests.
"""

from __future__ import annotations

from enum import Enum

from repro.sim.stats import OnlineStats


class AccessLevel(Enum):
    """Where a page request was satisfied."""

    # Identity hash (consistent with enum identity equality) keeps
    # level-keyed dict probes off ``Enum.__hash__``, a Python-level
    # call on an access-path-adjacent lookup.
    __hash__ = object.__hash__

    LOCAL = "local"    # hit in a buffer of the requesting node
    REMOTE = "remote"  # shipped from another node's cache
    DISK = "disk"      # read from the home node's disk


#: Cost ordering the paper's analysis depends on.
LEVEL_ORDER = (AccessLevel.LOCAL, AccessLevel.REMOTE, AccessLevel.DISK)


class CostObserver:
    """Online mean access cost per storage level.

    Starts from physically motivated defaults so benefit computations
    are sane before the first measurements arrive, then converges to
    the observed means.

    ``observe`` runs once per finished page access and the current
    means are read on every benefit pricing, so the three levels live
    in plain slots (``cost_local`` / ``cost_remote`` / ``cost_disk``)
    selected by identity checks — no enum-keyed dict lookups (and no
    enum ``__hash__`` calls) on the hot path.
    """

    __slots__ = ("_local", "_remote", "_disk", "version",
                 "cost_local", "cost_remote", "cost_disk")

    #: Initial estimates in milliseconds (local ~ CPU only, remote ~
    #: one round trip + page wire time, disk ~ seek + rotation +
    #: transfer).  Refined by measurements immediately.
    DEFAULTS = {
        AccessLevel.LOCAL: 0.05,
        AccessLevel.REMOTE: 0.6,
        AccessLevel.DISK: 12.5,
    }

    def __init__(self):
        self._local = OnlineStats()
        self._remote = OnlineStats()
        self._disk = OnlineStats()
        #: Bumped on every observation; consumers (e.g.
        #: :class:`~repro.bufmgr.costbased.BenefitModel`) cache the
        #: per-level means and invalidate when the version moves.
        self.version = 0
        #: Current mean estimate per level (default until measured).
        self.cost_local = self.DEFAULTS[AccessLevel.LOCAL]
        self.cost_remote = self.DEFAULTS[AccessLevel.REMOTE]
        self.cost_disk = self.DEFAULTS[AccessLevel.DISK]

    def _stats_for(self, level: AccessLevel) -> OnlineStats:
        if level is AccessLevel.LOCAL:
            return self._local
        if level is AccessLevel.REMOTE:
            return self._remote
        if level is AccessLevel.DISK:
            return self._disk
        raise KeyError(level)

    def observe(self, level: AccessLevel, elapsed_ms: float) -> None:
        """Fold one finished request's elapsed time into the estimate."""
        if elapsed_ms < 0:
            raise ValueError("elapsed time must be non-negative")
        if level is AccessLevel.LOCAL:
            stats = self._local
            stats.add(elapsed_ms)
            self.cost_local = stats._mean
        elif level is AccessLevel.REMOTE:
            stats = self._remote
            stats.add(elapsed_ms)
            self.cost_remote = stats._mean
        elif level is AccessLevel.DISK:
            stats = self._disk
            stats.add(elapsed_ms)
            self.cost_disk = stats._mean
        else:
            raise KeyError(level)
        self.version += 1

    def cost(self, level: AccessLevel) -> float:
        """Current mean cost estimate for ``level`` in milliseconds."""
        if level is AccessLevel.LOCAL:
            return self.cost_local
        if level is AccessLevel.REMOTE:
            return self.cost_remote
        if level is AccessLevel.DISK:
            return self.cost_disk
        raise KeyError(level)

    def observations(self, level: AccessLevel) -> int:
        """How many measurements back the estimate for ``level``."""
        return self._stats_for(level).count
