"""Storage-hierarchy levels and measured access costs.

The NOW has a three-level storage hierarchy (§1): local cache, remote
cache, and disk.  The cost-based replacement needs the access cost of
each level; per §6 these are *measured*, by tagging each page request
with the level it was served from and observing the response times of
finished requests.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

from repro.sim.stats import OnlineStats


class AccessLevel(Enum):
    """Where a page request was satisfied."""

    LOCAL = "local"    # hit in a buffer of the requesting node
    REMOTE = "remote"  # shipped from another node's cache
    DISK = "disk"      # read from the home node's disk


#: Cost ordering the paper's analysis depends on.
LEVEL_ORDER = (AccessLevel.LOCAL, AccessLevel.REMOTE, AccessLevel.DISK)


class CostObserver:
    """Online mean access cost per storage level.

    Starts from physically motivated defaults so benefit computations
    are sane before the first measurements arrive, then converges to
    the observed means.
    """

    #: Initial estimates in milliseconds (local ~ CPU only, remote ~
    #: one round trip + page wire time, disk ~ seek + rotation +
    #: transfer).  Refined by measurements immediately.
    DEFAULTS = {
        AccessLevel.LOCAL: 0.05,
        AccessLevel.REMOTE: 0.6,
        AccessLevel.DISK: 12.5,
    }

    def __init__(self):
        self._stats: Dict[AccessLevel, OnlineStats] = {
            level: OnlineStats() for level in AccessLevel
        }
        #: Bumped on every observation; consumers (e.g.
        #: :class:`~repro.bufmgr.costbased.BenefitModel`) cache the
        #: per-level means and invalidate when the version moves.
        self.version = 0

    def observe(self, level: AccessLevel, elapsed_ms: float) -> None:
        """Fold one finished request's elapsed time into the estimate."""
        if elapsed_ms < 0:
            raise ValueError("elapsed time must be non-negative")
        self._stats[level].add(elapsed_ms)
        self.version += 1

    def cost(self, level: AccessLevel) -> float:
        """Current mean cost estimate for ``level`` in milliseconds."""
        stats = self._stats[level]
        if stats.count == 0:
            return self.DEFAULTS[level]
        return stats.mean

    def observations(self, level: AccessLevel) -> int:
        """How many measurements back the estimate for ``level``."""
        return self._stats[level].count
