"""Heat estimation and dissemination for cost-based replacement.

*Heat* is the access frequency of a page (accesses per time unit),
locally per node and globally across the cluster (§6).  Following the
paper, heat is approximated with the LRU-K statistic: with the last K
access times recorded, ``heat = K / (now - t_K)`` where ``t_K`` is the
K-th most recent access.

Bookkeeping is created and deleted on demand: a (class, page) entry
only exists once an operation of that class touched the page, exactly
as §6 prescribes to bound the overhead.

The default ``k = 2`` — what every pool in the system uses — is
specialized: access histories are plain ``(t_prev, t_last)`` tuples in
one flat dict instead of a per-key ``deque``.  A ``deque`` costs one
~600-byte heap object per tracked key plus an extra indirection on
every ``heat()`` call; the tuple layout cuts the per-key footprint by
roughly an order of magnitude on large databases without changing a
single computed heat value (``len(h) / (now - h[0])`` is the same
arithmetic either way).  General ``k`` keeps the deque path via the
``_DequeHeatTracker`` fallback, chosen transparently in ``__new__``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Optional, Tuple


class HeatTracker:
    """LRU-K-style heat estimates for a set of keys.

    Keys are arbitrary hashables — a page id for accumulated heat, a
    ``(class_id, page_id)`` pair for class-specific heat.

    Instantiating with the default ``k=2`` yields the tuple-specialized
    tracker; any other ``k`` transparently constructs the deque-backed
    :class:`_DequeHeatTracker` fallback.
    """

    __slots__ = ("k", "_history")

    def __new__(cls, k: int = 2):
        if cls is HeatTracker and k != 2:
            return object.__new__(_DequeHeatTracker)
        return object.__new__(cls)

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._history: Dict[Hashable, Tuple[float, ...]] = {}

    def record(self, key: Hashable, now: float) -> None:
        """Register one access to ``key`` at time ``now``."""
        history = self._history
        prev = history.get(key)
        if prev is None:
            history[key] = (now,)
        else:
            history[key] = (prev[-1], now)

    def heat(self, key: Hashable, now: float) -> float:
        """Estimated accesses per time unit for ``key`` (0.0 if unknown)."""
        history = self._history.get(key)
        if history is None:
            return 0.0
        span = now - history[0]
        if span <= 0.0:
            # All recorded accesses happened "now"; treat as very hot.
            return float(len(history))
        return len(history) / span

    def forget(self, key: Hashable) -> None:
        """Delete the bookkeeping for ``key`` (on-demand deletion, §6)."""
        self._history.pop(key, None)

    def clear(self) -> None:
        """Drop all bookkeeping (node restart)."""
        self._history.clear()

    def tracked(self, key: Hashable) -> bool:
        """True if any access to ``key`` is on record."""
        return key in self._history

    def __len__(self) -> int:
        return len(self._history)


class _DequeHeatTracker(HeatTracker):
    """General-``k`` fallback keeping the last K access times per key.

    Shares every query method with :class:`HeatTracker` — a deque
    supports ``len`` and ``[0]`` just like the tuple pairs — and only
    ``record`` differs.
    """

    __slots__ = ()

    def record(self, key: Hashable, now: float) -> None:
        """Register one access to ``key`` at time ``now``."""
        history = self._history.get(key)
        if history is None:
            history = deque(maxlen=self.k)
            self._history[key] = history
        history.append(now)


class GlobalHeatRegistry:
    """Cluster-wide heat, shared by all nodes' cost-based pools.

    The real system uses threshold-based update protocols [27, 26]; the
    simulation keeps the registry exact but invokes ``on_update`` once
    per ``update_threshold`` recorded accesses per page (the cluster
    wires this to HEAT_UPDATE message accounting), so the §7.5 traffic
    accounting reflects the dissemination cost.
    """

    __slots__ = ("_tracker", "_on_update", "_threshold", "_pending")

    def __init__(self, k: int = 2,
                 on_update: Optional[Callable[[], None]] = None,
                 update_threshold: int = 8):
        self._tracker = HeatTracker(k)
        self._on_update = on_update
        self._threshold = max(1, update_threshold)
        self._pending: Dict[int, int] = {}

    def record(self, page_id: int, now: float) -> None:
        """Register one access to ``page_id`` anywhere in the cluster."""
        self._tracker.record(page_id, now)
        pending = self._pending
        count = pending.get(page_id, 0) + 1
        if count >= self._threshold:
            # Drop the key instead of storing 0 so ``_pending`` only
            # holds pages part-way to their next dissemination.
            pending.pop(page_id, None)
            if self._on_update is not None:
                self._on_update()
        else:
            pending[page_id] = count

    def heat(self, page_id: int, now: float) -> float:
        """Cluster-wide access rate estimate for ``page_id``."""
        return self._tracker.heat(page_id, now)

    def forget(self, page_id: int) -> None:
        """Delete all bookkeeping for ``page_id`` (on-demand, §6).

        Called from discard paths where heat state is genuinely lost
        (node restart wiping the last cached copy).  Ordinary evictions
        must NOT forget: cluster-wide heat is an access-frequency
        statistic that has to survive transient evictions for the
        last-copy benefit term to mean anything.
        """
        self._tracker.forget(page_id)
        self._pending.pop(page_id, None)

    def clear(self) -> None:
        """Drop every page's bookkeeping (cluster-wide reset)."""
        self._tracker.clear()
        self._pending.clear()

    def tracked(self, page_id: int) -> bool:
        """True if any access to ``page_id`` is on record."""
        return self._tracker.tracked(page_id)

    def __len__(self) -> int:
        return len(self._tracker)

    @property
    def pending_count(self) -> int:
        """Pages currently part-way to their next update (inspection)."""
        return len(self._pending)
