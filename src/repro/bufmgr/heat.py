"""Heat estimation and dissemination for cost-based replacement.

*Heat* is the access frequency of a page (accesses per time unit),
locally per node and globally across the cluster (§6).  Following the
paper, heat is approximated with the LRU-K statistic: with the last K
access times recorded, ``heat = K / (now - t_K)`` where ``t_K`` is the
K-th most recent access.

Bookkeeping is created and deleted on demand: a (class, page) entry
only exists once an operation of that class touched the page, exactly
as §6 prescribes to bound the overhead.

The default ``k = 2`` — what every pool in the system uses — is
specialized with a *columnar* layout: instead of one boxed history
object per key (a tuple or deque), the tracker keeps two parallel
``array('d')`` columns holding the previous and the latest access time,
plus one slot dict mapping keys to column indices.  A slot freed by
``forget`` goes onto a free-list and is reused by the next new key, so
the columns stay bounded by the *peak* number of concurrently tracked
keys no matter how much churn a long run generates.  The arithmetic is
unchanged (``n / (now - oldest)``), so every computed heat value is
bit-identical to the boxed layouts; what changes is the per-key
footprint (16 bytes of column data instead of a GC-tracked container)
and the garbage-collector pressure at millions of tracked pages.
General ``k`` keeps a per-key deque via the ``_DequeHeatTracker``
fallback, chosen transparently in ``__new__``.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Callable, Dict, Hashable, List, Optional

#: Column sentinel: a key whose ``_t0`` column holds NaN has exactly one
#: recorded access (in ``_t1``).  NaN is unreachable as a real access
#: time and is self-identifying via ``x != x``.
_ONE_ACCESS = float("nan")


class HeatTracker:
    """LRU-K-style heat estimates for a set of keys.

    Keys are arbitrary hashables — a page id for accumulated heat, a
    ``(class_id, page_id)`` pair for class-specific heat.

    Instantiating with the default ``k=2`` yields the columnar
    tracker; any other ``k`` transparently constructs the deque-backed
    :class:`_DequeHeatTracker` fallback.
    """

    __slots__ = ("k", "_slots", "_t0", "_t1", "_free")

    def __new__(cls, k: int = 2):
        if cls is HeatTracker and k != 2:
            return object.__new__(_DequeHeatTracker)
        return object.__new__(cls)

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._slots: Dict[Hashable, int] = {}
        self._t0 = array("d")  # previous access time (NaN: only one)
        self._t1 = array("d")  # latest access time
        self._free: List[int] = []

    def record(self, key: Hashable, now: float) -> None:
        """Register one access to ``key`` at time ``now``."""
        slots = self._slots
        slot = slots.get(key)
        if slot is None:
            free = self._free
            if free:
                slot = free.pop()
                self._t0[slot] = _ONE_ACCESS
                self._t1[slot] = now
            else:
                slot = len(self._t1)
                self._t0.append(_ONE_ACCESS)
                self._t1.append(now)
            slots[key] = slot
        else:
            t1 = self._t1
            self._t0[slot] = t1[slot]
            t1[slot] = now

    def record_slot(self, key: Hashable, now: float) -> int:
        """:meth:`record`, returning the key's column slot.

        Lets :class:`GlobalHeatRegistry` keep its per-page dissemination
        counters in a column parallel to these, without a second key
        lookup.
        """
        slots = self._slots
        slot = slots.get(key)
        if slot is None:
            free = self._free
            if free:
                slot = free.pop()
                self._t0[slot] = _ONE_ACCESS
                self._t1[slot] = now
            else:
                slot = len(self._t1)
                self._t0.append(_ONE_ACCESS)
                self._t1.append(now)
            slots[key] = slot
        else:
            t1 = self._t1
            self._t0[slot] = t1[slot]
            t1[slot] = now
        return slot

    def heat(self, key: Hashable, now: float) -> float:
        """Estimated accesses per time unit for ``key`` (0.0 if unknown)."""
        slot = self._slots.get(key)
        if slot is None:
            return 0.0
        t0 = self._t0[slot]
        if t0 != t0:  # NaN: a single recorded access
            span = now - self._t1[slot]
            if span <= 0.0:
                # All recorded accesses happened "now"; treat as very hot.
                return 1.0
            return 1.0 / span
        span = now - t0
        if span <= 0.0:
            return 2.0
        return 2.0 / span

    def forget(self, key: Hashable) -> None:
        """Delete the bookkeeping for ``key`` (on-demand deletion, §6).

        The key's column slot goes onto the free-list for reuse, so the
        columns never grow past the peak number of tracked keys.
        """
        slot = self._slots.pop(key, None)
        if slot is not None:
            self._free.append(slot)

    def slot_of(self, key: Hashable) -> Optional[int]:
        """Column slot of ``key``, or None if untracked (inspection)."""
        return self._slots.get(key)

    def clear(self) -> None:
        """Drop all bookkeeping (node restart)."""
        self._slots.clear()
        del self._free[:]
        # Recreate instead of truncating: a restart should give the
        # memory back, not keep peak-sized columns alive.
        self._t0 = array("d")
        self._t1 = array("d")

    def tracked(self, key: Hashable) -> bool:
        """True if any access to ``key`` is on record."""
        return key in self._slots

    @property
    def column_slots(self) -> int:
        """Allocated column length (live keys + free-list slots)."""
        return len(self._t1)

    def __len__(self) -> int:
        return len(self._slots)


class _DequeHeatTracker(HeatTracker):
    """General-``k`` fallback keeping the last K access times per key.

    Keeps the boxed layout (one deque per key in ``_history``) and
    overrides every column-touching method of :class:`HeatTracker`;
    only the public API is shared.
    """

    __slots__ = ("_history",)

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._history: Dict[Hashable, deque] = {}

    def record(self, key: Hashable, now: float) -> None:
        """Register one access to ``key`` at time ``now``."""
        history = self._history.get(key)
        if history is None:
            history = deque(maxlen=self.k)
            self._history[key] = history
        history.append(now)

    def record_slot(self, key: Hashable, now: float) -> int:
        """:meth:`record`; deques have no column slots, returns -1."""
        self.record(key, now)
        return -1

    def heat(self, key: Hashable, now: float) -> float:
        """Estimated accesses per time unit for ``key`` (0.0 if unknown)."""
        history = self._history.get(key)
        if history is None:
            return 0.0
        span = now - history[0]
        if span <= 0.0:
            return float(len(history))
        return len(history) / span

    def forget(self, key: Hashable) -> None:
        """Delete the bookkeeping for ``key`` (on-demand deletion, §6)."""
        self._history.pop(key, None)

    def slot_of(self, key: Hashable) -> Optional[int]:
        """Deques have no column slots; always None."""
        return None

    def clear(self) -> None:
        """Drop all bookkeeping (node restart)."""
        self._history.clear()

    def tracked(self, key: Hashable) -> bool:
        """True if any access to ``key`` is on record."""
        return key in self._history

    @property
    def column_slots(self) -> int:
        """Boxed layout: one history object per live key."""
        return len(self._history)

    def __len__(self) -> int:
        return len(self._history)


class GlobalHeatRegistry:
    """Cluster-wide heat, shared by all nodes' cost-based pools.

    The real system uses threshold-based update protocols [27, 26]; the
    simulation keeps the registry exact but invokes ``on_update`` once
    per ``update_threshold`` recorded accesses per page (the cluster
    wires this to HEAT_UPDATE message accounting), so the §7.5 traffic
    accounting reflects the dissemination cost.

    With the default columnar tracker the per-page dissemination
    counters live in an ``array('i')`` column parallel to the tracker's
    time columns (slot-for-slot), instead of a dict that holds an entry
    for nearly every tracked page in steady state.  The deque fallback
    (``k != 2``) keeps the dict-based counters.
    """

    __slots__ = ("_tracker", "_on_update", "_threshold", "_pending",
                 "_pending_col", "_pending_n")

    def __init__(self, k: int = 2,
                 on_update: Optional[Callable[[], None]] = None,
                 update_threshold: int = 8):
        self._tracker = HeatTracker(k)
        self._on_update = on_update
        self._threshold = max(1, update_threshold)
        if type(self._tracker) is HeatTracker:
            self._pending: Optional[Dict[int, int]] = None
            self._pending_col: Optional[array] = array("i")
        else:
            self._pending = {}
            self._pending_col = None
        self._pending_n = 0

    def record(self, page_id: int, now: float) -> None:
        """Register one access to ``page_id`` anywhere in the cluster."""
        slot = self._tracker.record_slot(page_id, now)
        pend = self._pending_col
        if pend is not None:
            npend = len(pend)
            if slot >= npend:
                # Grow in lockstep with the tracker's columns (newly
                # allocated slots start at a zero counter).
                pend.extend(bytes(4 * (slot + 1 - npend)))
            count = pend[slot] + 1
            if count >= self._threshold:
                pend[slot] = 0
                if count > 1:
                    self._pending_n -= 1
                if self._on_update is not None:
                    self._on_update()
            else:
                pend[slot] = count
                if count == 1:
                    self._pending_n += 1
            return
        pending = self._pending
        count = pending.get(page_id, 0) + 1
        if count >= self._threshold:
            # Drop the key instead of storing 0 so ``_pending`` only
            # holds pages part-way to their next dissemination.
            pending.pop(page_id, None)
            if self._on_update is not None:
                self._on_update()
        else:
            pending[page_id] = count

    def heat(self, page_id: int, now: float) -> float:
        """Cluster-wide access rate estimate for ``page_id``."""
        return self._tracker.heat(page_id, now)

    def forget(self, page_id: int) -> None:
        """Delete all bookkeeping for ``page_id`` (on-demand, §6).

        Called from discard paths where heat state is genuinely lost
        (node restart wiping the last cached copy).  Ordinary evictions
        must NOT forget: cluster-wide heat is an access-frequency
        statistic that has to survive transient evictions for the
        last-copy benefit term to mean anything.

        The page's column slot (time columns and pending counter alike)
        is reclaimed through the tracker's free-list.
        """
        pend = self._pending_col
        if pend is not None:
            slot = self._tracker.slot_of(page_id)
            if slot is not None and pend[slot]:
                pend[slot] = 0
                self._pending_n -= 1
        else:
            self._pending.pop(page_id, None)
        self._tracker.forget(page_id)

    def clear(self) -> None:
        """Drop every page's bookkeeping (cluster-wide reset)."""
        self._tracker.clear()
        if self._pending_col is not None:
            self._pending_col = array("i")
            self._pending_n = 0
        else:
            self._pending.clear()

    def tracked(self, page_id: int) -> bool:
        """True if any access to ``page_id`` is on record."""
        return self._tracker.tracked(page_id)

    @property
    def column_slots(self) -> int:
        """Allocated tracker column length (churn-boundedness probe)."""
        return self._tracker.column_slots

    def __len__(self) -> int:
        return len(self._tracker)

    @property
    def pending_count(self) -> int:
        """Pages currently part-way to their next update (inspection)."""
        if self._pending_col is not None:
            return self._pending_n
        return len(self._pending)
