"""Cost-based benefit replacement (Sinnwell & Weikum, ICDE '97; §6).

The *benefit* of a cached page is the difference in expected access
cost between keeping the page locally and dropping it:

- While another cached copy exists somewhere, dropping the page turns
  future local hits into remote-cache accesses, so the benefit is
  ``local_heat * (cost_remote - cost_local)``.
- If the local copy is the **last** cached copy in the system, dropping
  it additionally forces *every* node's future accesses to disk, adding
  ``global_heat * (cost_disk - cost_remote)``.

This balances egoistic (local hit rate) and altruistic (global hit
rate) behaviour through the measured cost ratios.  The pool keeps pages
ranked by benefit and evicts the page with the lowest benefit.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable

from repro.bufmgr.base import BufferPool
from repro.bufmgr.costs import AccessLevel, CostObserver
from repro.bufmgr.heat import GlobalHeatRegistry, HeatTracker


class BenefitModel:
    """Everything needed to price a cached page on one node.

    The three :class:`CostObserver` levels are cached against the
    observer's ``version`` counter: they change only when a finished
    request reports a new measurement, while ``benefit`` runs on every
    heap push and eviction candidate — so the cache turns three
    enum-keyed stat lookups per pricing into one integer comparison.
    """

    def __init__(
        self,
        node_id: int,
        local_heat: HeatTracker,
        global_heat: GlobalHeatRegistry,
        costs: CostObserver,
        is_last_copy: Callable[[int, int], bool],
        clock: Callable[[], float],
    ):
        self.node_id = node_id
        self.local_heat = local_heat
        self.global_heat = global_heat
        self.costs = costs
        self._is_last_copy = is_last_copy
        self.clock = clock
        self._cost_version = -1  # forces a refresh on first pricing
        self._keep_spread = 0.0       # cost_remote - cost_local, >= 0
        self._last_copy_spread = 0.0  # cost_disk - cost_remote, >= 0

    def _refresh_costs(self) -> None:
        costs = self.costs
        self._cost_version = costs.version
        cost_local = costs.cost(AccessLevel.LOCAL)
        cost_remote = costs.cost(AccessLevel.REMOTE)
        cost_disk = costs.cost(AccessLevel.DISK)
        self._keep_spread = max(cost_remote - cost_local, 0.0)
        self._last_copy_spread = max(cost_disk - cost_remote, 0.0)

    def benefit(self, page_id: int) -> float:
        """Expected cost saved per time unit by keeping ``page_id``."""
        if self._cost_version != self.costs.version:
            self._refresh_costs()
        now = self.clock()
        value = self.local_heat.heat(page_id, now) * self._keep_spread
        if self._is_last_copy(page_id, self.node_id):
            value += (
                self.global_heat.heat(page_id, now) * self._last_copy_spread
            )
        return value


class CostBasedPool(BufferPool):
    """Pool evicting the page with the lowest current benefit.

    Mirrors the paper's implementation, which keeps pages in a priority
    queue ordered by benefit.  Benefits drift as heat and measured
    costs change, so the queue holds *estimates*: every insert and
    touch pushes a fresh entry (stale entries are skipped lazily), and
    at eviction time the ``revalidate`` lowest candidates are re-priced
    and the cheapest fresh one is evicted.  This bounds the per-eviction
    work to O(revalidate · log n) instead of a full O(n) re-scan while
    staying very close to the exact minimum.
    """

    policy = "cost-based"

    def __init__(self, capacity: int, model: BenefitModel,
                 revalidate: int = 8):
        if revalidate < 1:
            raise ValueError("revalidate must be >= 1")
        super().__init__(capacity)
        self.model = model
        self.revalidate = revalidate
        self._pages: Dict[int, int] = {}  # page id -> newest entry seq
        self._heap: list = []             # (benefit, seq, page id)
        self._seq = 0

    def _push(self, page_id: int) -> None:
        self._seq += 1
        self._pages[page_id] = self._seq
        heapq.heappush(
            self._heap, (self.model.benefit(page_id), self._seq, page_id)
        )

    def _pop_valid(self):
        """Pop heap entries until one matches a live page's newest entry."""
        while self._heap:
            benefit, seq, page_id = heapq.heappop(self._heap)
            if self._pages.get(page_id) == seq:
                return benefit, page_id
        raise KeyError("pool is empty")

    def _select_victim(self) -> int:
        """Re-price the ``revalidate`` cheapest candidates and evict one.

        Each candidate is priced exactly once: the fresh benefit drives
        both the victim comparison and the re-push of the survivors, so
        no page is priced twice within one eviction.
        """
        benefit = self.model.benefit
        candidates = []
        limit = min(self.revalidate, len(self._pages))
        for _ in range(limit):
            _, page_id = self._pop_valid()
            candidates.append((benefit(page_id), page_id))
        best = min(candidates)
        victim = best[1]
        heap = self._heap
        push = heapq.heappush
        for entry in candidates:
            if entry[1] == victim:
                continue
            self._seq += 1
            self._pages[entry[1]] = self._seq
            push(heap, (entry[0], self._seq, entry[1]))
        # The victim stays indexed until _discard removes it; restore
        # its entry so state is consistent even if the caller keeps it.
        self._seq += 1
        self._pages[victim] = self._seq
        push(heap, (best[0], self._seq, victim))
        return victim

    def _store(self, page_id: int) -> None:
        self._push(page_id)

    def _discard(self, page_id: int) -> None:
        del self._pages[page_id]
        if len(self._heap) > 4 * max(len(self._pages), 16):
            self._compact()

    def _compact(self) -> None:
        self._heap = [
            entry for entry in self._heap
            if self._pages.get(entry[2]) == entry[1]
        ]
        heapq.heapify(self._heap)

    def touch(self, page_id: int) -> None:
        # Refresh the page's benefit estimate in the queue.
        self._push(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page_ids(self) -> Iterable[int]:
        return iter(self._pages)

    def benefit_of(self, page_id: int) -> float:
        """Current benefit of a cached page (for inspection/tests)."""
        if page_id not in self._pages:
            raise KeyError(page_id)
        return self.model.benefit(page_id)
