"""Cost-based benefit replacement (Sinnwell & Weikum, ICDE '97; §6).

The *benefit* of a cached page is the difference in expected access
cost between keeping the page locally and dropping it:

- While another cached copy exists somewhere, dropping the page turns
  future local hits into remote-cache accesses, so the benefit is
  ``local_heat * (cost_remote - cost_local)``.
- If the local copy is the **last** cached copy in the system, dropping
  it additionally forces *every* node's future accesses to disk, adding
  ``global_heat * (cost_disk - cost_remote)``.

This balances egoistic (local hit rate) and altruistic (global hit
rate) behaviour through the measured cost ratios.  The pool keeps pages
ranked by benefit and evicts the page with the lowest benefit.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable

from repro.bufmgr.base import BufferPool
from repro.bufmgr.costs import CostObserver
from repro.bufmgr.heat import GlobalHeatRegistry, HeatTracker


class BenefitModel:
    """Everything needed to price a cached page on one node.

    The two cost spreads are cached against the observer's ``version``
    counter: they change only when a finished request reports a new
    measurement, while ``benefit`` runs on every insert, touch, and
    eviction candidate — and the refresh itself reads the observer's
    plain per-level mean slots, so a version miss costs two
    subtractions instead of three enum-keyed stat lookups.
    """

    __slots__ = ("node_id", "local_heat", "global_heat", "costs",
                 "_is_last_copy", "clock", "_cost_version",
                 "_keep_spread", "_last_copy_spread")

    def __init__(
        self,
        node_id: int,
        local_heat: HeatTracker,
        global_heat: GlobalHeatRegistry,
        costs: CostObserver,
        is_last_copy: Callable[[int, int], bool],
        clock: Callable[[], float],
    ):
        self.node_id = node_id
        self.local_heat = local_heat
        self.global_heat = global_heat
        self.costs = costs
        self._is_last_copy = is_last_copy
        self.clock = clock
        self._cost_version = -1  # forces a refresh on first pricing
        self._keep_spread = 0.0       # cost_remote - cost_local, >= 0
        self._last_copy_spread = 0.0  # cost_disk - cost_remote, >= 0

    def _refresh_costs(self) -> None:
        costs = self.costs
        self._cost_version = costs.version
        keep = costs.cost_remote - costs.cost_local
        last_copy = costs.cost_disk - costs.cost_remote
        self._keep_spread = keep if keep > 0.0 else 0.0
        self._last_copy_spread = last_copy if last_copy > 0.0 else 0.0

    def benefit(self, page_id: int) -> float:
        """Expected cost saved per time unit by keeping ``page_id``."""
        return self.benefit_at(page_id, self.clock())

    def benefit_at(self, page_id: int, now: float) -> float:
        """:meth:`benefit` priced at an explicit ``now``.

        Simulated time is frozen while an eviction runs, so a victim
        scan pricing ``revalidate`` candidates can read the clock once
        and share it — the values are exactly those ``benefit`` would
        return.
        """
        if self._cost_version != self.costs.version:
            self._refresh_costs()
        value = self.local_heat.heat(page_id, now) * self._keep_spread
        if self._is_last_copy(page_id, self.node_id):
            value += (
                self.global_heat.heat(page_id, now) * self._last_copy_spread
            )
        return value


class CostBasedPool(BufferPool):
    """Pool evicting the page with the lowest current benefit.

    Mirrors the paper's implementation, which keeps pages in a priority
    queue ordered by benefit.  Benefits drift as heat and measured
    costs change, so the queue holds *estimates*; at eviction time the
    ``revalidate`` lowest candidates are re-priced and the cheapest
    fresh one is evicted.  This bounds the per-eviction work to
    O(revalidate · log n) instead of a full O(n) re-scan while staying
    very close to the exact minimum.

    Hits are O(1) in the common case: ``touch`` refreshes the page's
    price in a flat dict instead of unconditionally pushing a freshly
    priced heap entry per hit.  When the estimate grew (the usual
    outcome — fresher heat), the existing heap entry sits at a price
    below the new estimate, so the page still surfaces no later than
    it should; ``_pop_valid`` re-syncs such drifted entries lazily at
    the next eviction.  Only a *shrinking* estimate needs an immediate
    push, because a stale higher-priced entry would otherwise hide the
    page from eviction.  Any run of price-raising hits between
    evictions thus costs at most one deferred heap operation, and the
    heap stays near one live entry per page instead of one per hit —
    while the estimates that drive victim selection are the exact
    touch-time prices the eager scheme maintained, so replacement
    decisions are unchanged (up to ties between float-identical
    benefits, where only the insertion-order tie-break can differ).
    """

    policy = "cost-based"

    __slots__ = ("model", "revalidate", "_pages", "_heap", "_seq",
                 "_price")

    def __init__(self, capacity: int, model: BenefitModel,
                 revalidate: int = 8):
        if revalidate < 1:
            raise ValueError("revalidate must be >= 1")
        super().__init__(capacity)
        self.model = model
        self.revalidate = revalidate
        self._pages: Dict[int, int] = {}  # page id -> newest entry seq
        self._heap: list = []             # (benefit, seq, page id)
        self._seq = 0
        self._price: Dict[int, float] = {}  # page id -> latest estimate

    def _push(self, page_id: int) -> None:
        benefit = self.model.benefit(page_id)
        self._price[page_id] = benefit
        self._seq += 1
        self._pages[page_id] = self._seq
        heapq.heappush(self._heap, (benefit, self._seq, page_id))

    def _push_priced(self, page_id: int, benefit: float) -> None:
        self._price[page_id] = benefit
        self._seq += 1
        self._pages[page_id] = self._seq
        heapq.heappush(self._heap, (benefit, self._seq, page_id))

    def _pop_valid(self):
        """Pop entries until one carries a live page's current estimate.

        Stale entries (superseded seq) are dropped; live entries whose
        stored price drifted from the page's ``_price`` estimate (the
        page was touched since the entry was pushed) are re-synced at
        the current estimate and the scan continues, so candidates
        always surface in up-to-date estimate order.  Returns
        ``(estimate, page_id)``.
        """
        heap = self._heap
        pages = self._pages
        price = self._price
        while heap:
            entry = heapq.heappop(heap)
            page_id = entry[2]
            if pages.get(page_id) != entry[1]:
                continue
            current = price[page_id]
            if current != entry[0]:
                self._push_priced(page_id, current)
                continue
            return current, page_id
        raise KeyError("pool is empty")

    def _select_victim(self) -> int:
        """Re-price the ``revalidate`` cheapest candidates and evict one.

        Each candidate is priced exactly once: the fresh benefit drives
        both the victim comparison and the re-push of the survivors, so
        no page is priced twice within one eviction.  The candidate
        scan inlines :meth:`_pop_valid` with the heap/dict bindings
        hoisted — this loop runs once per eviction, which at a high
        miss rate means once per access.
        """
        model = self.model
        benefit_at = model.benefit_at
        now = model.clock()
        heap = self._heap
        pages = self._pages
        price = self._price
        pages_get = pages.get
        pop = heapq.heappop
        candidates = []
        limit = min(self.revalidate, len(pages))
        for _ in range(limit):
            # Inlined _pop_valid: drop superseded entries, re-sync
            # price-drifted ones, stop at a live current-estimate entry.
            while True:
                entry = pop(heap)
                page_id = entry[2]
                if pages_get(page_id) != entry[1]:
                    continue
                current = price[page_id]
                if current != entry[0]:
                    self._push_priced(page_id, current)
                    continue
                break
            candidates.append((benefit_at(page_id, now), page_id))
        best = min(candidates)
        victim = best[1]
        push_priced = self._push_priced
        for entry in candidates:
            if entry[1] != victim:
                push_priced(entry[1], entry[0])
        # The victim stays indexed until _discard removes it; restore
        # its entry so state is consistent even if the caller keeps it.
        push_priced(victim, best[0])
        return victim

    def insert(self, page_id: int) -> list:
        """Specialized :meth:`BufferPool.insert` for the miss path.

        Identical decisions to the generic version; the membership,
        length, and store steps hit ``_pages`` directly instead of
        going through four abstract-method dispatches per admitted
        page.
        """
        pages = self._pages
        if page_id in pages:
            self.touch(page_id)
            return []
        capacity = self._capacity
        if capacity == 0:
            return [page_id]
        evicted = []
        while len(pages) >= capacity:
            victim = self._select_victim()
            self._discard(victim)
            evicted.append(victim)
        self._push(page_id)
        return evicted

    def _store(self, page_id: int) -> None:
        self._push(page_id)

    def _discard(self, page_id: int) -> None:
        del self._pages[page_id]
        del self._price[page_id]
        if len(self._heap) > 4 * max(len(self._pages), 16):
            self._compact()

    def _compact(self) -> None:
        self._heap = [
            entry for entry in self._heap
            if self._pages.get(entry[2]) == entry[1]
        ]
        heapq.heapify(self._heap)

    def touch(self, page_id: int) -> None:
        price = self._price
        benefit = self.model.benefit(page_id)
        if benefit < price[page_id]:
            # A shrinking estimate (cost spreads drifted down, or the
            # last-copy bonus vanished because another node cached the
            # page) must enter the heap immediately: behind its stale
            # higher-priced entry the page would never surface as an
            # eviction candidate.
            self._push_priced(page_id, benefit)
        else:
            # The common case — the estimate grew (fresher heat).  The
            # existing entry sits at a price <= the new estimate, so it
            # still surfaces no later than it should; _pop_valid
            # re-syncs it at the next eviction.  No heap op per hit.
            price[page_id] = benefit

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page_ids(self) -> Iterable[int]:
        return iter(self._pages)

    def benefit_of(self, page_id: int) -> float:
        """Current benefit of a cached page (for inspection/tests)."""
        if page_id not in self._pages:
            raise KeyError(page_id)
        return self.model.benefit(page_id)
