"""2Q replacement (Johnson & Shasha, VLDB '94).

2Q guards the main (hot) queue against scan pollution: a page's first
reference only admits it to a FIFO probation queue (A1in); pages
evicted from probation are remembered in a ghost list (A1out, ids
only); a reference to a remembered page promotes it to the hot LRU
queue (Am).  Like LRU-K it resists correlated scans — a natural
companion policy for the §6 cost-based manager's comparison suite.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.bufmgr.base import BufferPool


class TwoQPool(BufferPool):
    """Simplified full-version 2Q with configurable queue fractions."""

    policy = "2q"

    __slots__ = ("_kin", "_kout", "_a1in", "_am", "_a1out")

    def __init__(self, capacity: int, in_fraction: float = 0.25,
                 out_fraction: float = 0.5):
        if not 0.0 < in_fraction < 1.0:
            raise ValueError("in_fraction must lie in (0, 1)")
        if out_fraction <= 0.0:
            raise ValueError("out_fraction must be positive")
        super().__init__(capacity)
        self._kin = max(1, int(in_fraction * capacity)) if capacity else 0
        self._kout = max(1, int(out_fraction * capacity)) if capacity else 0
        self._a1in: "OrderedDict[int, None]" = OrderedDict()   # probation
        self._am: "OrderedDict[int, None]" = OrderedDict()     # hot, LRU
        self._a1out: "OrderedDict[int, None]" = OrderedDict()  # ghosts

    def _select_victim(self) -> int:
        # Prefer reclaiming from probation once it exceeds its share.
        if self._a1in and (len(self._a1in) > self._kin or not self._am):
            victim = next(iter(self._a1in))
            # Remember the evicted page as a ghost.
            self._a1out[victim] = None
            while len(self._a1out) > self._kout:
                self._a1out.popitem(last=False)
            return victim
        return next(iter(self._am))

    def _store(self, page_id: int) -> None:
        if page_id in self._a1out:
            # A remembered page returns hot.
            del self._a1out[page_id]
            self._am[page_id] = None
        else:
            self._a1in[page_id] = None

    def _discard(self, page_id: int) -> None:
        if page_id in self._a1in:
            del self._a1in[page_id]
        else:
            del self._am[page_id]

    def touch(self, page_id: int) -> None:
        if page_id in self._am:
            self._am.move_to_end(page_id)
        # A1in hits do NOT promote (2Q's scan resistance): the page
        # must be re-referenced after leaving probation.

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._a1in or page_id in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def page_ids(self) -> Iterable[int]:
        yield from self._a1in
        yield from self._am

    @property
    def hot_pages(self) -> int:
        """Pages currently in the hot (Am) queue."""
        return len(self._am)

    @property
    def ghost_pages(self) -> int:
        """Remembered-but-evicted page ids (A1out)."""
        return len(self._a1out)
