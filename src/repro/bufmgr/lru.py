"""Least-recently-used replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.bufmgr.base import BufferPool


class LruPool(BufferPool):
    """Classic LRU: evict the page untouched for the longest time."""

    policy = "lru"

    __slots__ = ("_pages",)

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def _select_victim(self) -> int:
        return next(iter(self._pages))

    def _store(self, page_id: int) -> None:
        self._pages[page_id] = None

    def _discard(self, page_id: int) -> None:
        del self._pages[page_id]

    def touch(self, page_id: int) -> None:
        self._pages.move_to_end(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page_ids(self) -> Iterable[int]:
        return iter(self._pages)
