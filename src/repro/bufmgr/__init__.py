"""Buffer management: pools, replacement policies, heat, and the
per-node multi-pool manager implementing the §6 access protocol."""

from repro.bufmgr.base import BufferPool
from repro.bufmgr.clock import ClockPool
from repro.bufmgr.costbased import BenefitModel, CostBasedPool
from repro.bufmgr.twoq import TwoQPool
from repro.bufmgr.costs import AccessLevel, CostObserver
from repro.bufmgr.fifo import FifoPool
from repro.bufmgr.heat import GlobalHeatRegistry, HeatTracker
from repro.bufmgr.lru import LruPool
from repro.bufmgr.lruk import LrukPool
from repro.bufmgr.manager import NO_GOAL_CLASS, NodeBufferManager

__all__ = [
    "AccessLevel",
    "BenefitModel",
    "BufferPool",
    "ClockPool",
    "CostBasedPool",
    "TwoQPool",
    "CostObserver",
    "FifoPool",
    "GlobalHeatRegistry",
    "HeatTracker",
    "LruPool",
    "LrukPool",
    "NO_GOAL_CLASS",
    "NodeBufferManager",
]
