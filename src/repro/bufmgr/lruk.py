"""LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD '93).

The victim is the page with the largest *backward K-distance*: the page
whose K-th most recent reference lies furthest in the past.  Pages with
fewer than K recorded references have infinite backward K-distance and
are evicted first (LRU order among themselves), as in the original
algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, Optional

from repro.bufmgr.base import BufferPool


class LrukPool(BufferPool):
    """LRU-K pool; ``clock`` supplies the current time for references."""

    policy = "lru-k"

    __slots__ = ("k", "_clock", "_history")

    def __init__(self, capacity: int, k: int = 2,
                 clock: Optional[Callable[[], float]] = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        super().__init__(capacity)
        self.k = k
        self._clock = clock if clock is not None else _counter_clock()
        #: page id -> deque of the last K reference times (newest last)
        self._history: Dict[int, Deque[float]] = {}

    def _now(self) -> float:
        return self._clock()

    def _record(self, page_id: int) -> None:
        history = self._history.get(page_id)
        if history is None:
            history = deque(maxlen=self.k)
            self._history[page_id] = history
        history.append(self._now())

    def _select_victim(self) -> int:
        # Max backward K-distance == min K-th most recent reference
        # time, with pages lacking K references sorted first (their
        # K-th reference time is -inf), LRU among themselves.
        def key(page_id: int):
            history = self._history[page_id]
            if len(history) < self.k:
                return (0, history[-1])  # infinite distance bucket
            return (1, history[0])       # K-th most recent reference

        return min(self._history, key=key)

    def _store(self, page_id: int) -> None:
        self._record(page_id)

    def _discard(self, page_id: int) -> None:
        del self._history[page_id]

    def touch(self, page_id: int) -> None:
        self._record(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._history

    def __len__(self) -> int:
        return len(self._history)

    def page_ids(self) -> Iterable[int]:
        return iter(self._history)

    def backward_k_distance(
        self, page_id: int, now: Optional[float] = None
    ) -> float:
        """Backward K-distance of a cached page (inf if < K references)."""
        history = self._history[page_id]
        if len(history) < self.k:
            return float("inf")
        now = self._now() if now is None else now
        return now - history[0]


def _counter_clock() -> Callable[[], float]:
    """Fallback logical clock counting calls (for standalone use)."""
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += 1.0
        return state["t"]

    return clock
