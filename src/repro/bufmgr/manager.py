"""Per-node buffer manager: dedicated class pools plus the no-goal pool.

Implements the page access protocol of §6:

* Every access updates the page's *accumulated* heat (and the global
  heat registry).
* If a dedicated buffer for the accessing class exists on the node and
  the page is not already cached in *another* dedicated buffer, the
  page is acquired — from the local no-goal buffer (removing it there),
  or via remote cache or disk — its class-specific heat is updated and
  it is inserted into the class's dedicated buffer.  Pages evicted by
  the insertion are removed from the node's cache completely.
* If the page already resides in the class's dedicated buffer, only the
  class-specific heat is updated.
* Without a dedicated buffer for the class, the page is served from /
  inserted into the no-goal buffer.

The manager also owns the node's allocation state: the sizes of the
dedicated pools are set by the goal-oriented coordinators, and the
no-goal pool always receives the remaining reserved memory
(``SIZE_i - sum of dedicated pools``, cf. eq. 7).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.bufmgr.base import BufferPool
from repro.bufmgr.costbased import BenefitModel, CostBasedPool
from repro.bufmgr.costs import CostObserver
from repro.bufmgr.heat import GlobalHeatRegistry, HeatTracker
from repro.bufmgr.lru import LruPool
from repro.bufmgr.lruk import LrukPool

#: Class id of the no-goal class (§3: "a special No-Goal class,
#: numbered class 0").
NO_GOAL_CLASS = 0


class _ClassHeatView:
    """Adapter exposing one class's slice of the class-heat tracker."""

    __slots__ = ("_tracker", "_class_id")

    def __init__(self, tracker: HeatTracker, class_id: int):
        self._tracker = tracker
        self._class_id = class_id

    def heat(self, page_id: int, now: float) -> float:
        return self._tracker.heat((self._class_id, page_id), now)


class NodeBufferManager:
    """All buffer pools of one node, plus the §6 access protocol."""

    def __init__(
        self,
        node_id: int,
        total_bytes: int,
        page_size: int,
        clock: Callable[[], float],
        global_heat: GlobalHeatRegistry,
        costs: CostObserver,
        is_last_copy: Callable[[int, int], bool],
        policy: str = "cost",
        lruk_k: int = 2,
    ):
        if policy not in ("cost", "lru", "lruk", "clock", "2q"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.node_id = node_id
        self.page_size = page_size
        self.total_pages = total_bytes // page_size
        self.policy = policy
        self.lruk_k = lruk_k
        self.clock = clock
        self.global_heat = global_heat
        self.costs = costs
        self.is_last_copy = is_last_copy

        #: Accumulated heat over *all* local accesses (ranks the
        #: no-goal pool).
        self.accumulated_heat = HeatTracker()
        #: Class-specific heat, keyed (class_id, page_id); entries are
        #: created on demand (§6).
        self.class_heat = HeatTracker()

        self._pools: Dict[int, BufferPool] = {}
        self._where: Dict[int, int] = {}  # page id -> class id of pool
        self._pools[NO_GOAL_CLASS] = self._make_pool(
            NO_GOAL_CLASS, self.total_pages
        )
        self.hits_by_class: Dict[int, int] = {}
        self.misses_by_class: Dict[int, int] = {}
        #: Telemetry pipeline or None (off by default); consulted only
        #: when an eviction batch is non-empty.
        self.telemetry = None

    # -- pool construction -----------------------------------------

    def _make_pool(self, class_id: int, capacity: int) -> BufferPool:
        if self.policy == "lru":
            return LruPool(capacity)
        if self.policy == "lruk":
            return LrukPool(capacity, k=self.lruk_k, clock=self.clock)
        if self.policy == "clock":
            from repro.bufmgr.clock import ClockPool

            return ClockPool(capacity)
        if self.policy == "2q":
            from repro.bufmgr.twoq import TwoQPool

            return TwoQPool(capacity)
        if class_id == NO_GOAL_CLASS:
            heat_view = self.accumulated_heat
        else:
            heat_view = _ClassHeatView(self.class_heat, class_id)
        model = BenefitModel(
            node_id=self.node_id,
            local_heat=heat_view,
            global_heat=self.global_heat,
            costs=self.costs,
            is_last_copy=self.is_last_copy,
            clock=self.clock,
        )
        return CostBasedPool(capacity, model)

    # -- allocation API (used by coordinators/agents) ----------------

    def dedicated_bytes(self, class_id: int) -> int:
        """Current dedicated pool size of ``class_id`` in bytes."""
        if class_id == NO_GOAL_CLASS:
            raise ValueError("the no-goal pool is not a dedicated pool")
        pool = self._pools.get(class_id)
        return pool.capacity * self.page_size if pool is not None else 0

    def total_dedicated_bytes(self) -> int:
        """Sum of all dedicated pool sizes in bytes."""
        return sum(
            pool.capacity * self.page_size
            for class_id, pool in self._pools.items()
            if class_id != NO_GOAL_CLASS
        )

    def no_goal_bytes(self) -> int:
        """Current no-goal pool size in bytes."""
        return self._pools[NO_GOAL_CLASS].capacity * self.page_size

    def set_dedicated_bytes(
        self, class_id: int, nbytes: int
    ) -> Tuple[int, List[int]]:
        """Resize the dedicated pool of ``class_id``.

        Grants at most the memory not taken by other dedicated pools
        (the allocation-conflict rule of phase (e): allocate as much as
        possible and report the difference).  Returns
        ``(granted_bytes, dropped_page_ids)``; dropped pages have left
        the node's cache completely.
        """
        if class_id == NO_GOAL_CLASS:
            raise ValueError("cannot set a dedicated size for the no-goal class")
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        requested_pages = nbytes // self.page_size
        other_pages = sum(
            pool.capacity
            for cid, pool in self._pools.items()
            if cid not in (NO_GOAL_CLASS, class_id)
        )
        granted_pages = min(requested_pages, self.total_pages - other_pages)
        dropped: List[int] = []

        pool = self._pools.get(class_id)
        if pool is None:
            if granted_pages > 0:
                pool = self._make_pool(class_id, granted_pages)
                self._pools[class_id] = pool
        else:
            dropped.extend(self._forget(pool.resize(granted_pages)))
            if granted_pages == 0:
                del self._pools[class_id]

        # The no-goal pool absorbs whatever is left (eq. 7).
        no_goal_pages = self.total_pages - other_pages - granted_pages
        no_goal = self._pools[NO_GOAL_CLASS]
        dropped.extend(self._forget(no_goal.resize(no_goal_pages)))
        return granted_pages * self.page_size, dropped

    def has_dedicated(self, class_id: int) -> bool:
        """True if a (non-empty) dedicated buffer for the class exists."""
        pool = self._pools.get(class_id)
        return pool is not None and pool.capacity > 0 \
            and class_id != NO_GOAL_CLASS

    # -- access protocol (§6) ----------------------------------------

    def probe(self, page_id: int, class_id: int) -> Tuple[bool, List[int]]:
        """One local access attempt by an operation of ``class_id``.

        Returns ``(hit, dropped_page_ids)``.  On a hit the §6 movements
        (e.g. promotion from the no-goal pool into the class's dedicated
        pool) have been performed; ``dropped_page_ids`` are pages those
        movements pushed out of the node's cache.  On a miss the caller
        must fetch the page and then call :meth:`admit`.
        """
        now = self.clock()
        self.accumulated_heat.record(page_id, now)
        self.global_heat.record(page_id, now)

        pools = self._pools
        holder = self._where.get(page_id)

        # Dedicated-pool protocol only when some dedicated pool exists
        # at all (len > 1 counts the always-present no-goal pool), which
        # skips two dict probes per access in policy-only runs.
        if len(pools) > 1 and self.has_dedicated(class_id):
            dropped: List[int] = []
            if holder == class_id:
                pools[class_id].touch(page_id)
                self.class_heat.record((class_id, page_id), now)
                self._account(class_id, hit=True)
                return True, dropped
            if holder is not None and holder != NO_GOAL_CLASS:
                # Cached in another class's dedicated buffer: local hit,
                # page stays where it is (§6).
                pools[holder].touch(page_id)
                self._account(class_id, hit=True)
                return True, dropped
            if holder == NO_GOAL_CLASS:
                # Acquire from the local no-goal buffer.
                pools[NO_GOAL_CLASS].remove(page_id)
                del self._where[page_id]
                dropped.extend(self._insert(class_id, page_id))
                self.class_heat.record((class_id, page_id), now)
                self._account(class_id, hit=True)
                return True, dropped
            self._account(class_id, hit=False)
            return False, dropped

        if holder is not None:
            pools[holder].touch(page_id)
            hits = self.hits_by_class
            hits[class_id] = hits.get(class_id, 0) + 1
            return True, []
        misses = self.misses_by_class
        misses[class_id] = misses.get(class_id, 0) + 1
        return False, []

    def admit(self, page_id: int, class_id: int) -> List[int]:
        """Insert a freshly fetched page per §6; returns dropped pages."""
        now = self.clock()
        if self.has_dedicated(class_id):
            target = class_id
            self.class_heat.record((class_id, page_id), now)
        else:
            target = NO_GOAL_CLASS
        return self._insert(target, page_id)

    def clear(self) -> List[int]:
        """Drop every cached page (node restart); returns the drops.

        Pool structure (dedicated sizes) is preserved — the allocation
        table is tiny control state a restarting node reloads — but the
        cache content and all heat bookkeeping are lost.
        """
        dropped = list(self._where)
        for pool in self._pools.values():
            for page_id in list(pool.page_ids()):
                pool.remove(page_id)
        self._where.clear()
        # Clear in place: the pools' benefit models hold references to
        # these trackers.
        self.accumulated_heat.clear()
        self.class_heat.clear()
        return dropped

    def reset_interval_counters(self) -> None:
        """Zero the per-class hit/miss counters (node restart).

        A restarted node's counting state does not survive the crash;
        consumers tracking deltas (the controller's hit-info plumbing)
        must re-baseline at zero.
        """
        self.hits_by_class.clear()
        self.misses_by_class.clear()

    # -- queries -----------------------------------------------------

    def contains(self, page_id: int) -> bool:
        """True if any pool of this node caches the page."""
        return page_id in self._where

    def holding_pool(self, page_id: int) -> Optional[int]:
        """Class id of the pool caching the page, or None."""
        return self._where.get(page_id)

    def cached_pages(self) -> List[int]:
        """All page ids cached on this node."""
        return list(self._where)

    def pool(self, class_id: int) -> Optional[BufferPool]:
        """The pool object for ``class_id`` (None if not present)."""
        return self._pools.get(class_id)

    def hit_rate(self, class_id: int) -> float:
        """Local buffer hit rate observed for ``class_id``."""
        hits = self.hits_by_class.get(class_id, 0)
        misses = self.misses_by_class.get(class_id, 0)
        total = hits + misses
        return hits / total if total else 0.0

    # -- internals ----------------------------------------------------

    def _insert(self, class_id: int, page_id: int) -> List[int]:
        pool = self._pools.get(class_id)
        if pool is None:
            return [page_id]
        evicted = pool.insert(page_id)
        if page_id not in evicted:
            self._where[page_id] = class_id
        return self._forget(evicted)

    def _forget(self, evicted: List[int]) -> List[int]:
        for page_id in evicted:
            self._where.pop(page_id, None)
        if evicted and self.telemetry is not None:
            self.telemetry.on_evictions(self.node_id, len(evicted))
        return evicted

    def _account(self, class_id: int, hit: bool) -> None:
        if hit:
            self.hits_by_class[class_id] = (
                self.hits_by_class.get(class_id, 0) + 1
            )
        else:
            self.misses_by_class[class_id] = (
                self.misses_by_class.get(class_id, 0) + 1
            )
