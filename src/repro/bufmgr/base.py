"""Buffer pool abstraction.

A :class:`BufferPool` caches page ids up to a capacity measured in page
frames.  Replacement policy is supplied by subclasses through
:meth:`BufferPool._select_victim`.  Pools know nothing about classes,
nodes, or the network — the per-node composition lives in
:mod:`repro.bufmgr.manager`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List


class BufferPool(ABC):
    """An in-memory page cache with a pluggable replacement policy."""

    #: Human-readable policy name, overridden by subclasses.
    policy = "abstract"

    __slots__ = ("_capacity", "hits", "misses")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        self.hits = 0
        self.misses = 0

    # -- policy hooks ------------------------------------------------

    @abstractmethod
    def _select_victim(self) -> int:
        """Return the page id to evict next (pool guaranteed non-empty)."""

    @abstractmethod
    def _store(self, page_id: int) -> None:
        """Record ``page_id`` as cached (capacity already ensured)."""

    @abstractmethod
    def _discard(self, page_id: int) -> None:
        """Forget ``page_id`` (guaranteed present)."""

    @abstractmethod
    def touch(self, page_id: int) -> None:
        """Signal an access to a cached page (guaranteed present)."""

    @abstractmethod
    def __contains__(self, page_id: int) -> bool:
        """True if ``page_id`` is cached."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached pages."""

    @abstractmethod
    def page_ids(self) -> Iterable[int]:
        """Iterate over the cached page ids."""

    # -- generic operations -------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of cached pages."""
        return self._capacity

    def insert(self, page_id: int) -> List[int]:
        """Cache ``page_id``; return the list of evicted page ids.

        Inserting into a zero-capacity pool evicts the page itself
        immediately (the page is simply not cached).
        """
        if page_id in self:
            self.touch(page_id)
            return []
        if self._capacity == 0:
            return [page_id]
        evicted = []
        while len(self) >= self._capacity:
            victim = self._select_victim()
            self._discard(victim)
            evicted.append(victim)
        self._store(page_id)
        return evicted

    def remove(self, page_id: int) -> bool:
        """Drop ``page_id`` if cached; return whether it was present."""
        if page_id in self:
            self._discard(page_id)
            return True
        return False

    def resize(self, new_capacity: int) -> List[int]:
        """Change the capacity; return pages evicted by a shrink."""
        if new_capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = new_capacity
        evicted = []
        while len(self) > self._capacity:
            victim = self._select_victim()
            self._discard(victim)
            evicted.append(victim)
        return evicted

    # -- statistics ----------------------------------------------------

    def record_hit(self) -> None:
        """Account one hit (kept by the manager's access protocol)."""
        self.hits += 1

    def record_miss(self) -> None:
        """Account one miss."""
        self.misses += 1

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
