"""First-in-first-out replacement.

FIFO is included as the textbook counter-example: it can violate the
monotonicity assumption (more buffer => lower response time) via
Belady's anomaly, which the paper cites ([2]) as the one exception to
its premise.  The test suite demonstrates the anomaly on the classic
reference string.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.bufmgr.base import BufferPool


class FifoPool(BufferPool):
    """Evict the page that entered the pool first, ignoring accesses."""

    policy = "fifo"

    __slots__ = ("_pages",)

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def _select_victim(self) -> int:
        return next(iter(self._pages))

    def _store(self, page_id: int) -> None:
        self._pages[page_id] = None

    def _discard(self, page_id: int) -> None:
        del self._pages[page_id]

    def touch(self, page_id: int) -> None:
        # FIFO ignores accesses after admission.
        pass

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page_ids(self) -> Iterable[int]:
        return iter(self._pages)
