"""The fault schedule: spec grammar, clauses, and deterministic events.

A schedule is written as a semicolon-separated list of *clauses*::

    SPEC    := clause (';' clause)*
    clause  := KIND '@' TIME_MS opts          -- one-shot at TIME_MS
             | KIND ':every=' PERIOD_MS opts  -- periodic
    opts    := (':' KEY '=' VALUE)*

Supported kinds and their options (times in simulated milliseconds):

``crash``
    Node crash + cold-cache restart.  ``node`` (index or ``any``,
    default ``any``), ``restart`` (downtime before the node serves
    again, default 2000).
``netloss``
    Control-message loss episode: agent reports, allocations, and acks
    are each dropped with probability ``p`` (default 0.3) for ``dur``
    ms (default 5000).  The data path is assumed to retransmit and is
    modelled as reliable.
``netdelay``
    Latency spike: every network transfer pays ``extra`` additional ms
    (default 1.0) for ``dur`` ms (default 5000).
``diskslow``
    Disk slowdown episode on ``node`` (index or ``any``): service
    times multiply by ``factor`` (default 4.0) for ``dur`` ms (default
    5000).
``coordcrash``
    Coordinator process crash: the control plane loses its in-memory
    state (measure windows, remembered reports) and is unreachable for
    ``dur`` ms (default 5000).  On restart the coordinator opens a new
    allocation *epoch* and rebuilds its view from agent re-reports;
    allocations shipped under the dead epoch are rejected by agents.
``partition``
    Control-network partition: ``nodes`` (comma-separated indices or
    ``any``, default ``any``) lose control-plane contact with the
    coordinator and all other nodes for ``dur`` ms (default 5000).
    Data-plane transfers are assumed to reroute and stay reliable.

Validation: episode durations (``dur``) must be strictly positive, and
the one-shot crash windows of ``crash`` (with an explicit ``node``)
and ``coordcrash`` clauses must not overlap on the same target —
overlapping windows would make "which restart wins" ambiguous.

Periodic clauses additionally accept ``start`` (first occurrence,
default = one period) and ``jitter`` (uniform extra delay in [0,
jitter] ms drawn per occurrence from the seeded ``faults/schedule``
stream).  ``node=any`` is resolved per occurrence from the same
stream, so the entire schedule is a pure function of the experiment
seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.sim.rng import RandomStreams

#: Stream name all schedule randomness (jitter, ``node=any``) draws
#: from; a dedicated name keeps fault timing independent of workload
#: streams, so adding a schedule never perturbs arrivals or page draws.
SCHEDULE_STREAM = "faults/schedule"

_KINDS = (
    "crash",
    "netloss",
    "netdelay",
    "diskslow",
    "coordcrash",
    "partition",
)

#: Per-kind defaults for the optional clause keys.
_DEFAULTS = {
    "crash": {"node": "any", "restart": 2000.0},
    "netloss": {"dur": 5000.0, "p": 0.3},
    "netdelay": {"dur": 5000.0, "extra": 1.0},
    "diskslow": {"node": "any", "dur": 5000.0, "factor": 4.0},
    "coordcrash": {"dur": 5000.0},
    "partition": {"nodes": "any", "dur": 5000.0},
}

#: Keys each kind accepts (beyond the periodic-only start/jitter).
_ALLOWED_KEYS = {
    "crash": {"node", "restart"},
    "netloss": {"dur", "p"},
    "netdelay": {"dur", "extra"},
    "diskslow": {"node", "dur", "factor"},
    "coordcrash": {"dur"},
    "partition": {"nodes", "dur"},
}


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec (not yet seeded/resolved)."""

    kind: str
    #: One-shot fire time; None for periodic clauses.
    time_ms: Optional[float]
    #: Period for recurring clauses; None for one-shot clauses.
    every_ms: Optional[float] = None
    #: First occurrence of a periodic clause (defaults to one period).
    start_ms: Optional[float] = None
    #: Upper bound of the per-occurrence uniform jitter.
    jitter_ms: float = 0.0
    #: Target node: an index, or "any" for a seeded draw per occurrence.
    node: Union[int, str, None] = None
    #: Partitioned node set: a tuple of indices, or "any" for a seeded
    #: single-node draw per occurrence.
    nodes: Union[Tuple[int, ...], str, None] = None
    duration_ms: float = 0.0
    probability: float = 0.0
    factor: float = 1.0
    extra_ms: float = 0.0
    restart_delay_ms: float = 0.0

    @property
    def periodic(self) -> bool:
        """True for ``kind:every=`` clauses."""
        return self.every_ms is not None


@dataclass(frozen=True)
class FaultEvent:
    """One fully resolved injection: what happens, when, and to whom."""

    kind: str
    time_ms: float
    node: Optional[int]
    duration_ms: float = 0.0
    probability: float = 0.0
    factor: float = 1.0
    extra_ms: float = 0.0
    restart_delay_ms: float = 0.0
    #: Resolved partitioned node set (empty for other kinds).
    nodes: Tuple[int, ...] = ()


def _parse_float(key: str, value: str) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise ValueError(f"fault spec: {key}={value!r} is not a number")
    if parsed < 0:
        raise ValueError(f"fault spec: {key} must be non-negative")
    return parsed


def _parse_duration(key: str, value: str) -> float:
    """Episode durations must be strictly positive: a zero-length
    episode would silently do nothing, which is always a spec typo."""
    try:
        parsed = float(value)
    except ValueError:
        raise ValueError(f"fault spec: {key}={value!r} is not a number")
    if parsed <= 0:
        raise ValueError(
            f"fault spec: {key} must be a positive number of ms "
            f"(got {value})"
        )
    return parsed


def _parse_nodes(raw: str) -> Union[Tuple[int, ...], str]:
    """Parse a ``nodes=`` value: 'any' or a comma-separated index list."""
    if raw == "any":
        return "any"
    ids: List[int] = []
    for part in str(raw).split(","):
        try:
            index = int(part.strip())
        except (TypeError, ValueError):
            raise ValueError(
                f"fault spec: nodes={raw!r} is not a comma-separated "
                f"list of node indices or 'any'"
            )
        if index < 0:
            raise ValueError("fault spec: node index must be >= 0")
        if index in ids:
            raise ValueError(
                f"fault spec: nodes={raw!r} lists node {index} twice"
            )
        ids.append(index)
    return tuple(ids)


def _parse_clause(text: str) -> FaultClause:
    parts = text.strip().split(":")
    head = parts[0].strip()
    opts: dict = {}
    for part in parts[1:]:
        if "=" not in part:
            raise ValueError(f"fault spec: malformed option {part!r}")
        key, _, value = part.partition("=")
        opts[key.strip()] = value.strip()

    if "@" in head:
        kind, _, when = head.partition("@")
        kind = kind.strip()
        time_ms: Optional[float] = _parse_float("time", when)
        every = None
    else:
        kind = head
        time_ms = None
        if "every" not in opts:
            raise ValueError(
                f"fault spec: clause {text!r} needs '@TIME' or ':every=MS'"
            )
        every = _parse_float("every", opts.pop("every"))
        if every <= 0:
            raise ValueError("fault spec: every must be positive")
    if kind not in _KINDS:
        raise ValueError(
            f"fault spec: unknown fault kind {kind!r} "
            f"(expected one of {', '.join(_KINDS)})"
        )

    start = None
    jitter = 0.0
    if every is not None:
        if "start" in opts:
            start = _parse_float("start", opts.pop("start"))
        if "jitter" in opts:
            jitter = _parse_float("jitter", opts.pop("jitter"))
    allowed = _ALLOWED_KEYS[kind]
    unknown = set(opts) - allowed
    if unknown:
        raise ValueError(
            f"fault spec: {kind} does not accept "
            f"{', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )

    merged = dict(_DEFAULTS[kind])
    merged.update(opts)

    node: Union[int, str, None] = None
    if "node" in merged:
        raw = merged["node"]
        if raw == "any":
            node = "any"
        else:
            try:
                node = int(raw)
            except (TypeError, ValueError):
                raise ValueError(
                    f"fault spec: node={raw!r} is not an index or 'any'"
                )
            if node < 0:
                raise ValueError("fault spec: node index must be >= 0")

    nodes: Union[Tuple[int, ...], str, None] = None
    if "nodes" in merged:
        nodes = _parse_nodes(str(merged["nodes"]))

    probability = 0.0
    if kind == "netloss":
        probability = _parse_float("p", str(merged["p"]))
        if probability > 1.0:
            raise ValueError("fault spec: p must lie in [0, 1]")
    factor = 1.0
    if kind == "diskslow":
        factor = _parse_float("factor", str(merged["factor"]))
        if factor < 1.0:
            raise ValueError("fault spec: factor must be >= 1")
    extra = 0.0
    if kind == "netdelay":
        extra = _parse_float("extra", str(merged["extra"]))
    restart = 0.0
    if kind == "crash":
        restart = _parse_float("restart", str(merged["restart"]))
    duration = 0.0
    if "dur" in merged:
        duration = _parse_duration("dur", str(merged["dur"]))

    return FaultClause(
        kind=kind,
        time_ms=time_ms,
        every_ms=every,
        start_ms=start,
        jitter_ms=jitter,
        node=node,
        nodes=nodes,
        duration_ms=duration,
        probability=probability,
        factor=factor,
        extra_ms=extra,
        restart_delay_ms=restart,
    )


def _check_crash_overlaps(clauses: List[FaultClause]) -> None:
    """Reject one-shot crash windows that overlap on the same target.

    Only windows whose target is statically known are checked: ``crash``
    with an explicit node index, and ``coordcrash`` (whose target is
    always the coordinator).  ``node=any`` and periodic clauses resolve
    per occurrence and cannot be vetted at parse time.
    """
    windows: dict = {}
    for clause in clauses:
        if clause.periodic or clause.time_ms is None:
            continue
        if clause.kind == "crash" and isinstance(clause.node, int):
            target = f"node {clause.node}"
            end = clause.time_ms + clause.restart_delay_ms
        elif clause.kind == "coordcrash":
            target = "the coordinator"
            end = clause.time_ms + clause.duration_ms
        else:
            continue
        desc = f"{clause.kind}@{clause.time_ms:g}"
        for start0, end0, desc0 in windows.get(target, ()):
            if clause.time_ms < end0 and start0 < end:
                raise ValueError(
                    f"fault spec: overlapping crash windows on {target}: "
                    f"{desc} (down until {end:g} ms) overlaps "
                    f"{desc0} (down until {end0:g} ms)"
                )
        windows.setdefault(target, []).append(
            (clause.time_ms, end, desc)
        )


class FaultSchedule:
    """A parsed fault spec: an ordered, seedable source of fault events."""

    def __init__(self, clauses: List[FaultClause]):
        self.clauses = list(clauses)
        _check_crash_overlaps(self.clauses)

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse a spec string (see module docstring for the grammar)."""
        clauses = [
            _parse_clause(chunk)
            for chunk in spec.split(";")
            if chunk.strip()
        ]
        return cls(clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def events(
        self, rng: RandomStreams, num_nodes: int
    ) -> Iterator[FaultEvent]:
        """Resolved events in time order (lazy; periodic clauses are
        infinite).

        All randomness (jitter, ``node=any``) comes from the seeded
        ``faults/schedule`` stream; occurrences are generated in a
        deterministic heap order, so the same seed always yields the
        same event sequence.
        """
        stream = rng.stream(SCHEDULE_STREAM)

        def resolve(clause: FaultClause, time_ms: float) -> FaultEvent:
            node: Optional[int] = None
            if clause.node == "any":
                node = stream.randrange(num_nodes)
            elif clause.node is not None:
                if clause.node >= num_nodes:
                    raise ValueError(
                        f"fault spec: node {clause.node} does not exist "
                        f"(cluster has {num_nodes} nodes)"
                    )
                node = int(clause.node)
            nodes: Tuple[int, ...] = ()
            if clause.nodes == "any":
                nodes = (stream.randrange(num_nodes),)
            elif clause.nodes is not None:
                for index in clause.nodes:
                    if index >= num_nodes:
                        raise ValueError(
                            f"fault spec: node {index} does not exist "
                            f"(cluster has {num_nodes} nodes)"
                        )
                nodes = tuple(clause.nodes)
            return FaultEvent(
                kind=clause.kind,
                time_ms=time_ms,
                node=node,
                nodes=nodes,
                duration_ms=clause.duration_ms,
                probability=clause.probability,
                factor=clause.factor,
                extra_ms=clause.extra_ms,
                restart_delay_ms=clause.restart_delay_ms,
            )

        # Heap of (next occurrence time, clause index); the clause
        # index both breaks ties deterministically and orders the
        # initial jitter draws.
        heap: List[Tuple[float, int]] = []
        for index, clause in enumerate(self.clauses):
            if clause.periodic:
                first = (
                    clause.start_ms
                    if clause.start_ms is not None
                    else clause.every_ms
                )
                if clause.jitter_ms > 0:
                    first += stream.uniform(0.0, clause.jitter_ms)
            else:
                first = clause.time_ms
            heapq.heappush(heap, (first, index))

        while heap:
            time_ms, index = heapq.heappop(heap)
            clause = self.clauses[index]
            yield resolve(clause, time_ms)
            if clause.periodic:
                base = time_ms + clause.every_ms
                if clause.jitter_ms > 0:
                    base += stream.uniform(0.0, clause.jitter_ms)
                heapq.heappush(heap, (base, index))
