"""Deterministic fault injection (`repro.faults`).

The paper's central robustness claim (§5) is that the goal-oriented
partitioning is a *feedback* method: crashes, lost control messages,
and workload shifts are tolerated because the next observation interval
folds their effects into new measure points.  This package provides the
machinery to put that claim under test:

- :mod:`repro.faults.schedule` — a seeded, fully deterministic fault
  schedule (its own :class:`~repro.sim.rng.RandomStreams` names, so
  runs are reproducible and ``--jobs N`` stays bit-identical), parsed
  from a compact spec grammar;
- :mod:`repro.faults.injector` — the :class:`FaultLayer` consulted by
  the cluster/network/disk hot paths (near-zero cost when absent) and
  the :class:`FaultInjector` process that drives the schedule against a
  running simulation.

See ``docs/faults.md`` for the fault model and the spec grammar.
"""

from repro.faults.injector import FaultInjector, FaultLayer, InjectedFault
from repro.faults.schedule import FaultClause, FaultEvent, FaultSchedule

__all__ = [
    "FaultClause",
    "FaultEvent",
    "FaultInjector",
    "FaultLayer",
    "FaultSchedule",
    "InjectedFault",
]
