"""The fault layer (hot-path state) and the injector process.

:class:`FaultLayer` is the tiny mutable object the cluster, network,
and disks consult while faults are configured; when no schedule is
attached the hot paths see a ``None`` and pay a single attribute load.
:class:`FaultInjector` is the simulation process that walks a
:class:`~repro.faults.schedule.FaultSchedule` and applies each event:

- ``crash``: the node's cache, heat bookkeeping, and interval counters
  are wiped via :meth:`~repro.cluster.cluster.Cluster.restart_node`
  (which also notifies the feedback loop), and the node is *down* for
  the configured restart delay — operations initiated there and disk
  reads homed there wait until the node is back, with a cold cache;
- ``netloss``: control messages (agent reports, allocations, acks)
  are dropped with the configured probability for the episode — the
  coordinator simply evaluates with the reports it has;
- ``netdelay``: every network transfer pays extra wire latency for the
  episode;
- ``diskslow``: one node's disk service times are multiplied by the
  configured factor for the episode;
- ``coordcrash``: the coordinator loses its in-memory control state
  and is unreachable for the episode — the controller observes the
  outage at its next interval tick, wipes coordinator state, and on
  expiry restarts it under a fresh allocation epoch (see
  :mod:`repro.core.controller`);
- ``partition``: the listed nodes lose control-plane contact with the
  coordinator and each other for the episode; the data path is
  assumed to reroute and stays reliable.

The coordinator/partition state is *passive*: the layer only records
"down until" timestamps and a crash counter, and the controller polls
them at interval boundaries.  No expiry processes are spawned and no
randomness is consumed, so scheduling control-plane faults perturbs
nothing else.

Message-drop decisions draw from the dedicated ``faults/drops`` stream
*only while a loss episode is active*, so an idle fault layer consumes
no randomness and a run without faults is bit-identical to one with an
empty schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.sim.rng import RandomStreams

#: Stream name for control-message drop decisions.
DROPS_STREAM = "faults/drops"


@dataclass(frozen=True)
class InjectedFault:
    """Ledger entry: one fault that was actually injected."""

    kind: str
    time_ms: float
    node: Optional[int]
    duration_ms: float
    #: Pages dropped by a crash (0 for other kinds).
    dropped_pages: int = 0
    #: Partitioned node set (empty for other kinds).
    nodes: Tuple[int, ...] = ()


class FaultLayer:
    """Mutable fault state consulted by the simulation hot paths."""

    __slots__ = (
        "drop_p",
        "extra_ms",
        "_down_until",
        "_drop_stream",
        "coord_down_until",
        "coord_crashes",
        "_partition_until",
    )

    def __init__(self, rng: RandomStreams):
        #: Control-message drop probability of the active loss episode.
        self.drop_p = 0.0
        #: Extra wire latency of the active delay episode.
        self.extra_ms = 0.0
        self._down_until: Dict[int, float] = {}
        self._drop_stream = rng.stream(DROPS_STREAM)
        #: Simulated time until which the coordinator is unreachable.
        self.coord_down_until = 0.0
        #: Total coordinator crashes injected so far; the controller
        #: compares this against its last-seen count so crashes shorter
        #: than one observation interval still wipe state exactly once.
        self.coord_crashes = 0
        self._partition_until: Dict[int, float] = {}

    # -- network ----------------------------------------------------

    def should_drop(self) -> bool:
        """Decide one control message's fate (seeded; draws only while
        a loss episode is active)."""
        p = self.drop_p
        if p <= 0.0:
            return False
        return self._drop_stream.random() < p

    # -- node availability -------------------------------------------

    def mark_down(self, node_id: int, until_ms: float) -> None:
        """Take a node out of service until ``until_ms``."""
        self._down_until[node_id] = until_ms

    def down_delay(self, node_id: int, now: float) -> float:
        """Remaining downtime of ``node_id`` (0.0 when it is up)."""
        until = self._down_until.get(node_id)
        if until is None:
            return 0.0
        if until <= now:
            del self._down_until[node_id]
            return 0.0
        return until - now

    # -- control plane -----------------------------------------------

    def mark_coordinator_down(self, until_ms: float) -> None:
        """Record a coordinator crash lasting until ``until_ms``."""
        self.coord_crashes += 1
        if until_ms > self.coord_down_until:
            self.coord_down_until = until_ms

    def coordinator_down(self, now: float) -> bool:
        """Is the coordinator unreachable at ``now``?"""
        return now < self.coord_down_until

    def mark_partitioned(
        self, node_ids: Iterable[int], until_ms: float
    ) -> None:
        """Cut the listed nodes off the control network until
        ``until_ms`` (max-merged with any partition already active)."""
        for node_id in node_ids:
            current = self._partition_until.get(node_id, 0.0)
            if until_ms > current:
                self._partition_until[node_id] = until_ms

    def partitioned(self, node_id: int, now: float) -> bool:
        """Is ``node_id`` cut off the control network at ``now``?
        (Self-clearing: expired entries are removed on query.)"""
        until = self._partition_until.get(node_id)
        if until is None:
            return False
        if until <= now:
            del self._partition_until[node_id]
            return False
        return True

    def partitioned_nodes(self, now: float) -> Tuple[int, ...]:
        """Sorted node ids currently cut off the control network.
        (Self-clearing: expired entries are removed on query.)"""
        if not self._partition_until:
            return ()
        expired = [
            node_id
            for node_id, until in self._partition_until.items()
            if until <= now
        ]
        for node_id in expired:
            del self._partition_until[node_id]
        return tuple(sorted(self._partition_until))


class FaultInjector:
    """Drives a fault schedule against a running cluster simulation."""

    def __init__(
        self,
        cluster,
        schedule: FaultSchedule,
        layer: Optional[FaultLayer] = None,
    ):
        self.cluster = cluster
        self.schedule = schedule
        self.layer = layer if layer is not None else FaultLayer(cluster.rng)
        #: Every fault injected so far, in injection order (read by the
        #: resilience experiment's recovery metrics).
        self.injected: List[InjectedFault] = []
        self._started = False
        cluster.attach_faults(self.layer)

    def start(self) -> None:
        """Begin the injection process (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.schedule.clauses:
            self.cluster.env.process(self._run())

    # -- the injection process ------------------------------------------

    def _run(self):
        env = self.cluster.env
        events = self.schedule.events(
            self.cluster.rng, self.cluster.num_nodes
        )
        for event in events:
            if event.time_ms > env.now:
                yield env.timeout(event.time_ms - env.now)
            self._inject(event)

    def _inject(self, event: FaultEvent) -> None:
        env = self.cluster.env
        dropped = 0
        if event.kind == "crash":
            dropped = self.cluster.restart_node(event.node)
            if event.restart_delay_ms > 0:
                self.layer.mark_down(
                    event.node, env.now + event.restart_delay_ms
                )
            duration = event.restart_delay_ms
        elif event.kind == "netloss":
            self.layer.drop_p = event.probability
            env.process(self._expire_netloss(event.duration_ms))
            duration = event.duration_ms
        elif event.kind == "netdelay":
            self.layer.extra_ms = event.extra_ms
            env.process(self._expire_netdelay(event.duration_ms))
            duration = event.duration_ms
        elif event.kind == "diskslow":
            disk = self.cluster.nodes[event.node].disk
            disk.fault_factor = event.factor
            env.process(self._expire_diskslow(event.node, event.duration_ms))
            duration = event.duration_ms
        elif event.kind == "coordcrash":
            # Passive: the controller polls coord_down_until at its
            # next interval tick; no expiry process is needed.
            self.layer.mark_coordinator_down(env.now + event.duration_ms)
            duration = event.duration_ms
        elif event.kind == "partition":
            self.layer.mark_partitioned(
                event.nodes, env.now + event.duration_ms
            )
            duration = event.duration_ms
        else:  # pragma: no cover - the parser rejects unknown kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")
        fault = InjectedFault(
            kind=event.kind,
            time_ms=env.now,
            node=event.node,
            duration_ms=duration,
            dropped_pages=dropped,
            nodes=event.nodes,
        )
        self.injected.append(fault)
        telemetry = self.cluster.telemetry
        if telemetry is not None:
            telemetry.on_fault(fault)

    # Episode expiry processes.  Overlapping episodes of the same kind
    # keep the most recent setting while both run; the last expiry
    # returns the system to nominal.

    def _expire_netloss(self, duration_ms: float):
        yield self.cluster.env.timeout(duration_ms)
        self.layer.drop_p = 0.0

    def _expire_netdelay(self, duration_ms: float):
        yield self.cluster.env.timeout(duration_ms)
        self.layer.extra_ms = 0.0

    def _expire_diskslow(self, node_id: int, duration_ms: float):
        yield self.cluster.env.timeout(duration_ms)
        self.cluster.nodes[node_id].disk.fault_factor = 1.0
