"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments plus a demo run:

- ``table1``     — coordinator CPU cost table (§5, Table 1)
- ``figure2``    — the base experiment series (§7.2, Figure 2)
- ``table2``     — convergence vs. skew (§7.3, Table 2)
- ``multiclass`` — the §7.4 sharing study
- ``overhead``   — the §7.5 overhead breakdown
- ``resilience`` — fault injection + feedback-loop recovery metrics
- ``chaos``      — randomized control-plane fault schedules with
  asserted safety/liveness properties (see docs/faults.md)
- ``all``        — everything above in sequence
- ``demo``       — a short quickstart run printing live progress
- ``trace``      — a short telemetry-instrumented run of one
  experiment (see docs/observability.md)
- ``validate-analytic`` — cross-validate the simulator against exact
  MVA on product-form-reducible configurations (see docs/analytic.md)
- ``serve``      — the live observability service: dashboard, SSE
  stream, Prometheus scrape, and run catalog over recorded telemetry

``figure2``, ``multiclass``, ``resilience``, and ``scaling`` accept
``--telemetry DIR`` to export structured traces, metrics, and a
Perfetto-loadable timeline of the run.  ``figure2``, ``multiclass``,
``resilience``, and ``chaos`` additionally accept ``--live-port P`` to
stream the running experiment to a browser dashboard (see
docs/observability.md, "Live service").
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.runner import (
    DEFAULT_WARMUP_MS,
    RESILIENCE_WARMUP_MS,
)


def _note_telemetry(args) -> None:
    if getattr(args, "telemetry", None):
        print(f"telemetry exported to {args.telemetry}")


def _start_live(args):
    """Start the live streaming service when ``--live-port`` is given.

    Returns the running service (to be stopped in a finally) or None.
    Installing the service arms the module-level live hook, so every
    simulation the command activates in this process streams to it.
    """
    port = getattr(args, "live_port", None)
    if port is None:
        return None
    from repro.telemetry.server import LiveService

    service = LiveService.live(
        port=port, telemetry_dir=getattr(args, "telemetry", None)
    ).start()
    print(f"live dashboard at {service.url} (streaming this run)")
    return service


def _stop_live(service) -> None:
    if service is not None:
        service.stop()


def _cmd_table1(args) -> None:
    from repro.experiments import table1

    rows = table1.run_table1(repetitions=args.repetitions)
    print(table1.to_text(rows))


def _note_prescreen(report) -> None:
    if report is None:
        return
    print(
        f"prescreen: {report.grid_size} analytic points -> "
        f"{report.frontier_size} simulated "
        f"({report.solver_ms:.1f} ms, {report.solves} MVA solves)"
    )


def _cmd_figure2(args) -> None:
    from repro.experiments.figure2 import run_figure2, run_goal_sweep

    if args.sweep or args.prescreen:
        sweep = run_goal_sweep(
            points=args.sweep or 8, seed=args.seed,
            intervals=args.intervals,
            warmup_ms=args.warmup_ms, jobs=args.jobs, runner=args.runner,
            telemetry=args.telemetry, prescreen=args.prescreen or None,
        )
        _note_prescreen(sweep.prescreen)
        print(sweep.to_text())
        _note_telemetry(args)
        return
    data = run_figure2(
        seed=args.seed, intervals=args.intervals, jobs=args.jobs,
        warmup_ms=args.warmup_ms, faults=args.faults,
        telemetry=args.telemetry,
    )
    if args.chart:
        print(data.to_chart())
    else:
        print(data.to_text())
    if args.csv:
        data.save_csv(args.csv)
        print(f"series written to {args.csv}")
    print(f"satisfaction ratio: {data.satisfaction_ratio():.2f}")
    if data.p95_rt_ms is not None:
        print(f"p95 response time: {data.p95_rt_ms:.2f} ms")
    if data.quantiles_text() is not None:
        print(data.quantiles_text())
    print(f"corr(RT, dedicated): {data.rt_tracks_memory():.2f}")
    _note_telemetry(args)


def _cmd_table2(args) -> None:
    from repro.experiments import table2

    results = table2.run_table2(
        max_replications=args.replications,
        base_seed=args.seed,
        jobs=args.jobs,
        runner=args.runner,
    )
    print(table2.to_text(results))


def _parse_goal_pair(text: str):
    try:
        goal1, goal2 = text.split(":")
        return float(goal1), float(goal2)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected GOAL1:GOAL2 (e.g. 4:10), got {text!r}"
        )


def _cmd_multiclass(args) -> None:
    from repro.experiments.multiclass import (
        run_goal_sweep,
        run_sharing_sweep,
    )

    if args.goal_pairs or args.prescreen:
        kwargs = dict(
            intervals=args.intervals, warmup_ms=args.warmup_ms,
            jobs=args.jobs, runner=args.runner,
            telemetry=args.telemetry, prescreen=args.prescreen or None,
        )
        if args.goal_pairs:
            kwargs["goal_pairs"] = args.goal_pairs
        sweep = run_goal_sweep(**kwargs)
        _note_prescreen(sweep.prescreen)
        print(sweep.to_text())
        _note_telemetry(args)
        return
    result = run_sharing_sweep(
        intervals=args.intervals, jobs=args.jobs, runner=args.runner,
        warmup_ms=args.warmup_ms, telemetry=args.telemetry,
    )
    print(result.to_text())
    print(
        "k2 dedicated memory decreases with sharing: "
        f"{result.k2_dedicated_decreases()}"
    )
    _note_telemetry(args)


def _cmd_overhead(args) -> None:
    from repro.experiments.overhead import run_overhead

    print(run_overhead(seed=args.seed, intervals=args.intervals).to_text())


def _cmd_resilience(args) -> None:
    from repro.experiments.resilience import (
        control_fault_spec,
        quick_config,
        run_goal_sweep,
        run_resilience,
    )

    from repro.cluster.config import SystemConfig

    config = quick_config() if args.quick else SystemConfig()
    if args.control and args.faults is None:
        args.faults = control_fault_spec(
            args.intervals, config.observation_interval_ms, args.warmup_ms
        )
    if args.sweep_goals:
        sweep = run_goal_sweep(
            goals=args.sweep_goals,
            seed=args.seed,
            intervals=args.intervals,
            config=config,
            faults=args.faults,
            replications=args.replications,
            warmup_ms=args.warmup_ms,
            jobs=args.jobs,
            runner=args.runner,
            telemetry=args.telemetry,
        )
        print(sweep.to_text())
        _note_telemetry(args)
        return
    data = run_resilience(
        seed=args.seed,
        intervals=args.intervals,
        config=config,
        goal_ms=args.goal,
        faults=args.faults,
        replications=args.replications,
        warmup_ms=args.warmup_ms,
        jobs=args.jobs,
        telemetry=args.telemetry,
    )
    if args.chart:
        print(data.to_chart())
        print()
    print(data.to_text())
    if args.csv:
        data.save_csv(args.csv)
        print(f"series written to {args.csv}")
    _note_telemetry(args)


def _cmd_chaos(args) -> None:
    from repro.experiments.chaos import run_chaos
    from repro.experiments.resilience import quick_config

    matrix = run_chaos(
        seeds=args.seeds,
        base_seed=args.seed,
        intervals=args.intervals,
        config=quick_config() if args.quick else None,
        goal_ms=args.goal,
        warmup_ms=args.warmup_ms,
        jobs=args.jobs,
    )
    print(matrix.to_text())
    if args.json:
        matrix.save_json(args.json)
        print(f"matrix written to {args.json}")
    if not matrix.all_passed():
        sys.exit(1)


def _cmd_scaling(args) -> None:
    from repro.experiments.scaling import run_scaling

    print(run_scaling(
        node_counts=tuple(args.nodes),
        pages_per_op=tuple(args.pages_per_op),
        seed=args.seed,
        intervals=args.intervals,
        jobs=args.jobs,
        telemetry=args.telemetry,
    ))
    _note_telemetry(args)


def _cmd_all(args) -> None:
    from repro.experiments.all import run_all

    run_all(quick=args.quick)


def _cmd_trace(args) -> None:
    """A short, scaled-down telemetry-instrumented run.

    Uses the quick 3-node configuration (and, for figure2, a fixed
    goal range) so the run skips the slow calibration and finishes in
    seconds — the point is producing loadable telemetry artifacts, not
    paper-grade numbers.
    """
    import json
    import os

    from repro.experiments.calibration import GoalRange
    from repro.experiments.resilience import quick_config

    out = args.out
    if args.experiment == "figure2":
        from repro.experiments.figure2 import run_figure2

        run_figure2(
            seed=args.seed, intervals=args.intervals,
            config=quick_config(), goal_range=GoalRange(1, 2.0, 8.0),
            warmup_ms=4000.0, telemetry=out,
        )
    elif args.experiment == "prescreen":
        from repro.experiments.figure2 import run_goal_sweep

        run_goal_sweep(
            seed=args.seed, intervals=args.intervals,
            config=quick_config(), goal_range=GoalRange(1, 2.0, 8.0),
            warmup_ms=4000.0, telemetry=out, prescreen=100,
        )
    elif args.experiment == "multiclass":
        from repro.experiments.multiclass import (
            doubled_cache_config,
            run_sharing_point,
        )

        run_sharing_point(
            0.5, seed=args.seed,
            config=doubled_cache_config(quick_config()),
            intervals=args.intervals,
            tail=max(args.intervals // 2, 1),
            warmup_ms=4000.0, telemetry=out,
        )
    elif args.experiment == "resilience":
        from repro.experiments.resilience import run_resilience

        run_resilience(
            seed=args.seed, intervals=max(args.intervals, 8),
            config=quick_config(), replications=1,
            warmup_ms=4000.0, telemetry=out,
        )
    else:  # scaling
        from repro.experiments.scaling import run_scaling

        run_scaling(
            node_counts=(3,), pages_per_op=(),
            seed=args.seed, intervals=args.intervals,
            telemetry=out,
        )

    # Summarize what was produced: record kinds of the (merged or
    # single-run) trace, then every artifact path.
    artifacts = []
    trace_files = []
    for dirpath, dirnames, files in os.walk(out):
        dirnames.sort()
        for name in sorted(files):
            path = os.path.join(dirpath, name)
            artifacts.append(path)
            if name == "trace.jsonl":
                trace_files.append(path)
    top_trace = os.path.join(out, "trace.jsonl")
    if top_trace in trace_files:
        # The merged trace already contains every point's records.
        trace_files = [top_trace]
    kinds = {}
    for path in trace_files:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                kind = json.loads(line)["kind"]
                kinds[kind] = kinds.get(kind, 0) + 1
    print(f"telemetry exported to {out}")
    for kind in sorted(kinds):
        print(f"  {kind}: {kinds[kind]}")
    pool_high = None
    for path in artifacts:
        if os.path.basename(path) != "metrics.json":
            continue
        with open(path, "r", encoding="utf-8") as fh:
            for entry in json.load(fh).get("metrics", ()):
                if entry.get("name") == "repro_event_pool_high_water":
                    value = int(entry["value"])
                    if pool_high is None or value > pool_high:
                        pool_high = value
    if pool_high is not None:
        print(f"engine event pool high water: {pool_high}")
    print(f"artifacts ({len(artifacts)} files):")
    for path in artifacts:
        print(f"  {path}")


def _cmd_validate_analytic(args) -> None:
    """Cross-validate simulated steady state against exact MVA."""
    import json

    from repro.analytic.validate import run_validation

    report = run_validation(
        quick=args.quick, seed=args.seed, jobs=args.jobs,
        tolerance=args.tolerance, method=args.method,
    )
    print(report.to_text())
    print(f"worst relative error: {report.worst_error():.1%}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.json}")
    if not report.all_passed():
        sys.exit(1)


def _cmd_serve(args) -> None:
    """Run the observability service over recorded telemetry."""
    from repro.telemetry.server import LiveService

    service = LiveService.replay(
        args.telemetry_dir, port=args.port, host=args.host
    ).start()
    runs = service.runs()
    print(f"serving {len(runs)} recorded run(s) from {args.telemetry_dir}")
    for info in runs:
        span = (
            f"{(info.t_max - info.t_min) / 1000.0:.1f}s sim"
            if info.t_min is not None and info.t_max is not None else "empty"
        )
        print(f"  {info.run_id}  {info.name}  "
              f"({info.records} records, {span})")
    print(f"dashboard: {service.url}/  "
          f"metrics: {service.url}/metrics  "
          f"catalog: {service.url}/api/runs")
    if args.once:
        service.stop()
        return
    import time

    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.stop()


def _cmd_demo(args) -> None:
    from repro import build_base_experiment

    sim = build_base_experiment(
        seed=args.seed, goal_ms=args.goal, warmup_ms=20_000.0
    )
    for interval in range(1, args.intervals + 1):
        sim.run(intervals=1)
        series = sim.controller.series[1]
        observed = (
            f"{series.observed_rt.values[-1]:.2f}"
            if series.observed_rt.values else "-"
        )
        flag = "ok" if series.satisfied[-1] else "  "
        print(
            f"interval {interval:>3}: rt={observed:>7} ms  "
            f"goal={sim.controller.goal_of(1):.1f} ms  "
            f"dedicated={sim.dedicated_bytes(1) // 1024:>5} KB  {flag}"
        )


def _jobs_value(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 1 (or 0 for all cores)"
        )
    return jobs


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_jobs_value, default=1, metavar="N",
        help=(
            "worker processes for independent simulation runs "
            "(0 = all cores); results are identical for any value"
        ),
    )


def _add_runner_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runner", choices=("auto", "fork", "cold"), default="auto",
        help=(
            "sweep execution strategy: 'fork' shares one warmed "
            "simulation per replicate via os.fork (bit-identical to "
            "'cold', which runs every point from scratch); 'auto' "
            "forks whenever the sweep shares warm state and the "
            "platform allows it"
        ),
    )


def _add_telemetry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help=(
            "export structured telemetry (JSONL trace, Prometheus "
            "metrics, Perfetto timeline) into DIR; sweeps write one "
            "subdirectory per point plus a merged trace (see "
            "docs/observability.md); off by default with zero "
            "hot-path cost"
        ),
    )


def _add_warmup_flag(
    parser: argparse.ArgumentParser, default_ms: float
) -> None:
    # The per-experiment defaults differ on purpose (see the constants
    # in repro.experiments.runner): calibration warms 3x longer than
    # the feedback experiments and resilience's scaled-down setting
    # warms half as long.
    parser.add_argument(
        "--warmup-ms", type=float, default=default_ms, metavar="MS",
        help=(
            "simulated warm-up before the controller starts "
            f"(default: {default_ms:g} ms for this experiment)"
        ),
    )


def _add_live_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--live-port", type=int, default=None, metavar="PORT",
        help=(
            "stream this run to the live observability dashboard on "
            "localhost:PORT (0 picks a free port); results are "
            "bit-identical with or without the flag (see "
            "docs/observability.md)"
        ),
    )


def _add_prescreen_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prescreen", type=int, default=0, metavar="N",
        help=(
            "analytic fast path: classify a dense N-point goal grid "
            "with the multiclass MVA solver (milliseconds) and "
            "simulate only the feasibility frontier — a small, "
            "budget-capped subset whose results are bit-identical to "
            "the same points of an unscreened sweep (see "
            "docs/analytic.md)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Goal-oriented distributed buffer management "
            "(Sinnwell & König, ICDE 1999) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="coordinator CPU cost table")
    p.add_argument("--repetitions", type=int, default=50)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("figure2", help="base experiment series")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--intervals", type=int, default=80)
    p.add_argument("--chart", action="store_true",
                   help="render as an ASCII chart instead of a table")
    p.add_argument("--csv", metavar="PATH",
                   help="also export the series as CSV")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject a fault schedule (see docs/faults.md)")
    p.add_argument("--sweep", type=int, default=0, metavar="POINTS",
                   help="instead of the figure, sweep POINTS fixed "
                        "goals across the calibrated range (amortized "
                        "by the warm-state fork server)")
    _add_prescreen_flag(p)
    _add_warmup_flag(p, DEFAULT_WARMUP_MS)
    _add_runner_flag(p)
    _add_jobs_flag(p)
    _add_telemetry_flag(p)
    _add_live_flag(p)
    p.set_defaults(func=_cmd_figure2)

    p = sub.add_parser("table2", help="convergence vs. skew")
    p.add_argument("--seed", type=int, default=100)
    p.add_argument("--replications", type=int, default=12)
    _add_runner_flag(p)
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("multiclass", help="§7.4 sharing study")
    p.add_argument("--intervals", type=int, default=60)
    p.add_argument("--goal-pairs", type=_parse_goal_pair, nargs="*",
                   default=None, metavar="G1:G2",
                   help="instead of the sharing sweep, sweep these "
                        "(goal k1, goal k2) pairs off one warmed "
                        "simulation, e.g. --goal-pairs 3:8 4:10 5:12")
    _add_prescreen_flag(p)
    _add_warmup_flag(p, DEFAULT_WARMUP_MS)
    _add_runner_flag(p)
    _add_jobs_flag(p)
    _add_telemetry_flag(p)
    _add_live_flag(p)
    p.set_defaults(func=_cmd_multiclass)

    p = sub.add_parser("overhead", help="§7.5 overhead breakdown")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--intervals", type=int, default=40)
    p.set_defaults(func=_cmd_overhead)

    p = sub.add_parser(
        "resilience", help="fault injection + recovery metrics"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--intervals", type=int, default=90)
    p.add_argument("--replications", type=int, default=2)
    p.add_argument("--goal", type=float, default=6.0)
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="fault schedule (default: scaled crash/loss/"
                        "slowdown mix; see docs/faults.md)")
    p.add_argument("--control", action="store_true",
                   help="use the control-plane schedule instead "
                        "(coordinator crashes + a partition; ignored "
                        "when --faults is given)")
    p.add_argument("--quick", action="store_true",
                   help="scaled-down system for smoke runs")
    p.add_argument("--chart", action="store_true",
                   help="also render the recovery chart")
    p.add_argument("--csv", metavar="PATH",
                   help="export replicate 0's series as CSV")
    p.add_argument("--sweep-goals", type=float, nargs="*", default=None,
                   metavar="MS",
                   help="instead of one goal, sweep these goals under "
                        "the same fault schedule (amortized by the "
                        "warm-state fork server)")
    _add_warmup_flag(p, RESILIENCE_WARMUP_MS)
    _add_runner_flag(p)
    _add_jobs_flag(p)
    _add_telemetry_flag(p)
    _add_live_flag(p)
    p.set_defaults(func=_cmd_resilience)

    p = sub.add_parser(
        "chaos",
        help="randomized control-plane fault schedules, asserted",
    )
    p.add_argument("--seeds", type=int, default=5, metavar="N",
                   help="number of seeded chaos schedules (default: 5)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed the per-run seeds derive from")
    p.add_argument("--intervals", type=int, default=40)
    p.add_argument("--goal", type=float, default=6.0)
    p.add_argument("--quick", action="store_true",
                   help="scaled-down system for smoke runs")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the property matrix as JSON "
                        "(the CI resilience-matrix artifact)")
    _add_warmup_flag(p, RESILIENCE_WARMUP_MS)
    _add_jobs_flag(p)
    _add_live_flag(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("scaling", help="node-count / complexity scaling")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--intervals", type=int, default=50)
    p.add_argument("--nodes", type=int, nargs="*", default=[3, 5],
                   metavar="N",
                   help="cluster sizes for the node-count sweep, e.g. "
                        "--nodes 16 32 64 (empty skips the sweep)")
    p.add_argument("--pages-per-op", type=int, nargs="*",
                   default=[4, 8, 16], metavar="P",
                   help="operation sizes for the complexity sweep "
                        "(empty skips the sweep)")
    _add_jobs_flag(p)
    _add_telemetry_flag(p)
    p.set_defaults(func=_cmd_scaling)

    p = sub.add_parser("all", help="every experiment in sequence")
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=_cmd_all)

    p = sub.add_parser("demo", help="short live quickstart run")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--goal", type=float, default=6.0)
    p.add_argument("--intervals", type=int, default=25)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser(
        "trace",
        help="short telemetry-instrumented run of one experiment",
    )
    p.add_argument(
        "experiment",
        choices=("figure2", "multiclass", "resilience", "scaling",
                 "prescreen"),
        help="which experiment to trace (scaled-down quick settings; "
             "'prescreen' runs a 100-point analytically screened goal "
             "sweep and traces the prescreen record)",
    )
    p.add_argument("--out", metavar="DIR", default="telemetry-out",
                   help="export directory (default: telemetry-out)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--intervals", type=int, default=6)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "serve",
        help="observability service over recorded telemetry exports",
    )
    p.add_argument("--telemetry-dir", metavar="DIR",
                   default="telemetry-out",
                   help="telemetry export tree to catalog and replay "
                        "(default: telemetry-out)")
    p.add_argument("--port", type=int, default=8799,
                   help="TCP port to bind (0 picks a free port; "
                        "default: 8799)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--once", action="store_true",
                   help="print the catalog and exit immediately "
                        "(smoke-test mode)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "validate-analytic",
        help="cross-validate the simulator against exact MVA",
    )
    p.add_argument("--quick", action="store_true",
                   help="shorter measured horizon for smoke runs")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tolerance", type=float, default=0.10,
                   metavar="FRAC",
                   help="acceptance tolerance on relative RT error "
                        "(default: 0.10)")
    p.add_argument("--method", choices=("exact", "schweitzer", "auto"),
                   default="exact",
                   help="MVA solver to validate against "
                        "(default: exact)")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the comparison report as JSON")
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_validate_analytic)

    return parser


def main(argv: Optional[List[str]] = None) -> None:
    """Entry point for ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # --live-port (figure2/multiclass/resilience/chaos) streams the
    # run to a dashboard for its duration; the service and its bus are
    # torn down when the command finishes either way.
    service = _start_live(args)
    try:
        args.func(args)
    finally:
        _stop_live(service)


if __name__ == "__main__":
    main(sys.argv[1:])
