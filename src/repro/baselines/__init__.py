"""Baseline partitioning strategies the paper compares against or
builds upon: static partitioning, fragment fencing [5], class fencing
[6], and dynamic tuning [8]."""

from typing import Dict

from repro.baselines.class_fencing import ClassFencingCoordinator
from repro.baselines.dynamic_tuning import DynamicTuningCoordinator
from repro.baselines.fragment_fencing import FragmentFencingCoordinator
from repro.baselines.static import (
    StaticCoordinator,
    StaticPartitioningController,
)
from repro.cluster.cluster import Cluster
from repro.core.controller import GoalOrientedController

#: Coordinator class per baseline name.
COORDINATOR_TYPES = {
    "goal-oriented": None,  # the default Coordinator (LP-based)
    "fragment-fencing": FragmentFencingCoordinator,
    "class-fencing": ClassFencingCoordinator,
    "dynamic-tuning": DynamicTuningCoordinator,
}


def make_controller(
    name: str, cluster: Cluster, goals: Dict[int, float], **kwargs
) -> GoalOrientedController:
    """Build a controller running the named partitioning strategy.

    ``name`` is one of :data:`COORDINATOR_TYPES`.  All strategies share
    the agent/coordinator plumbing; only the per-class proposal logic
    differs.
    """
    if name not in COORDINATOR_TYPES:
        raise ValueError(
            f"unknown strategy {name!r}; choose from "
            f"{sorted(COORDINATOR_TYPES)}"
        )
    controller = GoalOrientedController(cluster, goals, **kwargs)
    coordinator_cls = COORDINATOR_TYPES[name]
    if coordinator_cls is not None:
        for class_id, old in list(controller.coordinators.items()):
            controller.coordinators[class_id] = coordinator_cls(
                class_id=class_id,
                node_sizes=list(old.node_sizes),
                goal_ms=old.goal_ms,
                page_size=old.page_size,
            )
    return controller


__all__ = [
    "COORDINATOR_TYPES",
    "ClassFencingCoordinator",
    "DynamicTuningCoordinator",
    "FragmentFencingCoordinator",
    "StaticCoordinator",
    "StaticPartitioningController",
    "make_controller",
]
