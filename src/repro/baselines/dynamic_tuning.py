"""Dynamic tuning baseline (Chung, Ferguson, Wang, Nikolaou & Teng '95).

The dynamic tuning algorithm (§2 of the paper) searches for a state in
which the *maximum performance index* — observed over goal response
time, over all classes — is minimal.  It computes the effect of small
changes in the buffer partitioning on the performance index and only
carries out changes that improve the system state.

This implementation performs one greedy step per feedback iteration:

* if the class's performance index exceeds 1 (goal violated), grow the
  dedicated pool by a fixed step on the node where the class arrives
  most (the change most likely to help);
* if the index is comfortably below 1, give one step back;
* each step's effect is validated implicitly by the next interval's
  measurement, so harmful moves are undone by the feedback loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.coordinator import Coordinator


class DynamicTuningCoordinator(Coordinator):
    """Coordinator variant making greedy fixed-size adjustments."""

    #: Step size as a fraction of a node's reserved memory.
    step_fraction = 0.10
    #: Give memory back below this performance index.
    release_threshold = 0.6

    def _propose(self, rt_goal, upper, now):
        index = rt_goal / self.goal_ms
        step = self.step_fraction * float(self.node_sizes.max())
        proposal = self.current_allocation.copy()
        order = np.argsort(-self._arrival_rates())
        if index > 1.0:
            for node_id in order:
                headroom = upper[node_id] - proposal[node_id]
                if headroom >= self.page_size:
                    proposal[node_id] += min(step, headroom)
                    return proposal, "dynamic-tuning", False
            return None, "dynamic-tuning", False
        if index < self.release_threshold:
            for node_id in reversed(order):
                if proposal[node_id] >= self.page_size:
                    proposal[node_id] = max(
                        proposal[node_id] - step, 0.0
                    )
                    return proposal, "dynamic-tuning", False
        return proposal, "dynamic-tuning", False

    def _arrival_rates(self) -> np.ndarray:
        rates = np.zeros(self.num_nodes)
        for node_id, report in self.goal_reports.items():
            rates[node_id] = report.arrival_rate
        return rates
