"""Static buffer partitioning baseline.

The manual approach the paper argues against (§1): an administrator
fixes the per-node dedicated pool sizes once; nothing adapts when the
workload or the goals change.  Implemented as a controller-compatible
object so experiments can swap it in for
:class:`~repro.core.controller.GoalOrientedController`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.controller import GoalOrientedController
from repro.core.coordinator import Coordinator, CoordinatorDecision


class StaticCoordinator(Coordinator):
    """A coordinator that never repartitions."""

    def __init__(self, *args, fixed_allocation: Optional[List[int]] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self._fixed = fixed_allocation
        self._applied = False

    def evaluate(self, now, other_dedicated) -> CoordinatorDecision:
        """Apply the fixed allocation once, then only observe."""
        rt_goal = self._weighted_rt(self.goal_reports)
        rt_nogoal = self._weighted_rt(self.nogoal_reports)
        if not self._applied and self._fixed is not None:
            self._applied = True
            return CoordinatorDecision(
                observed_rt=rt_goal,
                observed_nogoal_rt=rt_nogoal,
                satisfied=False,
                new_allocation=np.asarray(self._fixed, dtype=float),
                mechanism="static",
            )
        satisfied = (
            rt_goal is None
            or not self.tolerance.violated(rt_goal, self.goal_ms)
        )
        return CoordinatorDecision(
            observed_rt=rt_goal,
            observed_nogoal_rt=rt_nogoal,
            satisfied=satisfied,
        )


class StaticPartitioningController(GoalOrientedController):
    """Controller applying one fixed partitioning, then only observing."""

    def __init__(
        self,
        cluster: Cluster,
        goals: Dict[int, float],
        allocations: Dict[int, List[int]],
        **kwargs,
    ):
        super().__init__(cluster, goals, **kwargs)
        for class_id, coordinator in list(self.coordinators.items()):
            static = StaticCoordinator(
                class_id=class_id,
                node_sizes=list(coordinator.node_sizes),
                goal_ms=coordinator.goal_ms,
                page_size=coordinator.page_size,
                fixed_allocation=allocations.get(class_id),
            )
            self.coordinators[class_id] = static
