"""Class fencing baseline (Brown, Carey & Livny, SIGMOD '96).

Class fencing replaces fragment fencing's buffer/response-time
proportionality with two better-founded pieces (§2 of the paper):

1. response time is proportional to the *miss rate*, and
2. the miss rate as a function of buffer size is obtained by *linear
   extrapolation* of previously measured (buffer, hit rate) points —
   convergence is guaranteed while the hit-rate curve is concave
   (proven empirically for common replacement policies in [7]).

This implementation keeps the last measured (total buffer, hit rate)
points and extrapolates the hit-rate slope from the two most recent
distinct ones; the required hit rate follows from the response-time /
miss-rate proportionality, and the resulting total buffer is spread
over the nodes proportionally to arrival rates (the single-server
method lifted to the NOW).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.coordinator import Coordinator


class ClassFencingCoordinator(Coordinator):
    """Coordinator variant using the class-fencing estimator."""

    seed_fraction = 0.2
    #: Floor for the extrapolated hit-rate slope (per byte): guards the
    #: division when two measurements happen to coincide.
    min_slope = 1e-12

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Measured (total_buffer_bytes, hit_rate) history.
        self._hit_points: List[Tuple[float, float]] = []

    # -- measurement --------------------------------------------------------

    def _observe_hit_rate(self) -> None:
        hits = sum(h for h, _ in self.hit_info.values())
        misses = sum(m for _, m in self.hit_info.values())
        total_accesses = hits + misses
        if total_accesses == 0:
            return
        hit_rate = hits / total_accesses
        total_buffer = float(np.sum(self.current_allocation))
        if self._hit_points and abs(
            self._hit_points[-1][0] - total_buffer
        ) < 1.0:
            # Same partitioning: update the newest measurement.
            self._hit_points[-1] = (total_buffer, hit_rate)
        else:
            self._hit_points.append((total_buffer, hit_rate))
            del self._hit_points[:-8]

    # -- estimator -----------------------------------------------------------

    def _propose(self, rt_goal, upper, now):
        self._observe_hit_rate()
        total = float(np.sum(self.current_allocation))
        if total <= 0 or len(self._hit_points) < 2:
            proposal = np.minimum(self.seed_fraction * upper, upper)
            if total > 0 and np.allclose(proposal, self.current_allocation):
                proposal = np.minimum(proposal * 1.5 + self.page_size, upper)
            return proposal, "class-fencing", False

        buffer_now, hit_now = self._hit_points[-1]
        miss_now = 1.0 - hit_now
        # RT proportional to miss rate: required miss rate to meet goal.
        if rt_goal <= 0:
            return None, "class-fencing", False
        target_miss = miss_now * (self.goal_ms / rt_goal)
        target_hit = min(max(1.0 - target_miss, 0.0), 1.0)

        slope = self._hit_slope()
        if slope <= self.min_slope:
            # Flat measurement: fall back to a multiplicative probe.
            factor = 1.5 if rt_goal > self.goal_ms else 0.75
            proposal = np.minimum(
                self.current_allocation * factor, upper
            )
            return self._damp_shrink(proposal), "class-fencing", False

        new_total = buffer_now + (target_hit - hit_now) / slope
        new_total = max(new_total, 0.0)
        weights = self._arrival_weights()
        proposal = np.minimum(new_total * weights, upper)
        return self._damp_shrink(proposal), "class-fencing", False

    def _hit_slope(self) -> float:
        """Hit-rate gain per byte from the two newest distinct points."""
        (b1, h1), (b2, h2) = self._hit_points[-2], self._hit_points[-1]
        if abs(b2 - b1) < 1.0:
            return 0.0
        return max((h2 - h1) / (b2 - b1), 0.0)

    def _arrival_weights(self) -> np.ndarray:
        rates = np.zeros(self.num_nodes)
        for node_id, report in self.goal_reports.items():
            rates[node_id] = report.arrival_rate
        total = rates.sum()
        if total <= 0:
            return np.full(self.num_nodes, 1.0 / self.num_nodes)
        return rates / total
