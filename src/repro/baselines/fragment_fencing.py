"""Fragment fencing baseline (Brown, Carey, DeWitt & Mehta, VLDB '93).

Fragment fencing sizes a violated class's dedicated buffer by assuming
a *direct proportionality between buffer space and response time*
(§2 of the paper): if the class runs a factor ``rho = RT_obs/RT_goal``
too slow, its buffer is scaled by that factor.  The estimate ignores
the actual miss-rate curve, which is exactly the weakness class
fencing later fixed.

Here the single-server method is lifted to the NOW by scaling the
*total* dedicated memory and distributing it over the nodes in
proportion to the class's arrival rates.
"""

from __future__ import annotations

import numpy as np

from repro.core.coordinator import Coordinator


class FragmentFencingCoordinator(Coordinator):
    """Coordinator variant using the fragment-fencing estimator."""

    #: Initial fraction of each node's memory on the first violation.
    seed_fraction = 0.2
    #: Bounds on the per-iteration scaling factor, as in the original
    #: method's damping of extreme estimates.
    min_scale = 0.5
    max_scale = 3.0

    def _propose(self, rt_goal, upper, now):
        total = float(np.sum(self.current_allocation))
        if total <= 0:
            proposal = self.seed_fraction * upper
            return proposal, "fragment-fencing", False
        rho = rt_goal / self.goal_ms
        rho = min(max(rho, self.min_scale), self.max_scale)
        new_total = total * rho
        weights = self._arrival_weights()
        proposal = np.minimum(new_total * weights, upper)
        proposal = self._damp_shrink(proposal)
        return proposal, "fragment-fencing", False

    def _arrival_weights(self) -> np.ndarray:
        rates = np.zeros(self.num_nodes)
        for node_id, report in self.goal_reports.items():
            rates[node_id] = report.arrival_rate
        total = rates.sum()
        if total <= 0:
            return np.full(self.num_nodes, 1.0 / self.num_nodes)
        return rates / total
