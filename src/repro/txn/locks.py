"""Strict two-phase locking with deadlock detection.

Section 3 of the paper points to the (distributed) two-phase-locking
protocol [10] for transactional correctness in the presence of
updates.  Each page's lock is managed at its *home* node; a transaction
acquires shared locks for reads and exclusive locks for writes, holds
everything until commit/abort (strict 2PL), and releases in one shot.

Deadlocks are detected eagerly: before a transaction blocks, the
wait-for graph is checked; if waiting would close a cycle, the request
fails with :class:`DeadlockError` and the caller aborts (the requester
is the victim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.sim.engine import Environment, Event


class LockMode(Enum):
    """Shared (read) or exclusive (write) page lock."""

    SHARED = "S"
    EXCLUSIVE = "X"


class DeadlockError(Exception):
    """Waiting for this lock would create a wait-for cycle."""

    def __init__(self, txn_id: int, page_id: int):
        super().__init__(
            f"transaction {txn_id} would deadlock on page {page_id}"
        )
        self.txn_id = txn_id
        self.page_id = page_id


@dataclass
class _Waiter:
    txn_id: int
    mode: LockMode
    event: Event


@dataclass
class _LockState:
    holders: Dict[int, LockMode] = field(default_factory=dict)
    queue: List[_Waiter] = field(default_factory=list)


def _compatible(held: LockMode, wanted: LockMode) -> bool:
    return held is LockMode.SHARED and wanted is LockMode.SHARED


class WaitForGraph:
    """txn -> set of txns it waits for.

    One instance may be shared by several :class:`LockManager`\\ s (one
    per node) so that *distributed* deadlocks — cycles spanning lock
    tables on different home nodes — are detected too, as a
    centralized detector would.
    """

    def __init__(self):
        self.edges: Dict[int, Set[int]] = {}

    def would_cycle(self, txn_id: int, blockers: Set[int]) -> bool:
        """Would adding txn -> blockers edges close a cycle?"""
        stack = list(blockers)
        seen: Set[int] = set()
        while stack:
            current = stack.pop()
            if current == txn_id:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return False

    def add(self, txn_id: int, blockers: Set[int]) -> None:
        """Record that txn waits for every transaction in blockers."""
        self.edges.setdefault(txn_id, set()).update(blockers)

    def remove(self, txn_id: int) -> None:
        """Forget all outgoing wait edges of a (granted/aborted) txn."""
        self.edges.pop(txn_id, None)

    def discard_target(self, txn_id: int) -> None:
        """Remove a finished transaction from every blocker set."""
        for blockers in self.edges.values():
            blockers.discard(txn_id)


class LockManager:
    """Page lock table of one node (pages homed there)."""

    def __init__(self, env: Environment,
                 wait_graph: Optional["WaitForGraph"] = None):
        self.env = env
        self._locks: Dict[int, _LockState] = {}
        #: Wait-for graph; share one across managers for distributed
        #: deadlock detection.
        self._graph = wait_graph if wait_graph is not None else WaitForGraph()
        #: txn -> page ids it holds locks on (for release_all).
        self._held: Dict[int, Set[int]] = {}
        self.deadlocks_detected = 0

    # -- acquisition -----------------------------------------------------

    def acquire(self, txn_id: int, page_id: int, mode: LockMode):
        """Generator: block until the lock is granted.

        Raises :class:`DeadlockError` (without blocking) if waiting
        would close a wait-for cycle.
        """
        state = self._locks.setdefault(page_id, _LockState())
        if self._grantable(state, txn_id, mode):
            self._grant(state, txn_id, page_id, mode)
            return
        blockers = self._blockers(state, txn_id, mode)
        if self._graph.would_cycle(txn_id, blockers):
            self.deadlocks_detected += 1
            raise DeadlockError(txn_id, page_id)
        waiter = _Waiter(txn_id, mode, Event(self.env))
        state.queue.append(waiter)
        self._graph.add(txn_id, blockers)
        try:
            yield waiter.event
        finally:
            self._graph.remove(txn_id)

    def _grantable(
        self, state: _LockState, txn_id: int, mode: LockMode
    ) -> bool:
        held = state.holders.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return True  # already strong enough
            # Upgrade S -> X: only if we are the sole holder.
            return len(state.holders) == 1
        if not state.holders:
            # FIFO fairness: do not jump over earlier waiters.
            return not state.queue
        if mode is LockMode.SHARED and not state.queue:
            return all(
                _compatible(m, mode) for m in state.holders.values()
            )
        return False

    def _grant(
        self, state: _LockState, txn_id: int, page_id: int, mode: LockMode
    ) -> None:
        held = state.holders.get(txn_id)
        if held is None or mode is LockMode.EXCLUSIVE:
            state.holders[txn_id] = mode
        self._held.setdefault(txn_id, set()).add(page_id)

    def _blockers(
        self, state: _LockState, txn_id: int, mode: LockMode
    ) -> Set[int]:
        blockers = {t for t in state.holders if t != txn_id}
        blockers |= {w.txn_id for w in state.queue if w.txn_id != txn_id}
        return blockers

    # -- release ----------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Strict 2PL: drop every lock of ``txn_id`` and wake waiters."""
        pages = self._held.pop(txn_id, set())
        for page_id in pages:
            state = self._locks.get(page_id)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            self._wake(state, page_id)
            if not state.holders and not state.queue:
                del self._locks[page_id]
        # Remove txn from other transactions' blocker sets.
        self._graph.discard_target(txn_id)

    def _wake(self, state: _LockState, page_id: int) -> None:
        while state.queue:
            waiter = state.queue[0]
            compatible = not state.holders or (
                waiter.mode is LockMode.SHARED
                and all(
                    _compatible(m, waiter.mode)
                    for m in state.holders.values()
                )
            ) or (
                # Upgrade: sole holder is the waiter itself.
                list(state.holders) == [waiter.txn_id]
            )
            if not compatible:
                break
            state.queue.pop(0)
            state.holders[waiter.txn_id] = waiter.mode
            self._held.setdefault(waiter.txn_id, set()).add(page_id)
            waiter.event.succeed()
            if waiter.mode is LockMode.EXCLUSIVE:
                break

    # -- introspection -----------------------------------------------------

    def holds(self, txn_id: int, page_id: int) -> bool:
        """True if ``txn_id`` holds any lock on ``page_id``."""
        state = self._locks.get(page_id)
        return bool(state and txn_id in state.holders)

    def mode_of(self, txn_id: int, page_id: int):
        """The held lock mode, or None."""
        state = self._locks.get(page_id)
        return state.holders.get(txn_id) if state else None

    def waiting_count(self, page_id: int) -> int:
        """Transactions queued on the page's lock."""
        state = self._locks.get(page_id)
        return len(state.queue) if state else 0
