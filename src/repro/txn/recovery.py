"""Crash recovery: redo from the WAL and resolve in-doubt transactions.

After a node crash, the durable prefix of its write-ahead log defines
what survives.  Recovery proceeds as the classic presumed-nothing 2PC
restart protocol:

1. transactions with a durable COMMIT record are redone;
2. transactions with a durable PREPARE but no local outcome are *in
   doubt*: the recovering participant asks around — in this model it
   inspects the other nodes' durable logs (the coordinator forced its
   COMMIT before telling anyone, so a commit decision is always
   discoverable); a decision found nowhere means the coordinator never
   reached the commit point, and presumed-nothing resolves to abort;
3. everything else (updates of unresolved transactions) is discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.txn.wal import LogRecordKind, WriteAheadLog


@dataclass
class RecoveryReport:
    """Outcome of recovering one node."""

    node_id: int
    #: Transactions with a local durable COMMIT.
    locally_committed: Set[int] = field(default_factory=set)
    #: Transactions that were in doubt (durable PREPARE, no outcome).
    in_doubt: Set[int] = field(default_factory=set)
    #: In-doubt transactions resolved to commit via another node's log.
    resolved_commit: Set[int] = field(default_factory=set)
    #: In-doubt transactions resolved to abort (no decision anywhere).
    resolved_abort: Set[int] = field(default_factory=set)
    #: page id -> payload reinstated by redo.
    redone_pages: Dict[int, str] = field(default_factory=dict)

    @property
    def committed(self) -> Set[int]:
        """All transactions whose effects survive on this node."""
        return self.locally_committed | self.resolved_commit


def recover_node(
    logs: Dict[int, WriteAheadLog], node_id: int
) -> RecoveryReport:
    """Recover ``node_id`` from the durable logs of the whole system."""
    if node_id not in logs:
        raise KeyError(f"no log for node {node_id}")
    log = logs[node_id]
    report = RecoveryReport(node_id=node_id)
    report.locally_committed = log.committed_transactions()
    report.in_doubt = log.prepared_transactions()

    for txn_id in report.in_doubt:
        decided_commit = any(
            txn_id in other.committed_transactions()
            for other_id, other in logs.items()
            if other_id != node_id
        )
        if decided_commit:
            report.resolved_commit.add(txn_id)
        else:
            report.resolved_abort.add(txn_id)

    committed = report.committed
    for record in log.durable_records():
        if (
            record.kind is LogRecordKind.UPDATE
            and record.txn_id in committed
            and record.page_id is not None
        ):
            report.redone_pages[record.page_id] = record.payload
    return report


def recover_all(
    logs: Dict[int, WriteAheadLog]
) -> Dict[int, RecoveryReport]:
    """Recover every node (whole-cluster restart)."""
    return {node_id: recover_node(logs, node_id) for node_id in logs}
