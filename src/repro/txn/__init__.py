"""Transactional update support (the §3 extension).

The paper's evaluation is read-only, but §3 spells out how updates fit
the model: distributed two-phase locking [10] for concurrency control,
the two-phase commit protocol [15] for distributed atomicity, and
write-ahead logging [4] for durability.  This package implements all
three on top of the cluster substrate, plus cached-copy invalidation
to keep the remote caching layer coherent under writes.
"""

from repro.txn.locks import (
    DeadlockError,
    LockManager,
    LockMode,
    WaitForGraph,
)
from repro.txn.manager import Transaction, TransactionManager, TxnStatus
from repro.txn.recovery import RecoveryReport, recover_all, recover_node
from repro.txn.twophase import TwoPhaseCommit
from repro.txn.wal import (
    LOG_RECORD_BYTES,
    LogRecord,
    LogRecordKind,
    WriteAheadLog,
)

__all__ = [
    "DeadlockError",
    "LOG_RECORD_BYTES",
    "LockManager",
    "LockMode",
    "LogRecord",
    "LogRecordKind",
    "RecoveryReport",
    "Transaction",
    "recover_all",
    "recover_node",
    "TransactionManager",
    "TwoPhaseCommit",
    "TxnStatus",
    "WaitForGraph",
    "WriteAheadLog",
]
