"""Transactional page access on top of the cluster substrate.

Combines the pieces Section 3 prescribes for update support —
distributed strict 2PL (locks live at each page's home node), WAL, and
2PC — into a transaction manager usable from simulation processes::

    txn = manager.begin(node_id=0)
    yield from manager.read(txn, page_id=7)
    yield from manager.write(txn, page_id=7, payload="v2")
    committed = yield from manager.commit(txn)

On commit, the protocol forces the logs of every home node of a
written page and invalidates cached copies of the written pages on
*other* nodes (data-shipping copies become stale), keeping the remote
caching layer coherent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.cluster.cluster import Cluster
from repro.cluster.messages import MessageKind
from repro.txn.locks import (
    DeadlockError,
    LockManager,
    LockMode,
    WaitForGraph,
)
from repro.txn.twophase import TwoPhaseCommit
from repro.txn.wal import LogRecordKind, WriteAheadLog


class TxnStatus(Enum):
    """Life-cycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One client transaction, originated at ``origin_node``."""

    txn_id: int
    origin_node: int
    status: TxnStatus = TxnStatus.ACTIVE
    #: Pages read (shared locks held at their homes).
    read_set: Set[int] = field(default_factory=set)
    #: Page -> pending payload (exclusive locks held).
    write_set: Dict[int, Optional[str]] = field(default_factory=dict)
    #: Home nodes where this transaction holds locks.
    lock_sites: Set[int] = field(default_factory=set)

    def is_active(self) -> bool:
        """True while reads/writes are still allowed."""
        return self.status is TxnStatus.ACTIVE


class TransactionManager:
    """Distributed transactions over a :class:`Cluster`."""

    def __init__(self, cluster: Cluster, vote_hook=None):
        self.cluster = cluster
        # One lock table per node (pages locked at their homes), all
        # sharing a wait-for graph so distributed deadlocks are found.
        self.wait_graph = WaitForGraph()
        self.locks: Dict[int, LockManager] = {
            node.node_id: LockManager(cluster.env, self.wait_graph)
            for node in cluster.nodes
        }
        self.logs: Dict[int, WriteAheadLog] = {
            node.node_id: WriteAheadLog(
                cluster.env, node.disk, node.node_id
            )
            for node in cluster.nodes
        }
        self.two_phase = TwoPhaseCommit(
            cluster.network, self.logs, vote_hook=vote_hook
        )
        self._ids = itertools.count(1)
        self.active: Dict[int, Transaction] = {}
        self.committed = 0
        self.aborted = 0

    # -- life cycle -------------------------------------------------------

    def begin(self, node_id: int) -> Transaction:
        """Start a transaction originating at ``node_id``."""
        txn = Transaction(txn_id=next(self._ids), origin_node=node_id)
        self.active[txn.txn_id] = txn
        return txn

    def read(self, txn: Transaction, page_id: int, class_id: int = 0):
        """Generator: S-lock the page at its home, then fetch it."""
        self._check_active(txn)
        yield from self._lock(txn, page_id, LockMode.SHARED)
        level = yield from self.cluster.access_page(
            txn.origin_node, page_id, class_id
        )
        txn.read_set.add(page_id)
        return level

    def write(
        self,
        txn: Transaction,
        page_id: int,
        payload: Optional[str] = None,
        class_id: int = 0,
    ):
        """Generator: X-lock the page, fetch it, log the update."""
        self._check_active(txn)
        yield from self._lock(txn, page_id, LockMode.EXCLUSIVE)
        level = yield from self.cluster.access_page(
            txn.origin_node, page_id, class_id
        )
        txn.write_set[page_id] = payload
        # WAL rule: the update is logged (buffered) at the page's home
        # before commit can force it.
        home = self.cluster.database.home(page_id)
        self.logs[home].append(
            txn.txn_id, LogRecordKind.UPDATE, page_id=page_id,
            payload=payload,
        )
        return level

    def commit(self, txn: Transaction):
        """Generator: run 2PC; returns True iff the commit succeeded."""
        self._check_active(txn)
        participants = {
            self.cluster.database.home(page_id)
            for page_id in txn.write_set
        }
        if not txn.write_set:
            # Read-only: no 2PC, just release the locks.
            yield from self._release_all(txn)
            txn.status = TxnStatus.COMMITTED
            self.committed += 1
            self.active.pop(txn.txn_id, None)
            return True
        committed = yield from self.two_phase.commit(
            txn.txn_id, txn.origin_node, participants
        )
        if committed:
            yield from self._invalidate_copies(txn)
            txn.status = TxnStatus.COMMITTED
            self.committed += 1
        else:
            txn.status = TxnStatus.ABORTED
            self.aborted += 1
        yield from self._release_all(txn)
        self.active.pop(txn.txn_id, None)
        return committed

    def abort(self, txn: Transaction):
        """Generator: roll the transaction back and release its locks."""
        if txn.status is not TxnStatus.ACTIVE:
            return
        origin_log = self.logs[txn.origin_node]
        origin_log.append(txn.txn_id, LogRecordKind.ABORT)
        yield from self._release_all(txn)
        txn.status = TxnStatus.ABORTED
        self.aborted += 1
        self.active.pop(txn.txn_id, None)

    # -- internals ----------------------------------------------------------

    def _check_active(self, txn: Transaction) -> None:
        if not txn.is_active():
            raise RuntimeError(
                f"transaction {txn.txn_id} is {txn.status.value}"
            )

    def _lock(self, txn: Transaction, page_id: int, mode: LockMode):
        """Acquire the lock at the page's home (message if remote)."""
        home = self.cluster.database.home(page_id)
        if home != txn.origin_node:
            yield from self.cluster.network.send_message(
                MessageKind.LOCK_REQUEST
            )
        try:
            yield from self.locks[home].acquire(
                txn.txn_id, page_id, mode
            )
        except DeadlockError:
            # The requester is the deadlock victim: roll back, then
            # re-raise so the caller can retry the whole transaction.
            yield from self.abort(txn)
            raise
        txn.lock_sites.add(home)

    def _release_all(self, txn: Transaction):
        for node_id in sorted(txn.lock_sites):
            if node_id != txn.origin_node:
                yield from self.cluster.network.send_message(
                    MessageKind.LOCK_RELEASE
                )
            self.locks[node_id].release_all(txn.txn_id)
        txn.lock_sites.clear()

    def _invalidate_copies(self, txn: Transaction):
        """Drop stale cached copies of written pages on other nodes."""
        for page_id in txn.write_set:
            # holders() returns the directory's live set; snapshot (and
            # order deterministically) before unregistering inside the
            # loop.
            holders = sorted(self.cluster.directory.holders(page_id))
            for node_id in holders:
                if node_id == txn.origin_node:
                    continue
                yield from self.cluster.network.send_message(
                    MessageKind.INVALIDATE
                )
                manager = self.cluster.nodes[node_id].buffers
                pool_id = manager.holding_pool(page_id)
                if pool_id is not None:
                    manager.pool(pool_id).remove(page_id)
                    manager._where.pop(page_id, None)
                self.cluster.directory.unregister(page_id, node_id)

    # -- introspection -----------------------------------------------------

    def locks_held(self, txn: Transaction) -> List[int]:
        """Pages on which the transaction currently holds locks."""
        held = []
        for node_id in self.locks:
            for page_id in set(txn.read_set) | set(txn.write_set):
                if self.locks[node_id].holds(txn.txn_id, page_id):
                    held.append(page_id)
        return sorted(set(held))
