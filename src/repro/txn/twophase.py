"""Two-phase commit across the nodes touched by a transaction.

Section 3 cites the 2-phase commit protocol [15] for distributed
atomicity of updates.  The coordinator (the transaction's origin node)
runs the classic presumed-nothing protocol against the home nodes of
all written pages:

1. PREPARE to every participant; each forces a PREPARE record to its
   WAL and votes;
2. on unanimous yes the coordinator forces its COMMIT record (the
   commit point), then sends COMMIT to the participants, which force
   their own COMMIT records and acknowledge;
3. any no-vote (or injected failure) forces a global abort.

All protocol messages cross the simulated network with byte accounting,
so transactional workloads show up honestly in the §7.5-style traffic
breakdown.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.cluster.messages import MessageKind
from repro.cluster.network import Network
from repro.txn.wal import LogRecordKind, WriteAheadLog


class TwoPhaseCommit:
    """The commit protocol engine, shared by all transactions."""

    def __init__(
        self,
        network: Network,
        logs: Dict[int, WriteAheadLog],
        vote_hook: Optional[Callable[[int, int], bool]] = None,
    ):
        """``logs`` maps node id -> that node's WAL.

        ``vote_hook(node_id, txn_id)`` may be supplied by tests to
        inject no-votes (participant failures); the default votes yes.
        """
        self.network = network
        self.logs = logs
        self.vote_hook = vote_hook
        self.commits = 0
        self.aborts = 0

    def commit(
        self,
        txn_id: int,
        coordinator_node: int,
        participant_nodes: Iterable[int],
    ):
        """Generator: run 2PC; returns True on commit, False on abort."""
        participants = sorted(
            set(participant_nodes) - {coordinator_node}
        )

        # Phase 1: prepare.
        all_yes = True
        for node_id in participants:
            yield from self.network.send_message(MessageKind.TXN_PREPARE)
            vote = self._vote(node_id, txn_id)
            if vote:
                log = self.logs[node_id]
                log.append(txn_id, LogRecordKind.PREPARE)
                yield from log.force()
            all_yes = all_yes and vote
            yield from self.network.send_message(MessageKind.TXN_VOTE)
        # The coordinator votes for itself (no message needed).
        all_yes = all_yes and self._vote(coordinator_node, txn_id)

        coordinator_log = self.logs[coordinator_node]
        if all_yes:
            # Commit point: force the coordinator's COMMIT record.
            coordinator_log.append(txn_id, LogRecordKind.COMMIT)
            yield from coordinator_log.force()
            for node_id in participants:
                yield from self.network.send_message(
                    MessageKind.TXN_COMMIT
                )
                log = self.logs[node_id]
                log.append(txn_id, LogRecordKind.COMMIT)
                yield from log.force()
                yield from self.network.send_message(MessageKind.TXN_ACK)
            self.commits += 1
            return True

        # Global abort.
        coordinator_log.append(txn_id, LogRecordKind.ABORT)
        yield from coordinator_log.force()
        for node_id in participants:
            yield from self.network.send_message(MessageKind.TXN_COMMIT)
            log = self.logs[node_id]
            log.append(txn_id, LogRecordKind.ABORT)
            yield from log.force()
            yield from self.network.send_message(MessageKind.TXN_ACK)
        self.aborts += 1
        return False

    def _vote(self, node_id: int, txn_id: int) -> bool:
        if self.vote_hook is None:
            return True
        return self.vote_hook(node_id, txn_id)
