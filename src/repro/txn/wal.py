"""Write-ahead logging for durability.

Section 3 guarantees durability "by the WAL (Write-Ahead-Logging)
principle [4]": every update is logged before the transaction commits,
and the commit itself forces the log to stable storage.  Each node
keeps its own log on its local disk; log appends are buffered in
memory and :meth:`WriteAheadLog.force` writes everything up to a given
LSN sequentially (cheap — no seek).

Recovery (:meth:`WriteAheadLog.committed_transactions` /
:meth:`WriteAheadLog.replay_updates`) derives the durable state from
the flushed prefix only, so tests can crash a node mid-protocol and
check exactly what survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.cluster.disk import Disk
from repro.sim.engine import Environment


class LogRecordKind(Enum):
    """Record types of the redo log."""

    UPDATE = "update"
    PREPARE = "prepare"    # 2PC participant is ready to commit
    COMMIT = "commit"
    ABORT = "abort"


#: Approximate on-disk size of one log record in bytes.
LOG_RECORD_BYTES = 96


@dataclass(frozen=True)
class LogRecord:
    """One entry of a node's redo log."""

    lsn: int
    txn_id: int
    kind: LogRecordKind
    page_id: Optional[int] = None
    payload: Optional[str] = None


class WriteAheadLog:
    """A single node's append-only redo log."""

    def __init__(self, env: Environment, disk: Disk, node_id: int):
        self.env = env
        self.disk = disk
        self.node_id = node_id
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        #: Highest LSN known to be on stable storage.
        self.flushed_lsn = 0
        self.forces = 0

    # -- appending ---------------------------------------------------------

    def append(
        self,
        txn_id: int,
        kind: LogRecordKind,
        page_id: Optional[int] = None,
        payload: Optional[str] = None,
    ) -> int:
        """Buffer one record; returns its LSN (not yet durable)."""
        record = LogRecord(
            lsn=self._next_lsn,
            txn_id=txn_id,
            kind=kind,
            page_id=page_id,
            payload=payload,
        )
        self._records.append(record)
        self._next_lsn += 1
        return record.lsn

    def force(self, up_to_lsn: Optional[int] = None):
        """Generator: write all buffered records up to ``up_to_lsn``.

        The WAL rule: a transaction's COMMIT (or a participant's
        PREPARE) must be forced before the commit is acknowledged.
        """
        target = (
            up_to_lsn if up_to_lsn is not None else self._next_lsn - 1
        )
        pending = target - self.flushed_lsn
        if pending <= 0:
            return
        yield from self.disk.sequential_write(pending * LOG_RECORD_BYTES)
        self.flushed_lsn = max(self.flushed_lsn, target)
        self.forces += 1

    # -- recovery ----------------------------------------------------------

    def durable_records(self) -> List[LogRecord]:
        """The flushed prefix of the log (what survives a crash)."""
        return [r for r in self._records if r.lsn <= self.flushed_lsn]

    def committed_transactions(self) -> Set[int]:
        """Transactions with a durable COMMIT record."""
        return {
            r.txn_id
            for r in self.durable_records()
            if r.kind is LogRecordKind.COMMIT
        }

    def prepared_transactions(self) -> Set[int]:
        """Transactions prepared (in doubt) but not resolved durably."""
        prepared: Set[int] = set()
        for record in self.durable_records():
            if record.kind is LogRecordKind.PREPARE:
                prepared.add(record.txn_id)
            elif record.kind in (LogRecordKind.COMMIT,
                                 LogRecordKind.ABORT):
                prepared.discard(record.txn_id)
        return prepared

    def replay_updates(self) -> Dict[int, str]:
        """Redo: page -> last durable payload of a committed txn."""
        committed = self.committed_transactions()
        state: Dict[int, str] = {}
        for record in self.durable_records():
            if (
                record.kind is LogRecordKind.UPDATE
                and record.txn_id in committed
                and record.page_id is not None
            ):
                state[record.page_id] = record.payload
        return state

    def __len__(self) -> int:
        return len(self._records)
