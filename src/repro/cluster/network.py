"""Shared-medium LAN model with per-kind traffic accounting."""

from __future__ import annotations

from repro.cluster.config import NetworkParameters
from repro.cluster.messages import MessageKind, TrafficAccounting, message_size
from repro.sim.engine import Environment
from repro.sim.resources import Resource


class Network:
    """The cluster interconnect (§7.1: 100 Mbit/s).

    Modelled as one shared medium: transfers serialize on a single
    resource, so heavy page shipping delays everything else, as on a
    real shared LAN segment.  Every transfer is tagged with a
    :class:`MessageKind` for the §7.5 overhead accounting.
    """

    def __init__(self, env: Environment, params: NetworkParameters):
        self.env = env
        self.params = params
        self.medium = Resource(env, capacity=1)
        self.accounting = TrafficAccounting()
        #: Fault state (:class:`repro.faults.FaultLayer`), attached by
        #: the cluster when a fault schedule is configured; None keeps
        #: the hot path at a single attribute check.
        self.faults = None

    def transfer(self, kind: MessageKind, nbytes: int):
        """Generator: move ``nbytes`` bytes across the network."""
        wire_time = self.params.transfer_ms(nbytes)
        faults = self.faults
        if faults is not None and faults.extra_ms > 0.0:
            # Active latency-spike episode: every transfer pays extra.
            wire_time += faults.extra_ms
        yield from self.medium.occupy(wire_time)
        self.accounting.record(kind, nbytes)

    def send_message(self, kind: MessageKind, page_size: int = 0):
        """Generator: move one message of ``kind`` (standard wire size)."""
        yield from self.transfer(kind, message_size(kind, page_size))

    def account_only(self, kind: MessageKind, page_size: int = 0) -> None:
        """Record a message's bytes without simulating wire occupancy.

        Used for fire-and-forget control messages whose wire time is
        irrelevant to response times but whose bytes must be counted in
        the §7.5 overhead study.
        """
        self.accounting.record(kind, message_size(kind, page_size))

    def account_many(self, kind: MessageKind, count: int) -> None:
        """Record ``count`` fire-and-forget control messages at once.

        Batched variant of :meth:`account_only` for bursts (e.g. the
        directory unregistering a whole eviction batch) — identical
        ledger totals, one call.
        """
        self.accounting.record_many(kind, message_size(kind), count)

    def send_control(self, kind: MessageKind, page_size: int = 0) -> bool:
        """Account one fire-and-forget control message; report delivery.

        Like :meth:`account_only` (control traffic never occupies the
        wire), but the message is subject to the active loss episode of
        an attached fault layer: the sender's bytes are always counted
        (the message left the NIC), and ``False`` means the receiver
        never saw it.  Without a fault layer every message arrives.
        """
        self.accounting.record(kind, message_size(kind, page_size))
        faults = self.faults
        if faults is not None and faults.should_drop():
            return False
        return True

    def utilization(self) -> float:
        """Fraction of elapsed time the medium was busy."""
        return self.medium.utilization()
