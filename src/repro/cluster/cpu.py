"""CPU model: a single-server FCFS resource with MIPS-based service times."""

from __future__ import annotations

from repro.cluster.config import CpuParameters
from repro.sim.engine import Environment
from repro.sim.resources import Resource


class Cpu:
    """One node's processor.

    Simulation processes consume CPU with::

        yield from cpu.consume(instructions)

    which queues FCFS behind other work on the same node.
    """

    def __init__(self, env: Environment, params: CpuParameters):
        self.env = env
        self.params = params
        self.resource = Resource(env, capacity=1)
        # Same divisor service_ms uses, precomputed once; dividing by it
        # keeps the float results identical to params.service_ms.
        self._mips_ms = params.mips * 1_000.0

    def consume(self, instructions: float):
        """Generator: hold the CPU for ``instructions`` instructions."""
        return self.resource.occupy(instructions / self._mips_ms)

    def utilization(self) -> float:
        """Fraction of elapsed time this CPU was busy."""
        return self.resource.utilization()
