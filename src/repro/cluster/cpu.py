"""CPU model: a single-server FCFS resource with MIPS-based service times."""

from __future__ import annotations

from repro.cluster.config import CpuParameters
from repro.sim.engine import Environment
from repro.sim.resources import Resource


class Cpu:
    """One node's processor.

    Simulation processes consume CPU with::

        yield from cpu.consume(instructions)

    which queues FCFS behind other work on the same node.
    """

    def __init__(self, env: Environment, params: CpuParameters):
        self.env = env
        self.params = params
        self.resource = Resource(env, capacity=1)

    def consume(self, instructions: float):
        """Generator: hold the CPU for ``instructions`` instructions."""
        service = self.params.service_ms(instructions)
        with self.resource.request() as req:
            yield req
            yield self.env.timeout(service)

    def utilization(self) -> float:
        """Fraction of elapsed time this CPU was busy."""
        return self.resource.utilization()
