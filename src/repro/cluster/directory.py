"""Global page-location directory for remote caching.

Remote caching needs to know which nodes currently hold a cached copy
of a page, and in particular whether a given copy is the *last* cached
copy in the system (the cost-based replacement of §6 prices last copies
higher, because dropping one forces the next access to disk).

The real system of [27, 26] disseminates this information with
threshold-based protocols; the simulation models the resulting
knowledge directly and charges :class:`~repro.cluster.messages`
DIRECTORY_UPDATE bytes for each registration change so the overhead
accounting stays honest.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.cluster.messages import MessageKind
from repro.cluster.network import Network


class PageDirectory:
    """Tracks, per page, the set of nodes caching it.

    The deterministic lowest-id holder each page's remote fetches go to
    is maintained incrementally (updated on register, recomputed only
    when that exact node unregisters) so ``remote_holder`` is O(1)
    amortized instead of sorting the holder set on every remote miss.
    """

    __slots__ = ("_holders", "_lowest", "_network")

    def __init__(self, network: Optional[Network] = None):
        self._holders: Dict[int, Set[int]] = {}
        self._lowest: Dict[int, int] = {}  # page id -> min holder id
        self._network = network

    def register(self, page_id: int, node_id: int) -> None:
        """Note that ``node_id`` now caches ``page_id``."""
        holders = self._holders.get(page_id)
        if holders is None:
            self._holders[page_id] = {node_id}
            self._lowest[page_id] = node_id
            self._account()
        elif node_id not in holders:
            holders.add(node_id)
            if node_id < self._lowest[page_id]:
                self._lowest[page_id] = node_id
            self._account()

    def unregister(self, page_id: int, node_id: int) -> None:
        """Note that ``node_id`` dropped its copy of ``page_id``."""
        holders = self._holders.get(page_id)
        if holders and node_id in holders:
            holders.remove(node_id)
            if not holders:
                del self._holders[page_id]
                del self._lowest[page_id]
            elif self._lowest[page_id] == node_id:
                self._lowest[page_id] = min(holders)
            self._account()

    def unregister_many(self, page_ids: Iterable[int],
                        node_id: int) -> None:
        """Drop ``node_id``'s copies of every page in ``page_ids``.

        Equivalent to calling :meth:`unregister` per page (including
        one DIRECTORY_UPDATE accounted per actual removal) without the
        per-call overhead — eviction bursts hit this path.
        """
        all_holders = self._holders
        lowest = self._lowest
        removed = 0
        for page_id in page_ids:
            holders = all_holders.get(page_id)
            if holders and node_id in holders:
                holders.remove(node_id)
                if not holders:
                    del all_holders[page_id]
                    del lowest[page_id]
                elif lowest[page_id] == node_id:
                    lowest[page_id] = min(holders)
                removed += 1
        if removed:
            self._account(removed)

    def holders(self, page_id: int) -> Set[int]:
        """Nodes currently caching ``page_id`` (possibly empty).

        Returns the directory's live set — callers must not mutate it,
        and must snapshot (``list(...)``) before unregistering while
        iterating.
        """
        holders = self._holders.get(page_id)
        return holders if holders is not None else set()

    def cached_anywhere(self, page_id: int) -> bool:
        """True if at least one node caches the page."""
        return page_id in self._holders

    def remote_holder(self, page_id: int, requester: int) -> Optional[int]:
        """A node other than ``requester`` caching the page, if any.

        Deterministically returns the lowest node id so simulations are
        reproducible.
        """
        lowest = self._lowest.get(page_id)
        if lowest is None:
            return None
        if lowest != requester:
            return lowest
        # The requester is itself the lowest holder; fall back to the
        # next-lowest (rare: the caller usually checks its own cache
        # before asking for a remote copy).
        best = None
        for holder in self._holders[page_id]:
            if holder != requester and (best is None or holder < best):
                best = holder
        return best

    def is_last_copy(self, page_id: int, node_id: int) -> bool:
        """True if ``node_id`` holds the only cached copy of the page."""
        holders = self._holders.get(page_id)
        return (
            holders is not None
            and len(holders) == 1
            and node_id in holders
        )

    def copy_count(self, page_id: int) -> int:
        """Number of cached copies across the cluster."""
        holders = self._holders.get(page_id)
        return len(holders) if holders is not None else 0

    def _account(self, count: int = 1) -> None:
        if self._network is not None:
            if count == 1:
                self._network.account_only(MessageKind.DIRECTORY_UPDATE)
            else:
                self._network.account_many(
                    MessageKind.DIRECTORY_UPDATE, count
                )
