"""Global page-location directory for remote caching.

Remote caching needs to know which nodes currently hold a cached copy
of a page, and in particular whether a given copy is the *last* cached
copy in the system (the cost-based replacement of §6 prices last copies
higher, because dropping one forces the next access to disk).

The real system of [27, 26] disseminates this information with
threshold-based protocols; the simulation models the resulting
knowledge directly and charges :class:`~repro.cluster.messages`
DIRECTORY_UPDATE bytes for each registration change so the overhead
accounting stays honest.

Holder state is columnar: two ``array('i')`` columns indexed by page id
hold the copy count and the lowest holder id, so the by-far dominant
cases — zero or one cached copy — cost two array reads and allocate
nothing.  Only pages cached on two or more nodes keep a real ``set`` of
holders in a side dict; with data-shipping workloads that is a small
minority of the database, which removes the per-page set objects that
dominated directory memory (and GC scan time) at millions of pages.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Optional, Set

from repro.cluster.messages import MessageKind
from repro.cluster.network import Network


class DirectoryInvariantError(AssertionError):
    """The directory's columnar state violates its own invariants or
    disagrees with the actual node pool contents after reconciliation."""


class PageDirectory:
    """Tracks, per page, the set of nodes caching it.

    ``capacity`` pre-sizes the columns for a known database size (the
    cluster passes ``config.num_pages``); out-of-range page ids grow
    the columns on demand, so a bare ``PageDirectory()`` keeps working
    for arbitrary ids.

    The deterministic lowest-id holder each page's remote fetches go to
    is maintained incrementally (updated on register, recomputed only
    when that exact node unregisters) so ``remote_holder`` is O(1)
    amortized instead of sorting the holder set on every remote miss.
    """

    __slots__ = ("_count", "_lowest", "_multi", "_network", "_ncached")

    def __init__(self, network: Optional[Network] = None,
                 capacity: int = 0):
        # Zero-filled columns; ``_lowest`` is only meaningful where the
        # count is non-zero.
        self._count = array("i", bytes(4 * capacity))
        self._lowest = array("i", bytes(4 * capacity))
        #: Holder sets, only for pages with >= 2 cached copies.
        self._multi: Dict[int, Set[int]] = {}
        self._network = network
        self._ncached = 0  # pages with at least one holder

    def _grow(self, page_id: int) -> None:
        count = self._count
        need = max(page_id + 1, 2 * len(count))
        pad = bytes(4 * (need - len(count)))
        count.frombytes(pad)
        self._lowest.frombytes(pad)

    def register(self, page_id: int, node_id: int) -> None:
        """Note that ``node_id`` now caches ``page_id``."""
        count = self._count
        if page_id >= len(count):
            self._grow(page_id)
        n = count[page_id]
        if n == 0:
            count[page_id] = 1
            self._lowest[page_id] = node_id
            self._ncached += 1
        elif n == 1:
            low = self._lowest[page_id]
            if low == node_id:
                return
            self._multi[page_id] = {low, node_id}
            count[page_id] = 2
            if node_id < low:
                self._lowest[page_id] = node_id
        else:
            holders = self._multi[page_id]
            if node_id in holders:
                return
            holders.add(node_id)
            count[page_id] = n + 1
            if node_id < self._lowest[page_id]:
                self._lowest[page_id] = node_id
        self._account()

    def unregister(self, page_id: int, node_id: int) -> None:
        """Note that ``node_id`` dropped its copy of ``page_id``."""
        count = self._count
        if page_id >= len(count):
            return
        n = count[page_id]
        if n == 0:
            return
        if n == 1:
            if self._lowest[page_id] != node_id:
                return
            count[page_id] = 0
            self._ncached -= 1
        elif n == 2:
            holders = self._multi[page_id]
            if node_id not in holders:
                return
            holders.remove(node_id)
            survivor = holders.pop()
            del self._multi[page_id]
            count[page_id] = 1
            self._lowest[page_id] = survivor
        else:
            holders = self._multi[page_id]
            if node_id not in holders:
                return
            holders.remove(node_id)
            count[page_id] = n - 1
            if self._lowest[page_id] == node_id:
                self._lowest[page_id] = min(holders)
        self._account()

    def unregister_many(self, page_ids: Iterable[int],
                        node_id: int) -> None:
        """Drop ``node_id``'s copies of every page in ``page_ids``.

        Equivalent to calling :meth:`unregister` per page (including
        one DIRECTORY_UPDATE accounted per actual removal) without the
        per-call overhead — eviction bursts hit this path.
        """
        count = self._count
        lowest = self._lowest
        multi = self._multi
        size = len(count)
        removed = 0
        for page_id in page_ids:
            if page_id >= size:
                continue
            n = count[page_id]
            if n == 0:
                continue
            if n == 1:
                if lowest[page_id] != node_id:
                    continue
                count[page_id] = 0
                self._ncached -= 1
            elif n == 2:
                holders = multi[page_id]
                if node_id not in holders:
                    continue
                holders.remove(node_id)
                survivor = holders.pop()
                del multi[page_id]
                count[page_id] = 1
                lowest[page_id] = survivor
            else:
                holders = multi[page_id]
                if node_id not in holders:
                    continue
                holders.remove(node_id)
                count[page_id] = n - 1
                if lowest[page_id] == node_id:
                    lowest[page_id] = min(holders)
            removed += 1
        if removed:
            self._account(removed)

    def holders(self, page_id: int) -> Set[int]:
        """Nodes currently caching ``page_id`` (possibly empty).

        For pages with two or more copies this is the directory's live
        set — callers must not mutate it, and must snapshot
        (``list(...)``) before unregistering while iterating.  Pages
        with fewer copies return a fresh set.
        """
        count = self._count
        if page_id >= len(count):
            return set()
        n = count[page_id]
        if n == 0:
            return set()
        if n == 1:
            return {self._lowest[page_id]}
        return self._multi[page_id]

    def cached_anywhere(self, page_id: int) -> bool:
        """True if at least one node caches the page."""
        count = self._count
        return page_id < len(count) and count[page_id] > 0

    def remote_holder(self, page_id: int, requester: int) -> Optional[int]:
        """A node other than ``requester`` caching the page, if any.

        Deterministically returns the lowest node id so simulations are
        reproducible.
        """
        count = self._count
        if page_id >= len(count):
            return None
        n = count[page_id]
        if n == 0:
            return None
        lowest = self._lowest[page_id]
        if lowest != requester:
            return lowest
        if n == 1:
            return None
        # The requester is itself the lowest holder; fall back to the
        # next-lowest (rare: the caller usually checks its own cache
        # before asking for a remote copy).
        best = None
        for holder in self._multi[page_id]:
            if holder != requester and (best is None or holder < best):
                best = holder
        return best

    def is_last_copy(self, page_id: int, node_id: int) -> bool:
        """True if ``node_id`` holds the only cached copy of the page."""
        count = self._count
        return (
            page_id < len(count)
            and count[page_id] == 1
            and self._lowest[page_id] == node_id
        )

    def copy_count(self, page_id: int) -> int:
        """Number of cached copies across the cluster."""
        count = self._count
        return count[page_id] if page_id < len(count) else 0

    # -- anti-entropy ------------------------------------------------

    def state(self) -> Dict[int, tuple]:
        """Canonical snapshot of every cached page's directory entry.

        Maps ``page_id -> (count, lowest, sorted holder tuple)`` —
        exactly the columnar state (count column, lowest column, spill
        set), so two directories are behaviorally identical iff their
        snapshots are equal.  Property tests compare a post-fault
        directory's snapshot against a from-scratch rebuild.
        """
        out: Dict[int, tuple] = {}
        count = self._count
        for page_id in range(len(count)):
            n = count[page_id]
            if n > 0:
                out[page_id] = (
                    n,
                    self._lowest[page_id],
                    tuple(sorted(self.holders(page_id))),
                )
        return out

    def audit(self, actual: Dict[int, Set[int]]) -> list:
        """Check internal invariants and agreement with ``actual``.

        ``actual`` maps page id to the set of nodes whose buffer pools
        really hold the page.  Returns a list of human-readable
        discrepancy strings (empty = clean): count/spill/lowest columns
        must be mutually consistent, the cached-page counter must add
        up, and every entry must match the pool truth.
        """
        problems = []
        count = self._count
        lowest = self._lowest
        multi = self._multi
        ncached = 0
        for page_id in range(len(count)):
            n = count[page_id]
            if n > 0:
                ncached += 1
            if n <= 1:
                if page_id in multi:
                    problems.append(
                        f"page {page_id}: count {n} but a spill set exists"
                    )
            else:
                holders = multi.get(page_id)
                if holders is None:
                    problems.append(
                        f"page {page_id}: count {n} but no spill set"
                    )
                else:
                    if len(holders) != n:
                        problems.append(
                            f"page {page_id}: count {n} != spill set "
                            f"size {len(holders)}"
                        )
                    if holders and min(holders) != lowest[page_id]:
                        problems.append(
                            f"page {page_id}: lowest column "
                            f"{lowest[page_id]} != min holder "
                            f"{min(holders)}"
                        )
            truth = actual.get(page_id, ())
            mine = self.holders(page_id)
            if mine != set(truth):
                problems.append(
                    f"page {page_id}: directory says {sorted(mine)}, "
                    f"pools hold {sorted(truth)}"
                )
        for page_id, truth in actual.items():
            if page_id >= len(count) and truth:
                problems.append(
                    f"page {page_id}: cached on {sorted(truth)} but "
                    f"beyond the directory columns"
                )
        if ncached != self._ncached:
            problems.append(
                f"cached-page counter {self._ncached} != "
                f"{ncached} pages with holders"
            )
        return problems

    def reconcile(self, actual: Dict[int, Set[int]]) -> int:
        """Anti-entropy repair: rewrite every entry that disagrees with
        the actual pool contents.  Returns the number of repaired
        entries; each repair is accounted as one DIRECTORY_UPDATE."""
        count = self._count
        pages = set(actual)
        pages.update(
            page_id for page_id in range(len(count)) if count[page_id] > 0
        )
        repairs = 0
        for page_id in sorted(pages):
            truth = set(actual.get(page_id, ()))
            if self.holders(page_id) == truth:
                continue
            if page_id >= len(count):
                self._grow(page_id)
                count = self._count
            n_old = count[page_id]
            n_new = len(truth)
            if n_old > 0 and n_new == 0:
                self._ncached -= 1
            elif n_old == 0 and n_new > 0:
                self._ncached += 1
            self._multi.pop(page_id, None)
            count[page_id] = n_new
            if n_new == 1:
                self._lowest[page_id] = next(iter(truth))
            elif n_new >= 2:
                self._lowest[page_id] = min(truth)
                self._multi[page_id] = set(truth)
            repairs += 1
        if repairs:
            self._account(repairs)
        return repairs

    def _account(self, count: int = 1) -> None:
        if self._network is not None:
            if count == 1:
                self._network.account_only(MessageKind.DIRECTORY_UPDATE)
            else:
                self._network.account_many(
                    MessageKind.DIRECTORY_UPDATE, count
                )
