"""Global page-location directory for remote caching.

Remote caching needs to know which nodes currently hold a cached copy
of a page, and in particular whether a given copy is the *last* cached
copy in the system (the cost-based replacement of §6 prices last copies
higher, because dropping one forces the next access to disk).

The real system of [27, 26] disseminates this information with
threshold-based protocols; the simulation models the resulting
knowledge directly and charges :class:`~repro.cluster.messages`
DIRECTORY_UPDATE bytes for each registration change so the overhead
accounting stays honest.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cluster.messages import MessageKind
from repro.cluster.network import Network


class PageDirectory:
    """Tracks, per page, the set of nodes caching it."""

    def __init__(self, network: Optional[Network] = None):
        self._holders: Dict[int, Set[int]] = {}
        self._network = network

    def register(self, page_id: int, node_id: int) -> None:
        """Note that ``node_id`` now caches ``page_id``."""
        holders = self._holders.setdefault(page_id, set())
        if node_id not in holders:
            holders.add(node_id)
            self._account()

    def unregister(self, page_id: int, node_id: int) -> None:
        """Note that ``node_id`` dropped its copy of ``page_id``."""
        holders = self._holders.get(page_id)
        if holders and node_id in holders:
            holders.remove(node_id)
            if not holders:
                del self._holders[page_id]
            self._account()

    def holders(self, page_id: int) -> Set[int]:
        """Nodes currently caching ``page_id`` (possibly empty)."""
        return set(self._holders.get(page_id, ()))

    def cached_anywhere(self, page_id: int) -> bool:
        """True if at least one node caches the page."""
        return bool(self._holders.get(page_id))

    def remote_holder(self, page_id: int, requester: int) -> Optional[int]:
        """A node other than ``requester`` caching the page, if any.

        Deterministically returns the lowest node id so simulations are
        reproducible.
        """
        holders = self._holders.get(page_id)
        if not holders:
            return None
        candidates = sorted(h for h in holders if h != requester)
        return candidates[0] if candidates else None

    def is_last_copy(self, page_id: int, node_id: int) -> bool:
        """True if ``node_id`` holds the only cached copy of the page."""
        holders = self._holders.get(page_id)
        return holders == {node_id}

    def copy_count(self, page_id: int) -> int:
        """Number of cached copies across the cluster."""
        return len(self._holders.get(page_id, ()))

    def _account(self) -> None:
        if self._network is not None:
            self._network.account_only(MessageKind.DIRECTORY_UPDATE)
