"""One workstation of the NOW: CPU, local disk, and buffer manager."""

from __future__ import annotations

from typing import Optional

from repro.bufmgr.manager import NodeBufferManager
from repro.cluster.config import SystemConfig
from repro.cluster.cpu import Cpu
from repro.cluster.disk import Disk
from repro.sim.engine import Environment


class Node:
    """A network node with reserved buffer memory (§3)."""

    def __init__(self, node_id: int, env: Environment, config: SystemConfig):
        self.node_id = node_id
        self.env = env
        self.config = config
        self.cpu = Cpu(env, config.cpu)
        self.disk = Disk(env, config.disk)
        #: Installed by the cluster once the directory exists.
        self.buffers: Optional[NodeBufferManager] = None

    def __repr__(self) -> str:
        return f"Node({self.node_id})"
