"""Whole-system assembly and the distributed page access path.

:class:`Cluster` wires together the simulation environment, the nodes
(CPU + disk + buffer manager), the shared network, the database home
mapping, the page-location directory, and the measured access costs.
Its :meth:`Cluster.access_page` generator implements data-shipping
(§3): the requested page is copied to the node where the operation was
initiated, served from — in order of preference — the local cache, a
remote cache, or the home node's disk.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.bufmgr.costs import AccessLevel, CostObserver
from repro.bufmgr.heat import GlobalHeatRegistry
from repro.bufmgr.manager import NodeBufferManager
from repro.cluster.config import SystemConfig
from repro.cluster.database import Database
from repro.cluster.directory import DirectoryInvariantError, PageDirectory
from repro.cluster.messages import MessageKind, message_size
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.sim.engine import Environment, Timeout
from repro.sim.rng import RandomStreams


class Cluster:
    """A simulated network of workstations."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        policy: str = "cost",
        scheduler: str = "auto",
    ):
        self.config = config if config is not None else SystemConfig()
        self.env = Environment(scheduler=scheduler)
        self.rng = RandomStreams(seed)
        self.network = Network(self.env, self.config.network)
        self.database = Database(
            self.config.num_pages,
            self.config.page_size,
            self.config.num_nodes,
            self.config.placement,
        )
        self.directory = PageDirectory(
            self.network, capacity=self.config.num_pages
        )
        self.costs = CostObserver()
        self.global_heat = GlobalHeatRegistry(
            on_update=lambda: self.network.account_only(
                MessageKind.HEAT_UPDATE
            )
        )
        #: Fault state (:class:`repro.faults.FaultLayer`) or None; the
        #: access path pays one attribute check while this is None.
        self.faults = None
        #: Telemetry pipeline (:class:`repro.telemetry.Telemetry`) or
        #: None — same off-by-default, one-attribute-check discipline.
        self.telemetry = None
        #: Called as ``fn(node_id, now)`` after every node restart, so
        #: the feedback loop can invalidate state that predates the
        #: crash (see :meth:`restart_node`).
        self._restart_listeners: List[Callable[[int, float], None]] = []
        #: Anti-entropy sweeps run (see :meth:`reconcile_directory`)
        #: and directory entries they repaired.
        self.reconciles = 0
        self.reconcile_repairs = 0
        # Per-access CPU charges, pre-bound once: the access path reads
        # them on every page access, so the config attribute chain is
        # hoisted out of the hot loop.
        cpu = self.config.cpu
        self._instr_lookup = cpu.instructions_buffer_lookup
        self._instr_message = cpu.instructions_message
        self._instr_page_handling = cpu.instructions_page_handling
        # Wire sizes and times of the two data-path messages are config
        # constants; :meth:`access_run` charges them without going
        # through message_size()/transfer_ms() per miss.
        self._req_bytes = message_size(MessageKind.PAGE_REQUEST)
        self._ship_bytes = message_size(
            MessageKind.PAGE_SHIP, self.config.page_size
        )
        net = self.config.network
        self._req_wire_ms = net.transfer_ms(self._req_bytes)
        self._ship_wire_ms = net.transfer_ms(self._ship_bytes)
        self._disk_read_ms = self.config.disk.access_ms(
            self.config.page_size
        )
        self.nodes: List[Node] = [
            Node(i, self.env, self.config)
            for i in range(self.config.num_nodes)
        ]
        for node in self.nodes:
            node.buffers = NodeBufferManager(
                node_id=node.node_id,
                total_bytes=self.config.node.buffer_bytes,
                page_size=self.config.page_size,
                clock=self.env.time,
                global_heat=self.global_heat,
                costs=self.costs,
                is_last_copy=self.directory.is_last_copy,
                policy=policy,
            )

    @property
    def num_nodes(self) -> int:
        """Number of workstations in the cluster."""
        return self.config.num_nodes

    # -- fault plumbing -------------------------------------------------

    def attach_faults(self, layer) -> None:
        """Install a :class:`repro.faults.FaultLayer` on the hot paths."""
        self.faults = layer
        self.network.faults = layer

    def add_restart_listener(
        self, listener: Callable[[int, float], None]
    ) -> None:
        """Register ``listener(node_id, now)`` for node restarts."""
        self._restart_listeners.append(listener)

    # -- page access path ---------------------------------------------

    def access_page(self, node_id: int, page_id: int, class_id: int):
        """Generator: one data-shipping page access.

        Returns (via StopIteration value, i.e. ``yield from``) the
        :class:`AccessLevel` the page was served from.
        """
        node = self.nodes[node_id]
        env = self.env
        start = env._now

        faults = self.faults
        if faults is not None:
            # A crashed node serves nothing until its restart delay has
            # elapsed; operations initiated there stall (and their
            # response times spike — the signal the loop reacts to).
            delay = faults.down_delay(node_id, start)
            if delay > 0.0:
                yield env.timeout(delay)
        # The buffer-lookup CPU charge, paid on *every* access, is the
        # hottest resource hold in the simulation.  This is
        # Resource.occupy's uncontended fast path inlined (same
        # accounting, same single timeout event) to shed one generator
        # frame from every event resume on the hit path; any contention
        # falls back to the shared implementation.
        cpu = node.cpu
        res = cpu.resource
        users = res.users
        if not res._waiting and not users:
            if res._busy_since is None:
                res._busy_since = env._now
            res._grants += 1
            users.append(res)
            try:
                yield env.timeout(self._instr_lookup / cpu._mips_ms)
            finally:
                users.remove(res)
                if not users and res._busy_since is not None:
                    res._busy_time += env._now - res._busy_since
                    res._busy_since = None
                res._grant_next()
        else:
            yield from cpu.consume(self._instr_lookup)
        hit, dropped = node.buffers.probe(page_id, class_id)
        if dropped:
            self.directory.unregister_many(dropped, node_id)
        if hit:
            elapsed = env._now - start
            self.costs.observe(AccessLevel.LOCAL, elapsed)
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.on_access(
                    node_id, class_id, AccessLevel.LOCAL, elapsed
                )
            return AccessLevel.LOCAL

        level = yield from self._fetch(node, page_id)

        dropped = node.buffers.admit(page_id, class_id)
        if dropped:
            self.directory.unregister_many(dropped, node_id)
        if node.buffers.contains(page_id):
            self.directory.register(page_id, node_id)
        elapsed = env._now - start
        self.costs.observe(level, elapsed)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_access(node_id, class_id, level, elapsed)
        return level

    def _fetch(self, node: Node, page_id: int):
        """Generator: bring a page to ``node`` from remote cache or disk."""
        remote_id = self.directory.remote_holder(page_id, node.node_id)
        if remote_id is not None:
            yield from self.network.send_message(MessageKind.PAGE_REQUEST)
            remote = self.nodes[remote_id]
            yield from remote.cpu.consume(
                self._instr_message + self._instr_lookup
            )
            # The copy may have been evicted while our request was in
            # flight; fall back to disk in that case.
            if remote.buffers.contains(page_id):
                yield from self.network.send_message(
                    MessageKind.PAGE_SHIP, self.config.page_size
                )
                yield from node.cpu.consume(self._instr_page_handling)
                return AccessLevel.REMOTE

        home_id = self.database.home(page_id)
        home = self.nodes[home_id]
        faults = self.faults
        if faults is not None and home_id != node.node_id:
            # The home disk is unreachable while its node restarts.
            delay = faults.down_delay(home_id, self.env._now)
            if delay > 0.0:
                yield self.env.timeout(delay)
        if home_id == node.node_id:
            yield from home.disk.read(self.config.page_size)
            yield from node.cpu.consume(self._instr_page_handling)
        else:
            yield from self.network.send_message(MessageKind.PAGE_REQUEST)
            yield from home.cpu.consume(self._instr_message)
            yield from home.disk.read(self.config.page_size)
            yield from self.network.send_message(
                MessageKind.PAGE_SHIP, self.config.page_size
            )
            yield from node.cpu.consume(self._instr_page_handling)
        return AccessLevel.DISK

    def access_run(self, node_id: int, page_ids, class_id: int):
        """Generator: a run of same-node, same-class page accesses.

        Semantically a loop of :meth:`access_page` calls — the same
        events in the same order with the same accounting, which the
        batch-vs-loop parity test and the golden trace pin down — but
        executed in ONE generator frame.  Where the reference path
        suspends through ``access_page → _fetch → send_message →
        transfer → occupy`` (every miss-path event resume walks that
        whole chain, and each wrapper is a fresh generator object),
        this loop hoists all attribute lookups, wire sizes, service
        times, and telemetry/fault None-checks out of the per-page
        body and holds uncontended resources through
        :meth:`~repro.sim.resources.Resource.acquire_fast`, so each
        resume crosses a single frame and a miss allocates no wrapper
        generators.  Workload drivers (the open-system generator, the
        trace replayer, the closed-loop clients) feed whole operations
        through here.
        """
        env = self.env
        # Timeouts are constructed directly (class call) rather than
        # through the env.timeout factory: one call fewer per event on
        # a path that schedules several events per miss.
        timeout = Timeout
        nodes = self.nodes
        node = nodes[node_id]
        directory = self.directory
        buffers = node.buffers
        probe = buffers.probe
        admit = buffers.admit
        contains = buffers.contains
        unregister_many = directory.unregister_many
        register = directory.register
        remote_holder = directory.remote_holder
        observe = self.costs.observe
        database_home = self.database.home
        network = self.network
        medium = network.medium
        record = network.accounting.record
        cpu = node.cpu
        cpu_res = cpu.resource
        lookup_ms = self._instr_lookup / cpu._mips_ms
        handling_ms = self._instr_page_handling / cpu._mips_ms
        remote_instr = self._instr_message + self._instr_lookup
        instr_message = self._instr_message
        req_wire = self._req_wire_ms
        ship_wire = self._ship_wire_ms
        req_bytes = self._req_bytes
        ship_bytes = self._ship_bytes
        disk_read_ms = self._disk_read_ms
        page_request = MessageKind.PAGE_REQUEST
        page_ship = MessageKind.PAGE_SHIP
        local_level = AccessLevel.LOCAL
        remote_level = AccessLevel.REMOTE
        disk_level = AccessLevel.DISK
        faults = self.faults
        telemetry = self.telemetry
        # Bound methods of the per-run-constant resources, hoisted so
        # the loop pays neither the attribute walk nor the bound-method
        # allocation per call (several calls per miss).  Per-miss
        # remote/home resources vary by page and stay inline.
        cpu_acquire = cpu_res.acquire_fast
        cpu_release = cpu_res.release_fast
        cpu_occupy = cpu_res.occupy
        net_acquire = medium.acquire_fast
        net_release = medium.release_fast
        net_occupy = medium.occupy
        on_access = None if telemetry is None else telemetry.on_access

        for page_id in page_ids:
            start = env._now
            if faults is not None:
                delay = faults.down_delay(node_id, start)
                if delay > 0.0:
                    yield timeout(env, delay)
            # Buffer-lookup CPU charge, paid on every access.
            if cpu_acquire():
                try:
                    yield timeout(env, lookup_ms)
                finally:
                    cpu_release()
            else:
                yield from cpu_occupy(lookup_ms)
            hit, dropped = probe(page_id, class_id)
            if dropped:
                unregister_many(dropped, node_id)
            if hit:
                elapsed = env._now - start
                observe(local_level, elapsed)
                if on_access is not None:
                    on_access(node_id, class_id, local_level, elapsed)
                continue

            # Miss: try a remote cached copy, else the home disk.
            level = disk_level
            remote_id = remote_holder(page_id, node_id)
            if remote_id is not None:
                wire = req_wire
                if faults is not None and faults.extra_ms > 0.0:
                    wire += faults.extra_ms
                if net_acquire():
                    try:
                        yield timeout(env, wire)
                    finally:
                        net_release()
                else:
                    yield from net_occupy(wire)
                record(page_request, req_bytes)
                remote = nodes[remote_id]
                remote_res = remote.cpu.resource
                service = remote_instr / remote.cpu._mips_ms
                if remote_res.acquire_fast():
                    try:
                        yield timeout(env, service)
                    finally:
                        remote_res.release_fast()
                else:
                    yield from remote_res.occupy(service)
                # The copy may have been evicted while our request was
                # in flight; fall back to disk in that case.
                if remote.buffers.contains(page_id):
                    wire = ship_wire
                    if faults is not None and faults.extra_ms > 0.0:
                        wire += faults.extra_ms
                    if net_acquire():
                        try:
                            yield timeout(env, wire)
                        finally:
                            net_release()
                    else:
                        yield from net_occupy(wire)
                    record(page_ship, ship_bytes)
                    if cpu_acquire():
                        try:
                            yield timeout(env, handling_ms)
                        finally:
                            cpu_release()
                    else:
                        yield from cpu_occupy(handling_ms)
                    level = remote_level
            if level is disk_level:
                home_id = database_home(page_id)
                home = nodes[home_id]
                if faults is not None and home_id != node_id:
                    # The home disk is unreachable while its node
                    # restarts.
                    delay = faults.down_delay(home_id, env._now)
                    if delay > 0.0:
                        yield timeout(env, delay)
                home_disk = home.disk
                disk_res = home_disk.resource
                disk_service = disk_read_ms
                if home_disk.fault_factor != 1.0:
                    disk_service *= home_disk.fault_factor
                if home_id == node_id:
                    if disk_res.acquire_fast():
                        try:
                            yield timeout(env, disk_service)
                        finally:
                            disk_res.release_fast()
                    else:
                        yield from disk_res.occupy(disk_service)
                    home_disk.reads += 1
                    home_disk.service_stats.add(disk_service)
                    if cpu_acquire():
                        try:
                            yield timeout(env, handling_ms)
                        finally:
                            cpu_release()
                    else:
                        yield from cpu_occupy(handling_ms)
                else:
                    wire = req_wire
                    if faults is not None and faults.extra_ms > 0.0:
                        wire += faults.extra_ms
                    if net_acquire():
                        try:
                            yield timeout(env, wire)
                        finally:
                            net_release()
                    else:
                        yield from net_occupy(wire)
                    record(page_request, req_bytes)
                    home_cpu = home.cpu
                    home_res = home_cpu.resource
                    service = instr_message / home_cpu._mips_ms
                    if home_res.acquire_fast():
                        try:
                            yield timeout(env, service)
                        finally:
                            home_res.release_fast()
                    else:
                        yield from home_res.occupy(service)
                    if disk_res.acquire_fast():
                        try:
                            yield timeout(env, disk_service)
                        finally:
                            disk_res.release_fast()
                    else:
                        yield from disk_res.occupy(disk_service)
                    home_disk.reads += 1
                    home_disk.service_stats.add(disk_service)
                    wire = ship_wire
                    if faults is not None and faults.extra_ms > 0.0:
                        wire += faults.extra_ms
                    if net_acquire():
                        try:
                            yield timeout(env, wire)
                        finally:
                            net_release()
                    else:
                        yield from net_occupy(wire)
                    record(page_ship, ship_bytes)
                    if cpu_acquire():
                        try:
                            yield timeout(env, handling_ms)
                        finally:
                            cpu_release()
                    else:
                        yield from cpu_occupy(handling_ms)

            dropped = admit(page_id, class_id)
            if dropped:
                unregister_many(dropped, node_id)
            if contains(page_id):
                register(page_id, node_id)
            elapsed = env._now - start
            observe(level, elapsed)
            if on_access is not None:
                on_access(node_id, class_id, level, elapsed)

    # -- allocation plumbing --------------------------------------------

    def apply_allocation(self, class_id: int, node_bytes: List[int]) -> List[int]:
        """Set class ``class_id``'s dedicated pool size on every node.

        ``node_bytes[i]`` is the requested size on node ``i``.  Returns
        the *granted* sizes, which may be smaller when another class
        holds the memory (phase (e) conflict rule).
        """
        if len(node_bytes) != self.num_nodes:
            raise ValueError("need one size per node")
        granted = []
        for node, nbytes in zip(self.nodes, node_bytes):
            got, dropped = node.buffers.set_dedicated_bytes(class_id, nbytes)
            self._unregister(node.node_id, dropped)
            granted.append(got)
        return granted

    def apply_node_allocation(
        self, class_id: int, node_id: int, nbytes: int
    ) -> int:
        """Set ``class_id``'s dedicated pool size on one node.

        The single-node variant of :meth:`apply_allocation`, used when
        a deferred ALLOCATION finally reaches a node after a partition
        heals.  Returns the granted size.
        """
        node = self.nodes[node_id]
        got, dropped = node.buffers.set_dedicated_bytes(class_id, nbytes)
        self._unregister(node_id, dropped)
        return got

    def dedicated_bytes(self, class_id: int) -> List[int]:
        """Current per-node dedicated pool sizes for ``class_id``."""
        return [
            node.buffers.dedicated_bytes(class_id) for node in self.nodes
        ]

    def total_dedicated_bytes(self, class_id: int) -> int:
        """System-wide dedicated memory of ``class_id`` in bytes."""
        return sum(self.dedicated_bytes(class_id))

    def restart_node(self, node_id: int) -> int:
        """Simulate a node restart: its cache content is lost.

        All cached pages are dropped (and unregistered from the
        directory), heat bookkeeping and the per-interval hit/miss
        counters reset, but the disk-resident pages and the allocation
        table survive.  Returns the number of pages dropped.  Restart
        listeners (the goal-oriented controller registers one) are
        notified afterwards so measure points and remembered reports
        that predate the crash can be invalidated.  Used by resilience
        experiments: the feedback loop must re-converge after the
        resulting response time spike.
        """
        node = self.nodes[node_id]
        dropped = node.buffers.clear()
        self._unregister(node_id, dropped)
        # The restarted node's hit/miss counters restart from zero;
        # without this, the pre-crash counts would survive and poison
        # the first post-restart hit-info deltas.
        node.buffers.reset_interval_counters()
        # Restart semantics: heat state is lost.  Pages whose only
        # cached copy lived on this node go fully cold cluster-wide, so
        # their global-heat bookkeeping is deleted on demand (§6).
        # Ordinary evictions deliberately do NOT forget: cluster-wide
        # heat is an access-frequency statistic that must survive a
        # transient eviction, or the last-copy benefit term would reset
        # to zero on every re-admission.
        directory = self.directory
        for page_id in dropped:
            if not directory.cached_anywhere(page_id):
                self.global_heat.forget(page_id)
        now = self.env.now
        for listener in self._restart_listeners:
            listener(node_id, now)
        return len(dropped)

    def _unregister(self, node_id: int, dropped: List[int]) -> None:
        if dropped:
            self.directory.unregister_many(dropped, node_id)

    # -- anti-entropy ---------------------------------------------------

    def pool_contents(self) -> Dict[int, Set[int]]:
        """Ground truth from the buffer pools: page id -> holder set."""
        actual: Dict[int, Set[int]] = {}
        for node in self.nodes:
            node_id = node.node_id
            for page_id in node.buffers.cached_pages():
                holders = actual.get(page_id)
                if holders is None:
                    actual[page_id] = {node_id}
                else:
                    holders.add(node_id)
        return actual

    def reconcile_directory(self, reason: str = "manual") -> int:
        """Anti-entropy sweep: repair the directory against the pools.

        Run after any crash or partition heal.  Every directory entry
        that disagrees with the actual buffer pool contents is
        rewritten (one DIRECTORY_UPDATE accounted per repair), then the
        invariant checker verifies the repaired state — a directory
        that still disagrees with the pools afterwards indicates a real
        bookkeeping bug and raises :class:`DirectoryInvariantError`.
        Returns the number of repaired entries.
        """
        actual = self.pool_contents()
        repaired = self.directory.reconcile(actual)
        problems = self.directory.audit(actual)
        if problems:
            head = "; ".join(problems[:5])
            raise DirectoryInvariantError(
                f"directory reconciliation ({reason}) left "
                f"{len(problems)} inconsistencies: {head}"
            )
        self.reconciles += 1
        self.reconcile_repairs += repaired
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                "reconcile", self.env.now, reason=reason,
                repaired=repaired, pages_cached=len(actual),
            )
        return repaired
