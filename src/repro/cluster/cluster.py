"""Whole-system assembly and the distributed page access path.

:class:`Cluster` wires together the simulation environment, the nodes
(CPU + disk + buffer manager), the shared network, the database home
mapping, the page-location directory, and the measured access costs.
Its :meth:`Cluster.access_page` generator implements data-shipping
(§3): the requested page is copied to the node where the operation was
initiated, served from — in order of preference — the local cache, a
remote cache, or the home node's disk.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.bufmgr.costs import AccessLevel, CostObserver
from repro.bufmgr.heat import GlobalHeatRegistry
from repro.bufmgr.manager import NodeBufferManager
from repro.cluster.config import SystemConfig
from repro.cluster.database import Database
from repro.cluster.directory import DirectoryInvariantError, PageDirectory
from repro.cluster.messages import MessageKind, message_size
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.sim.engine import NORMAL, Environment, Event, pooled_timeout
from repro.sim.resources import Request
from repro.sim.rng import RandomStreams

import heapq


class _FetchHop(Event):
    """Heap-resident hop event of a :class:`_FetchChain`.

    Its ``_fast_proc`` slot holds the chain, so the kernel's dispatch
    loop calls ``chain._resume(hop)`` — advancing the chain's state
    machine — instead of resuming a generator.
    """

    __slots__ = ()


class _FetchChain(Event):
    """One whole page access (§3, §6) as a self-advancing hold chain.

    :meth:`Cluster.access_run` yields one of these per page.  The chain
    walks the access's hold sequence — the buffer-lookup CPU charge,
    then on a miss the fetch hops (request wire, remote CPU, ship wire,
    page handling; or the disk variants) — by re-pushing its single
    :class:`_FetchHop` event for each hold and performing the
    release / bookkeeping / acquire transitions inside :meth:`_resume`.
    Buffer probe/admit, directory registration, cost observation, and
    telemetry all run inside the state machine, so the owning generator
    is resumed exactly once per page, when the chain finishes (it is
    itself an :class:`Event`, fused via ``_fast_proc`` like any other
    yield target).

    Event-for-event parity with the reference ``access_page`` path is
    the invariant (the batch parity suite pins it): every hold pushes
    one heap entry with the same time and sequence number the
    ``occupy``/``acquire_fast`` code would, uncontended grants consume
    no event, and contended holds fall back to a real
    :class:`~repro.sim.resources.Request` so FIFO order and wait
    accounting are untouched.  All chained resources have capacity 1
    (node CPUs, disk arms, the network medium), which makes the inline
    fast-grant condition identical to ``occupy``'s.

    A chain is bound to one node and recycled through the node's pool
    in the run-context cache (:meth:`Cluster._build_run_ctx`), so its
    fault/telemetry bindings share the cache's invalidation.
    """

    __slots__ = (
        "_hop", "_hop_cb", "_own_cb", "_state", "_res", "_req",
        "_service", "_page", "_class", "_t0", "_node_id", "_cpu_res",
        "_lookup_ms", "_handling_ms", "_remote", "_home", "_home_local",
        "_disk_service", "_level", "_faults", "_nodes", "_net",
        "_bytes_by_kind", "_messages_by_kind", "_home_fn",
        "_remote_holder", "_probe", "_admit", "_contains", "_unreg",
        "_register", "_observe", "_on_access", "_req_wire", "_ship_wire",
        "_req_bytes", "_ship_bytes", "_remote_service",
        "_home_msg_service", "_disk_read_ms", "_page_request",
        "_page_ship", "_local_level", "_remote_level", "_disk_level",
    )

    def __init__(self, cluster: "Cluster", node_id: int):
        env = cluster.env
        self.env = env
        self.callbacks = None  # armed by _access
        self._value = None
        self._ok = None
        self._defused = False
        self._fast_proc = None
        hop = _FetchHop.__new__(_FetchHop)
        hop.env = env
        hop.callbacks = None
        hop._value = None
        hop._ok = True
        hop._defused = False
        hop._fast_proc = None
        self._hop = hop
        self._hop_cb: list = []
        self._own_cb: list = []
        self._req = None
        self._res = None
        node = cluster.nodes[node_id]
        buffers = node.buffers
        directory = cluster.directory
        telemetry = cluster._telemetry
        self._node_id = node_id
        self._cpu_res = node.cpu.resource
        self._probe = buffers.probe
        self._admit = buffers.admit
        self._contains = buffers.contains
        self._unreg = directory.unregister_many
        self._register = directory.register
        self._remote_holder = directory.remote_holder
        self._observe = cluster.costs.observe
        self._on_access = (
            None if telemetry is None else telemetry.on_access
        )
        self._faults = cluster.faults
        self._nodes = cluster.nodes
        self._net = cluster.network.medium
        accounting = cluster.network.accounting
        self._bytes_by_kind = accounting.bytes_by_kind
        self._messages_by_kind = accounting.messages_by_kind
        self._home_fn = cluster.database.home
        self._req_wire = cluster._req_wire_ms
        self._ship_wire = cluster._ship_wire_ms
        self._req_bytes = cluster._req_bytes
        self._ship_bytes = cluster._ship_bytes
        # Per-hop CPU services; every node runs the same CPU (the
        # cluster is built from one SystemConfig), so the divisions by
        # _mips_ms fold into constants.
        mips_ms = node.cpu._mips_ms
        remote_instr = cluster._instr_message + cluster._instr_lookup
        self._lookup_ms = cluster._instr_lookup / mips_ms
        self._handling_ms = cluster._instr_page_handling / mips_ms
        self._remote_service = remote_instr / mips_ms
        self._home_msg_service = cluster._instr_message / mips_ms
        self._disk_read_ms = cluster._disk_read_ms
        self._page_request = MessageKind.PAGE_REQUEST
        self._page_ship = MessageKind.PAGE_SHIP
        self._local_level = AccessLevel.LOCAL
        self._remote_level = AccessLevel.REMOTE
        self._disk_level = AccessLevel.DISK

    def _access(self, page_id: int, class_id: int,
                start: float) -> "_FetchChain":
        """Arm the chain for one page access; returns self (to yield).

        ``start`` is the access's begin time for elapsed-time
        accounting (it precedes any fault-restart delay the caller
        already slept through).
        """
        self.callbacks = self._own_cb
        self._ok = None
        self._value = None
        self._fast_proc = None
        self._page = page_id
        self._class = class_id
        self._t0 = start
        # First hold: the buffer-lookup CPU charge (state 0).
        self._state = 0
        res = self._cpu_res
        if not res._waiting and not res.users:
            env = self.env
            if res._busy_since is None:
                res._busy_since = env._now
            res._grants += 1
            res.users.append(res)
            self._res = res
            hop = self._hop
            hop.callbacks = self._hop_cb
            hop._fast_proc = self
            seq = env._seq
            env._seq = seq + 1
            entry = (env._now + self._lookup_ms, NORMAL, seq, hop)
            calendar = env._calendar
            if calendar is None:
                queue = env._queue
                heapq.heappush(queue, entry)
                if env._auto_at and len(queue) >= env._auto_at:
                    env._activate_calendar()
            else:
                calendar.push(entry)
        else:
            self._res = res
            self._service = self._lookup_ms
            req = Request(res)
            req._fast_proc = self
            self._req = req
        return self

    # -- state machine ---------------------------------------------

    def _record(self, kind, nbytes: int) -> None:
        """Inline of TrafficAccounting.record on pre-bound dicts."""
        bk = self._bytes_by_kind
        mk = self._messages_by_kind
        try:
            bk[kind] += nbytes
            mk[kind] += 1
        except KeyError:
            bk[kind] = bk.get(kind, 0) + nbytes
            mk[kind] = mk.get(kind, 0) + 1

    def _resume(self, event: Event) -> None:
        # Called by the dispatch loops, either with our hop event (the
        # current hold's service interval expired) or with a granted
        # Request (our turn on a contended resource arrived).
        if event is self._req:
            self._push_hop(self._service)
            return
        env = self.env
        res = self._res
        if res is not None:
            req = self._req
            if req is None:
                # Inline release, mirroring Resource.release_fast.
                users = res.users
                users.remove(res)
                if not users and res._busy_since is not None:
                    res._busy_time += env._now - res._busy_since
                    res._busy_since = None
                if res._waiting:
                    res._grant_next()
            else:
                self._req = None
                res.release(req)
        state = self._state
        # Each branch either finishes the access (and returns) or
        # selects the next hold as (res, service, state) and falls
        # through to the shared acquire-and-push tail below.
        if state == 0:  # buffer lookup done: probe the local cache
            page = self._page
            class_id = self._class
            hit, dropped = self._probe(page, class_id)
            if dropped:
                self._unreg(dropped, self._node_id)
            if hit:
                elapsed = env._now - self._t0
                self._observe(self._local_level, elapsed)
                on_access = self._on_access
                if on_access is not None:
                    on_access(
                        self._node_id, class_id,
                        self._local_level, elapsed,
                    )
                self._finish()
                return
            # Miss: try a remote cached copy, else the home disk.
            remote_id = self._remote_holder(page, self._node_id)
            if remote_id is not None:
                self._remote = self._nodes[remote_id]
                service = self._req_wire
                faults = self._faults
                if faults is not None and faults.extra_ms > 0.0:
                    service += faults.extra_ms
                res = self._net
                state = 1
            else:
                hold = self._start_disk()
                if hold is None:
                    return  # restart delay pushed as a pure-delay hop
                res, service, state = hold
        elif state == 1:  # request wire done (remote branch)
            self._record(self._page_request, self._req_bytes)
            res = self._remote.cpu.resource
            service = self._remote_service
            state = 2
        elif state == 2:  # remote CPU done: is the copy still there?
            if self._remote.buffers.contains(self._page):
                self._level = self._remote_level
                service = self._ship_wire
                faults = self._faults
                if faults is not None and faults.extra_ms > 0.0:
                    service += faults.extra_ms
                res = self._net
                state = 3
            else:
                # Evicted while our request was in flight.
                hold = self._start_disk()
                if hold is None:
                    return
                res, service, state = hold
        elif state == 3:  # ship wire done (remote branch)
            self._record(self._page_ship, self._ship_bytes)
            res = self._cpu_res
            service = self._handling_ms
            state = 4
        elif state == 4:  # page handling done: admit and account
            page = self._page
            class_id = self._class
            dropped = self._admit(page, class_id)
            if dropped:
                self._unreg(dropped, self._node_id)
            if self._contains(page):
                self._register(page, self._node_id)
            elapsed = env._now - self._t0
            level = self._level
            self._observe(level, elapsed)
            on_access = self._on_access
            if on_access is not None:
                on_access(self._node_id, class_id, level, elapsed)
            self._finish()
            return
        elif state == 8:  # disk read done
            home_disk = self._home.disk
            home_disk.reads += 1
            home_disk.service_stats.add(self._disk_service)
            if self._home_local:
                res = self._cpu_res
                service = self._handling_ms
                state = 4
            else:
                service = self._ship_wire
                faults = self._faults
                if faults is not None and faults.extra_ms > 0.0:
                    service += faults.extra_ms
                res = self._net
                state = 9
        elif state == 9:  # ship wire done (disk branch)
            self._record(self._page_ship, self._ship_bytes)
            res = self._cpu_res
            service = self._handling_ms
            state = 4
        elif state == 6:  # request wire done (disk branch)
            self._record(self._page_request, self._req_bytes)
            res = self._home.cpu.resource
            service = self._home_msg_service
            state = 7
        elif state == 7:  # home CPU done
            res = self._home.disk.resource
            service = self._disk_service
            state = 8
        else:  # state == 5: home-node restart delay elapsed
            hold = self._disk_go()
            if hold is None:
                return
            res, service, state = hold

        # Shared hold tail: acquire ``res`` (inline if idle, queued
        # Request otherwise) and schedule the hold's end ``service``
        # from the grant.
        self._state = state
        if not res._waiting and not res.users:
            if res._busy_since is None:
                res._busy_since = env._now
            res._grants += 1
            res.users.append(res)
            self._res = res
            hop = self._hop
            hop.callbacks = self._hop_cb
            hop._fast_proc = self
            seq = env._seq
            env._seq = seq + 1
            entry = (env._now + service, NORMAL, seq, hop)
            calendar = env._calendar
            if calendar is None:
                queue = env._queue
                heapq.heappush(queue, entry)
                if env._auto_at and len(queue) >= env._auto_at:
                    env._activate_calendar()
            else:
                calendar.push(entry)
        else:
            self._res = res
            self._service = service
            req = Request(res)
            req._fast_proc = self
            self._req = req

    def _start_disk(self):
        """Enter the disk path; returns the next hold or None when a
        restart delay was scheduled instead."""
        self._level = self._disk_level
        home_id = self._home_fn(self._page)
        home = self._nodes[home_id]
        self._home = home
        local = home_id == self._node_id
        self._home_local = local
        faults = self._faults
        if faults is not None and not local:
            # The home disk is unreachable while its node restarts.
            delay = faults.down_delay(home_id, self.env._now)
            if delay > 0.0:
                self._state = 5
                self._res = None  # pure delay: nothing to release
                self._push_hop(delay)
                return None
        return self._disk_go()

    def _disk_go(self):
        """Next hold of the disk path (read locally or request the
        home node), as a (resource, service, state) tuple."""
        home = self._home
        disk = home.disk
        service = self._disk_read_ms
        if disk.fault_factor != 1.0:
            service *= disk.fault_factor
        self._disk_service = service
        if self._home_local:
            return disk.resource, service, 8
        wire = self._req_wire
        faults = self._faults
        if faults is not None and faults.extra_ms > 0.0:
            wire += faults.extra_ms
        return self._net, wire, 6

    def _push_hop(self, delay: float) -> None:
        env = self.env
        hop = self._hop
        hop.callbacks = self._hop_cb
        hop._fast_proc = self
        seq = env._seq
        env._seq = seq + 1
        calendar = env._calendar
        if calendar is None:
            queue = env._queue
            heapq.heappush(queue, (env._now + delay, NORMAL, seq, hop))
            if env._auto_at and len(queue) >= env._auto_at:
                env._activate_calendar()
        else:
            calendar.push((env._now + delay, NORMAL, seq, hop))

    def _finish(self) -> None:
        # Resume the owner, exactly as the dispatch loop would for a
        # fired event (the chain never goes through _schedule, so no
        # extra event or sequence number).
        callbacks = self.callbacks
        self.callbacks = None
        self._ok = True
        self._value = None
        proc = self._fast_proc
        if proc is not None:
            self._fast_proc = None
            proc._resume(self)
        if callbacks:
            for callback in callbacks:
                callback(self)
            del callbacks[:]


class Cluster:
    """A simulated network of workstations."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        policy: str = "cost",
        scheduler: str = "auto",
    ):
        self.config = config if config is not None else SystemConfig()
        self.env = Environment(scheduler=scheduler)
        self.rng = RandomStreams(seed)
        self.network = Network(self.env, self.config.network)
        self.database = Database(
            self.config.num_pages,
            self.config.page_size,
            self.config.num_nodes,
            self.config.placement,
        )
        self.directory = PageDirectory(
            self.network, capacity=self.config.num_pages
        )
        self.costs = CostObserver()
        self.global_heat = GlobalHeatRegistry(
            on_update=lambda: self.network.account_only(
                MessageKind.HEAT_UPDATE
            )
        )
        #: Per-node hoisted-binding tuples for :meth:`access_run`,
        #: built lazily and invalidated whenever the fault layer or
        #: telemetry pipeline changes (both are bound into the tuple).
        self._run_ctx: Dict[int, tuple] = {}
        #: Fault state (:class:`repro.faults.FaultLayer`) or None; the
        #: access path pays one attribute check while this is None.
        self.faults = None
        #: Telemetry pipeline (:class:`repro.telemetry.Telemetry`) or
        #: None — same off-by-default, one-attribute-check discipline.
        #: (A property: assigning it invalidates the run contexts.)
        self._telemetry = None
        #: Called as ``fn(node_id, now)`` after every node restart, so
        #: the feedback loop can invalidate state that predates the
        #: crash (see :meth:`restart_node`).
        self._restart_listeners: List[Callable[[int, float], None]] = []
        #: Anti-entropy sweeps run (see :meth:`reconcile_directory`)
        #: and directory entries they repaired.
        self.reconciles = 0
        self.reconcile_repairs = 0
        # Per-access CPU charges, pre-bound once: the access path reads
        # them on every page access, so the config attribute chain is
        # hoisted out of the hot loop.
        cpu = self.config.cpu
        self._instr_lookup = cpu.instructions_buffer_lookup
        self._instr_message = cpu.instructions_message
        self._instr_page_handling = cpu.instructions_page_handling
        # Wire sizes and times of the two data-path messages are config
        # constants; :meth:`access_run` charges them without going
        # through message_size()/transfer_ms() per miss.
        self._req_bytes = message_size(MessageKind.PAGE_REQUEST)
        self._ship_bytes = message_size(
            MessageKind.PAGE_SHIP, self.config.page_size
        )
        net = self.config.network
        self._req_wire_ms = net.transfer_ms(self._req_bytes)
        self._ship_wire_ms = net.transfer_ms(self._ship_bytes)
        self._disk_read_ms = self.config.disk.access_ms(
            self.config.page_size
        )
        self.nodes: List[Node] = [
            Node(i, self.env, self.config)
            for i in range(self.config.num_nodes)
        ]
        for node in self.nodes:
            node.buffers = NodeBufferManager(
                node_id=node.node_id,
                total_bytes=self.config.node.buffer_bytes,
                page_size=self.config.page_size,
                clock=self.env.time,
                global_heat=self.global_heat,
                costs=self.costs,
                is_last_copy=self.directory.is_last_copy,
                policy=policy,
            )

    @property
    def num_nodes(self) -> int:
        """Number of workstations in the cluster."""
        return self.config.num_nodes

    @property
    def telemetry(self):
        """The attached telemetry pipeline, or None (off by default)."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, pipeline) -> None:
        self._telemetry = pipeline
        self._run_ctx.clear()

    # -- fault plumbing -------------------------------------------------

    def attach_faults(self, layer) -> None:
        """Install a :class:`repro.faults.FaultLayer` on the hot paths."""
        self.faults = layer
        self.network.faults = layer
        self._run_ctx.clear()

    def add_restart_listener(
        self, listener: Callable[[int, float], None]
    ) -> None:
        """Register ``listener(node_id, now)`` for node restarts."""
        self._restart_listeners.append(listener)

    # -- page access path ---------------------------------------------

    def access_page(self, node_id: int, page_id: int, class_id: int):
        """Generator: one data-shipping page access.

        Returns (via StopIteration value, i.e. ``yield from``) the
        :class:`AccessLevel` the page was served from.
        """
        node = self.nodes[node_id]
        env = self.env
        start = env._now

        faults = self.faults
        if faults is not None:
            # A crashed node serves nothing until its restart delay has
            # elapsed; operations initiated there stall (and their
            # response times spike — the signal the loop reacts to).
            delay = faults.down_delay(node_id, start)
            if delay > 0.0:
                yield env.timeout(delay)
        # The buffer-lookup CPU charge, paid on *every* access, is the
        # hottest resource hold in the simulation.  This is
        # Resource.occupy's uncontended fast path inlined (same
        # accounting, same single timeout event) to shed one generator
        # frame from every event resume on the hit path; any contention
        # falls back to the shared implementation.
        cpu = node.cpu
        res = cpu.resource
        users = res.users
        if not res._waiting and not users:
            if res._busy_since is None:
                res._busy_since = env._now
            res._grants += 1
            users.append(res)
            try:
                yield env.timeout(self._instr_lookup / cpu._mips_ms)
            finally:
                users.remove(res)
                if not users and res._busy_since is not None:
                    res._busy_time += env._now - res._busy_since
                    res._busy_since = None
                if res._waiting:
                    res._grant_next()
        else:
            yield from cpu.consume(self._instr_lookup)
        hit, dropped = node.buffers.probe(page_id, class_id)
        if dropped:
            self.directory.unregister_many(dropped, node_id)
        if hit:
            elapsed = env._now - start
            self.costs.observe(AccessLevel.LOCAL, elapsed)
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.on_access(
                    node_id, class_id, AccessLevel.LOCAL, elapsed
                )
            return AccessLevel.LOCAL

        level = yield from self._fetch(node, page_id)

        dropped = node.buffers.admit(page_id, class_id)
        if dropped:
            self.directory.unregister_many(dropped, node_id)
        if node.buffers.contains(page_id):
            self.directory.register(page_id, node_id)
        elapsed = env._now - start
        self.costs.observe(level, elapsed)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_access(node_id, class_id, level, elapsed)
        return level

    def _fetch(self, node: Node, page_id: int):
        """Generator: bring a page to ``node`` from remote cache or disk."""
        remote_id = self.directory.remote_holder(page_id, node.node_id)
        if remote_id is not None:
            yield from self.network.send_message(MessageKind.PAGE_REQUEST)
            remote = self.nodes[remote_id]
            yield from remote.cpu.consume(
                self._instr_message + self._instr_lookup
            )
            # The copy may have been evicted while our request was in
            # flight; fall back to disk in that case.
            if remote.buffers.contains(page_id):
                yield from self.network.send_message(
                    MessageKind.PAGE_SHIP, self.config.page_size
                )
                yield from node.cpu.consume(self._instr_page_handling)
                return AccessLevel.REMOTE

        home_id = self.database.home(page_id)
        home = self.nodes[home_id]
        faults = self.faults
        if faults is not None and home_id != node.node_id:
            # The home disk is unreachable while its node restarts.
            delay = faults.down_delay(home_id, self.env._now)
            if delay > 0.0:
                yield self.env.timeout(delay)
        if home_id == node.node_id:
            yield from home.disk.read(self.config.page_size)
            yield from node.cpu.consume(self._instr_page_handling)
        else:
            yield from self.network.send_message(MessageKind.PAGE_REQUEST)
            yield from home.cpu.consume(self._instr_message)
            yield from home.disk.read(self.config.page_size)
            yield from self.network.send_message(
                MessageKind.PAGE_SHIP, self.config.page_size
            )
            yield from node.cpu.consume(self._instr_page_handling)
        return AccessLevel.DISK

    def access_run(self, node_id: int, page_ids, class_id: int):
        """Generator: a run of same-node, same-class page accesses.

        Semantically a loop of :meth:`access_page` calls — the same
        events in the same order with the same accounting, which the
        batch-vs-loop parity test and the golden trace pin down — but
        executed through a pooled :class:`_FetchChain`: each page is
        one ``yield`` of the node's chain, which performs the whole
        lookup / probe / fetch / admit sequence as self-advancing
        events and resumes this generator once per page.  Where the
        reference path suspends through ``access_page → _fetch →
        send_message → transfer → occupy`` (every miss-path event
        resume walks that whole chain of generator frames), here no
        generator frame is entered between a page's first and last
        event.  Workload drivers (the open-system generator, the trace
        replayer, the closed-loop clients) feed whole operations
        through here.
        """
        env = self.env
        # Per-node hold chain and fault binding, cached because
        # re-deriving them costs more than a short run's whole page
        # loop.  The cache is invalidated whenever the fault layer or
        # telemetry pipeline changes (both are bound into it).
        ctx = self._run_ctx.get(node_id)
        if ctx is None:
            ctx = self._build_run_ctx(node_id)
        faults, chain_pool = ctx
        chain = (
            chain_pool.pop() if chain_pool
            else _FetchChain(self, node_id)
        )
        try:
            if faults is None:
                for page_id in page_ids:
                    yield chain._access(page_id, class_id, env._now)
            else:
                for page_id in page_ids:
                    start = env._now
                    delay = faults.down_delay(node_id, start)
                    if delay > 0.0:
                        yield pooled_timeout(env, delay)
                    yield chain._access(page_id, class_id, start)
        finally:
            # Return the chain for reuse by the next run — unless this
            # generator was closed mid-access (the chain would still
            # be armed in the event queue).
            if chain.callbacks is None:
                chain_pool.append(chain)

    def _build_run_ctx(self, node_id: int) -> tuple:
        """Build (and cache) :meth:`access_run`'s per-node context:
        the fault layer and the node's :class:`_FetchChain` pool."""
        ctx = (self.faults, [])
        self._run_ctx[node_id] = ctx
        return ctx

    # -- allocation plumbing --------------------------------------------

    def apply_allocation(self, class_id: int, node_bytes: List[int]) -> List[int]:
        """Set class ``class_id``'s dedicated pool size on every node.

        ``node_bytes[i]`` is the requested size on node ``i``.  Returns
        the *granted* sizes, which may be smaller when another class
        holds the memory (phase (e) conflict rule).
        """
        if len(node_bytes) != self.num_nodes:
            raise ValueError("need one size per node")
        granted = []
        for node, nbytes in zip(self.nodes, node_bytes):
            got, dropped = node.buffers.set_dedicated_bytes(class_id, nbytes)
            self._unregister(node.node_id, dropped)
            granted.append(got)
        return granted

    def apply_node_allocation(
        self, class_id: int, node_id: int, nbytes: int
    ) -> int:
        """Set ``class_id``'s dedicated pool size on one node.

        The single-node variant of :meth:`apply_allocation`, used when
        a deferred ALLOCATION finally reaches a node after a partition
        heals.  Returns the granted size.
        """
        node = self.nodes[node_id]
        got, dropped = node.buffers.set_dedicated_bytes(class_id, nbytes)
        self._unregister(node_id, dropped)
        return got

    def dedicated_bytes(self, class_id: int) -> List[int]:
        """Current per-node dedicated pool sizes for ``class_id``."""
        return [
            node.buffers.dedicated_bytes(class_id) for node in self.nodes
        ]

    def total_dedicated_bytes(self, class_id: int) -> int:
        """System-wide dedicated memory of ``class_id`` in bytes."""
        return sum(self.dedicated_bytes(class_id))

    def restart_node(self, node_id: int) -> int:
        """Simulate a node restart: its cache content is lost.

        All cached pages are dropped (and unregistered from the
        directory), heat bookkeeping and the per-interval hit/miss
        counters reset, but the disk-resident pages and the allocation
        table survive.  Returns the number of pages dropped.  Restart
        listeners (the goal-oriented controller registers one) are
        notified afterwards so measure points and remembered reports
        that predate the crash can be invalidated.  Used by resilience
        experiments: the feedback loop must re-converge after the
        resulting response time spike.
        """
        node = self.nodes[node_id]
        dropped = node.buffers.clear()
        self._unregister(node_id, dropped)
        # The restarted node's hit/miss counters restart from zero;
        # without this, the pre-crash counts would survive and poison
        # the first post-restart hit-info deltas.
        node.buffers.reset_interval_counters()
        # Restart semantics: heat state is lost.  Pages whose only
        # cached copy lived on this node go fully cold cluster-wide, so
        # their global-heat bookkeeping is deleted on demand (§6).
        # Ordinary evictions deliberately do NOT forget: cluster-wide
        # heat is an access-frequency statistic that must survive a
        # transient eviction, or the last-copy benefit term would reset
        # to zero on every re-admission.
        directory = self.directory
        for page_id in dropped:
            if not directory.cached_anywhere(page_id):
                self.global_heat.forget(page_id)
        now = self.env.now
        for listener in self._restart_listeners:
            listener(node_id, now)
        return len(dropped)

    def _unregister(self, node_id: int, dropped: List[int]) -> None:
        if dropped:
            self.directory.unregister_many(dropped, node_id)

    # -- anti-entropy ---------------------------------------------------

    def pool_contents(self) -> Dict[int, Set[int]]:
        """Ground truth from the buffer pools: page id -> holder set."""
        actual: Dict[int, Set[int]] = {}
        for node in self.nodes:
            node_id = node.node_id
            for page_id in node.buffers.cached_pages():
                holders = actual.get(page_id)
                if holders is None:
                    actual[page_id] = {node_id}
                else:
                    holders.add(node_id)
        return actual

    def reconcile_directory(self, reason: str = "manual") -> int:
        """Anti-entropy sweep: repair the directory against the pools.

        Run after any crash or partition heal.  Every directory entry
        that disagrees with the actual buffer pool contents is
        rewritten (one DIRECTORY_UPDATE accounted per repair), then the
        invariant checker verifies the repaired state — a directory
        that still disagrees with the pools afterwards indicates a real
        bookkeeping bug and raises :class:`DirectoryInvariantError`.
        Returns the number of repaired entries.
        """
        actual = self.pool_contents()
        repaired = self.directory.reconcile(actual)
        problems = self.directory.audit(actual)
        if problems:
            head = "; ".join(problems[:5])
            raise DirectoryInvariantError(
                f"directory reconciliation ({reason}) left "
                f"{len(problems)} inconsistencies: {head}"
            )
        self.reconciles += 1
        self.reconcile_repairs += repaired
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                "reconcile", self.env.now, reason=reason,
                repaired=repaired, pages_cached=len(actual),
            )
        return repaired
