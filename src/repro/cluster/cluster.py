"""Whole-system assembly and the distributed page access path.

:class:`Cluster` wires together the simulation environment, the nodes
(CPU + disk + buffer manager), the shared network, the database home
mapping, the page-location directory, and the measured access costs.
Its :meth:`Cluster.access_page` generator implements data-shipping
(§3): the requested page is copied to the node where the operation was
initiated, served from — in order of preference — the local cache, a
remote cache, or the home node's disk.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.bufmgr.costs import AccessLevel, CostObserver
from repro.bufmgr.heat import GlobalHeatRegistry
from repro.bufmgr.manager import NodeBufferManager
from repro.cluster.config import SystemConfig
from repro.cluster.database import Database
from repro.cluster.directory import PageDirectory
from repro.cluster.messages import MessageKind
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams


class Cluster:
    """A simulated network of workstations."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        policy: str = "cost",
    ):
        self.config = config if config is not None else SystemConfig()
        self.env = Environment()
        self.rng = RandomStreams(seed)
        self.network = Network(self.env, self.config.network)
        self.database = Database(
            self.config.num_pages,
            self.config.page_size,
            self.config.num_nodes,
            self.config.placement,
        )
        self.directory = PageDirectory(self.network)
        self.costs = CostObserver()
        self.global_heat = GlobalHeatRegistry(
            on_update=lambda: self.network.account_only(
                MessageKind.HEAT_UPDATE
            )
        )
        #: Fault state (:class:`repro.faults.FaultLayer`) or None; the
        #: access path pays one attribute check while this is None.
        self.faults = None
        #: Telemetry pipeline (:class:`repro.telemetry.Telemetry`) or
        #: None — same off-by-default, one-attribute-check discipline.
        self.telemetry = None
        #: Called as ``fn(node_id, now)`` after every node restart, so
        #: the feedback loop can invalidate state that predates the
        #: crash (see :meth:`restart_node`).
        self._restart_listeners: List[Callable[[int, float], None]] = []
        # Per-access CPU charges, pre-bound once: the access path reads
        # them on every page access, so the config attribute chain is
        # hoisted out of the hot loop.
        cpu = self.config.cpu
        self._instr_lookup = cpu.instructions_buffer_lookup
        self._instr_message = cpu.instructions_message
        self._instr_page_handling = cpu.instructions_page_handling
        self.nodes: List[Node] = [
            Node(i, self.env, self.config)
            for i in range(self.config.num_nodes)
        ]
        for node in self.nodes:
            node.buffers = NodeBufferManager(
                node_id=node.node_id,
                total_bytes=self.config.node.buffer_bytes,
                page_size=self.config.page_size,
                clock=self.env.time,
                global_heat=self.global_heat,
                costs=self.costs,
                is_last_copy=self.directory.is_last_copy,
                policy=policy,
            )

    @property
    def num_nodes(self) -> int:
        """Number of workstations in the cluster."""
        return self.config.num_nodes

    # -- fault plumbing -------------------------------------------------

    def attach_faults(self, layer) -> None:
        """Install a :class:`repro.faults.FaultLayer` on the hot paths."""
        self.faults = layer
        self.network.faults = layer

    def add_restart_listener(
        self, listener: Callable[[int, float], None]
    ) -> None:
        """Register ``listener(node_id, now)`` for node restarts."""
        self._restart_listeners.append(listener)

    # -- page access path ---------------------------------------------

    def access_page(self, node_id: int, page_id: int, class_id: int):
        """Generator: one data-shipping page access.

        Returns (via StopIteration value, i.e. ``yield from``) the
        :class:`AccessLevel` the page was served from.
        """
        node = self.nodes[node_id]
        env = self.env
        start = env._now

        faults = self.faults
        if faults is not None:
            # A crashed node serves nothing until its restart delay has
            # elapsed; operations initiated there stall (and their
            # response times spike — the signal the loop reacts to).
            delay = faults.down_delay(node_id, start)
            if delay > 0.0:
                yield env.timeout(delay)
        # The buffer-lookup CPU charge, paid on *every* access, is the
        # hottest resource hold in the simulation.  This is
        # Resource.occupy's uncontended fast path inlined (same
        # accounting, same single timeout event) to shed one generator
        # frame from every event resume on the hit path; any contention
        # falls back to the shared implementation.
        cpu = node.cpu
        res = cpu.resource
        users = res.users
        if not res._waiting and not users:
            if res._busy_since is None:
                res._busy_since = env._now
            res._grants += 1
            users.append(res)
            try:
                yield env.timeout(self._instr_lookup / cpu._mips_ms)
            finally:
                users.remove(res)
                if not users and res._busy_since is not None:
                    res._busy_time += env._now - res._busy_since
                    res._busy_since = None
                res._grant_next()
        else:
            yield from cpu.consume(self._instr_lookup)
        hit, dropped = node.buffers.probe(page_id, class_id)
        if dropped:
            self.directory.unregister_many(dropped, node_id)
        if hit:
            elapsed = env._now - start
            self.costs.observe(AccessLevel.LOCAL, elapsed)
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.on_access(
                    node_id, class_id, AccessLevel.LOCAL, elapsed
                )
            return AccessLevel.LOCAL

        level = yield from self._fetch(node, page_id)

        dropped = node.buffers.admit(page_id, class_id)
        if dropped:
            self.directory.unregister_many(dropped, node_id)
        if node.buffers.contains(page_id):
            self.directory.register(page_id, node_id)
        elapsed = env._now - start
        self.costs.observe(level, elapsed)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_access(node_id, class_id, level, elapsed)
        return level

    def _fetch(self, node: Node, page_id: int):
        """Generator: bring a page to ``node`` from remote cache or disk."""
        remote_id = self.directory.remote_holder(page_id, node.node_id)
        if remote_id is not None:
            yield from self.network.send_message(MessageKind.PAGE_REQUEST)
            remote = self.nodes[remote_id]
            yield from remote.cpu.consume(
                self._instr_message + self._instr_lookup
            )
            # The copy may have been evicted while our request was in
            # flight; fall back to disk in that case.
            if remote.buffers.contains(page_id):
                yield from self.network.send_message(
                    MessageKind.PAGE_SHIP, self.config.page_size
                )
                yield from node.cpu.consume(self._instr_page_handling)
                return AccessLevel.REMOTE

        home_id = self.database.home(page_id)
        home = self.nodes[home_id]
        faults = self.faults
        if faults is not None and home_id != node.node_id:
            # The home disk is unreachable while its node restarts.
            delay = faults.down_delay(home_id, self.env._now)
            if delay > 0.0:
                yield self.env.timeout(delay)
        if home_id == node.node_id:
            yield from home.disk.read(self.config.page_size)
            yield from node.cpu.consume(self._instr_page_handling)
        else:
            yield from self.network.send_message(MessageKind.PAGE_REQUEST)
            yield from home.cpu.consume(self._instr_message)
            yield from home.disk.read(self.config.page_size)
            yield from self.network.send_message(
                MessageKind.PAGE_SHIP, self.config.page_size
            )
            yield from node.cpu.consume(self._instr_page_handling)
        return AccessLevel.DISK

    # -- allocation plumbing --------------------------------------------

    def apply_allocation(self, class_id: int, node_bytes: List[int]) -> List[int]:
        """Set class ``class_id``'s dedicated pool size on every node.

        ``node_bytes[i]`` is the requested size on node ``i``.  Returns
        the *granted* sizes, which may be smaller when another class
        holds the memory (phase (e) conflict rule).
        """
        if len(node_bytes) != self.num_nodes:
            raise ValueError("need one size per node")
        granted = []
        for node, nbytes in zip(self.nodes, node_bytes):
            got, dropped = node.buffers.set_dedicated_bytes(class_id, nbytes)
            self._unregister(node.node_id, dropped)
            granted.append(got)
        return granted

    def dedicated_bytes(self, class_id: int) -> List[int]:
        """Current per-node dedicated pool sizes for ``class_id``."""
        return [
            node.buffers.dedicated_bytes(class_id) for node in self.nodes
        ]

    def total_dedicated_bytes(self, class_id: int) -> int:
        """System-wide dedicated memory of ``class_id`` in bytes."""
        return sum(self.dedicated_bytes(class_id))

    def restart_node(self, node_id: int) -> int:
        """Simulate a node restart: its cache content is lost.

        All cached pages are dropped (and unregistered from the
        directory), heat bookkeeping and the per-interval hit/miss
        counters reset, but the disk-resident pages and the allocation
        table survive.  Returns the number of pages dropped.  Restart
        listeners (the goal-oriented controller registers one) are
        notified afterwards so measure points and remembered reports
        that predate the crash can be invalidated.  Used by resilience
        experiments: the feedback loop must re-converge after the
        resulting response time spike.
        """
        node = self.nodes[node_id]
        dropped = node.buffers.clear()
        self._unregister(node_id, dropped)
        # The restarted node's hit/miss counters restart from zero;
        # without this, the pre-crash counts would survive and poison
        # the first post-restart hit-info deltas.
        node.buffers.reset_interval_counters()
        # Restart semantics: heat state is lost.  Pages whose only
        # cached copy lived on this node go fully cold cluster-wide, so
        # their global-heat bookkeeping is deleted on demand (§6).
        # Ordinary evictions deliberately do NOT forget: cluster-wide
        # heat is an access-frequency statistic that must survive a
        # transient eviction, or the last-copy benefit term would reset
        # to zero on every re-admission.
        directory = self.directory
        for page_id in dropped:
            if not directory.cached_anywhere(page_id):
                self.global_heat.forget(page_id)
        now = self.env.now
        for listener in self._restart_listeners:
            listener(node_id, now)
        return len(dropped)

    def _unregister(self, node_id: int, dropped: List[int]) -> None:
        if dropped:
            self.directory.unregister_many(dropped, node_id)
