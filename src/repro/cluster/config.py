"""Configuration dataclasses for the NOW (network of workstations) substrate.

The defaults reproduce the experimental environment of §7.1 of the
paper: 3 nodes at 100 MIPS connected by a 100 Mbit/s network, one SCSI
disk and 2 MB of cache memory per node, and a database of 2000 pages of
4 KB distributed round-robin over the nodes' disks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Number of bytes in one simulated page (§7.1: 4 KByte pages).
DEFAULT_PAGE_SIZE = 4096


@dataclass(frozen=True)
class CpuParameters:
    """A node CPU, modelled by instruction throughput.

    The paper's nodes run at 100 MIPS; per-event instruction budgets
    are small constants typical of buffer-manager code paths.
    """

    mips: float = 100.0
    #: Instructions for a buffer lookup / hash probe.
    instructions_buffer_lookup: int = 2_000
    #: Instructions to process (copy/fix) one page after it arrives.
    instructions_page_handling: int = 5_000
    #: Instructions to send or receive one network message.
    instructions_message: int = 3_000

    def service_ms(self, instructions: float) -> float:
        """Milliseconds of CPU time for ``instructions`` instructions."""
        if instructions < 0:
            raise ValueError("instruction count must be non-negative")
        return instructions / (self.mips * 1_000.0)


@dataclass(frozen=True)
class DiskParameters:
    """A SCSI disk: seek + rotational delay + transfer.

    The defaults model a fast disk with an effective on-drive cache
    (short average positioning time); together with the 100 Mbit/s
    network they put simulated response times into the same few-ms band
    as the paper's Figure 2.
    """

    avg_seek_ms: float = 4.0
    avg_rotational_ms: float = 2.0
    transfer_mb_per_s: float = 20.0

    def access_ms(self, nbytes: int) -> float:
        """Total service time for one request of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        transfer = nbytes / (self.transfer_mb_per_s * 1_000_000.0) * 1_000.0
        return self.avg_seek_ms + self.avg_rotational_ms + transfer


@dataclass(frozen=True)
class NetworkParameters:
    """A shared-medium LAN (§7.1: 100 Mbit/s transfer rate)."""

    bandwidth_mbit_per_s: float = 100.0
    latency_ms: float = 0.05

    def transfer_ms(self, nbytes: int) -> float:
        """Wire time (latency + serialization) for ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        bits = nbytes * 8.0
        return self.latency_ms + bits / (self.bandwidth_mbit_per_s * 1_000.0)


@dataclass(frozen=True)
class NodeParameters:
    """Per-node memory reservation (§7.1: 2 MB of cache space)."""

    buffer_bytes: int = 2 * 1024 * 1024


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of the simulated system."""

    num_nodes: int = 3
    page_size: int = DEFAULT_PAGE_SIZE
    num_pages: int = 2000
    cpu: CpuParameters = field(default_factory=CpuParameters)
    disk: DiskParameters = field(default_factory=DiskParameters)
    network: NetworkParameters = field(default_factory=NetworkParameters)
    node: NodeParameters = field(default_factory=NodeParameters)
    #: 'round_robin' (paper §7.1) or 'hash' home placement.
    placement: str = "round_robin"
    #: Length of one observation interval in ms (§7.1: 5000 ms).
    observation_interval_ms: float = 5000.0

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("need at least one node")
        if self.num_pages < 1:
            raise ValueError("need at least one page")
        if self.page_size < 1:
            raise ValueError("page size must be positive")
        if self.placement not in ("round_robin", "hash"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.observation_interval_ms <= 0:
            raise ValueError("observation interval must be positive")

    @property
    def buffer_pages_per_node(self) -> int:
        """How many page frames fit into one node's reserved memory."""
        return self.node.buffer_bytes // self.page_size

    @property
    def total_buffer_bytes(self) -> int:
        """Aggregate reserved cache memory across all nodes."""
        return self.node.buffer_bytes * self.num_nodes
