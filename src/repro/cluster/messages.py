"""Message vocabulary and byte accounting for the cluster network.

The overhead study (§7.5) compares the bytes moved by the goal-oriented
control machinery against the total network traffic; to support it,
every transfer is tagged with a :class:`MessageKind` and folded into a
:class:`TrafficAccounting` ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class MessageKind(Enum):
    """What a network transfer carries."""

    # Enum equality is identity, so the identity hash is consistent —
    # and C-level, unlike ``Enum.__hash__`` (a Python call per dict
    # probe).  The accounting ledger hashes kinds on every transfer.
    __hash__ = object.__hash__

    #: Request asking a remote node for a page (data path).
    PAGE_REQUEST = "page_request"
    #: A shipped page (data path).
    PAGE_SHIP = "page_ship"
    #: Page-location directory maintenance (data path).
    DIRECTORY_UPDATE = "directory_update"
    #: Heat/benefit dissemination of the cost-based replacement (data path).
    HEAT_UPDATE = "heat_update"
    #: Distributed 2PL lock request / release (transaction path).
    LOCK_REQUEST = "lock_request"
    LOCK_RELEASE = "lock_release"
    #: Two-phase commit protocol messages (transaction path).
    TXN_PREPARE = "txn_prepare"
    TXN_VOTE = "txn_vote"
    TXN_COMMIT = "txn_commit"
    TXN_ACK = "txn_ack"
    #: Cached-copy invalidation after a committed update.
    INVALIDATE = "invalidate"
    #: Agent -> coordinator measurement report (control path).
    AGENT_REPORT = "agent_report"
    #: Coordinator -> agent new buffer allocation (control path).
    ALLOCATION = "allocation"
    #: Agent -> coordinator allocation-conflict feedback (control path).
    ALLOCATION_ACK = "allocation_ack"
    #: Coordinator migration announcement to agents (control path).
    MIGRATION = "migration"
    #: Coordinator state transfer on migration (control path).
    MIGRATION_STATE = "migration_state"


#: Wire sizes in bytes (headers included) for non-page messages.
MESSAGE_BYTES: Dict[MessageKind, int] = {
    MessageKind.PAGE_REQUEST: 64,
    MessageKind.DIRECTORY_UPDATE: 32,
    MessageKind.HEAT_UPDATE: 48,
    MessageKind.LOCK_REQUEST: 48,
    MessageKind.LOCK_RELEASE: 48,
    MessageKind.TXN_PREPARE: 64,
    MessageKind.TXN_VOTE: 32,
    MessageKind.TXN_COMMIT: 64,
    MessageKind.TXN_ACK: 32,
    MessageKind.INVALIDATE: 48,
    MessageKind.AGENT_REPORT: 64,
    MessageKind.ALLOCATION: 64,
    MessageKind.ALLOCATION_ACK: 32,
    MessageKind.MIGRATION: 48,
    MessageKind.MIGRATION_STATE: 1024,
}

#: Header bytes added on top of the page payload for a page ship.
PAGE_SHIP_HEADER_BYTES = 64

#: Message kinds that belong to the goal-oriented control machinery.
CONTROL_KINDS = frozenset(
    {
        MessageKind.AGENT_REPORT,
        MessageKind.ALLOCATION,
        MessageKind.ALLOCATION_ACK,
        MessageKind.MIGRATION,
        MessageKind.MIGRATION_STATE,
    }
)


def message_size(kind: MessageKind, page_size: int = 0) -> int:
    """Wire size in bytes of one message of ``kind``."""
    if kind is MessageKind.PAGE_SHIP:
        return page_size + PAGE_SHIP_HEADER_BYTES
    return MESSAGE_BYTES[kind]


@dataclass
class TrafficAccounting:
    """Running totals of network traffic, split by message kind."""

    bytes_by_kind: Dict[MessageKind, int] = field(default_factory=dict)
    messages_by_kind: Dict[MessageKind, int] = field(default_factory=dict)

    def record(self, kind: MessageKind, nbytes: int) -> None:
        """Account one transfer of ``nbytes`` bytes."""
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + nbytes
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def record_many(self, kind: MessageKind, nbytes: int,
                    count: int) -> None:
        """Account ``count`` transfers of ``nbytes`` bytes each."""
        self.bytes_by_kind[kind] = (
            self.bytes_by_kind.get(kind, 0) + nbytes * count
        )
        self.messages_by_kind[kind] = (
            self.messages_by_kind.get(kind, 0) + count
        )

    @property
    def total_bytes(self) -> int:
        """All bytes that crossed the network."""
        return sum(self.bytes_by_kind.values())

    @property
    def control_bytes(self) -> int:
        """Bytes attributable to the goal-oriented control loop."""
        return sum(
            nbytes
            for kind, nbytes in self.bytes_by_kind.items()
            if kind in CONTROL_KINDS
        )

    @property
    def control_fraction(self) -> float:
        """control bytes / total bytes (0.0 when nothing was sent)."""
        total = self.total_bytes
        return self.control_bytes / total if total else 0.0
