"""NOW (network of workstations) substrate: nodes, disks, network,
database homes, page-location directory, and the cluster assembly."""

from repro.cluster.cluster import Cluster
from repro.cluster.config import (
    CpuParameters,
    DiskParameters,
    NetworkParameters,
    NodeParameters,
    SystemConfig,
)
from repro.cluster.database import Database
from repro.cluster.directory import PageDirectory
from repro.cluster.messages import (
    CONTROL_KINDS,
    MessageKind,
    TrafficAccounting,
    message_size,
)
from repro.cluster.network import Network
from repro.cluster.node import Node

__all__ = [
    "CONTROL_KINDS",
    "Cluster",
    "CpuParameters",
    "Database",
    "DiskParameters",
    "MessageKind",
    "NetworkParameters",
    "Network",
    "Node",
    "NodeParameters",
    "PageDirectory",
    "SystemConfig",
    "TrafficAccounting",
    "message_size",
]
