"""The simulated database: pages and their disk homes.

Every page has a permanent disk-resident copy at exactly one node, its
*home* (§3).  Homes are assigned round-robin (§7.1) or by a hash
function; both are supported.
"""

from __future__ import annotations

from typing import List


class Database:
    """A set of ``num_pages`` pages of ``page_size`` bytes each."""

    def __init__(
        self,
        num_pages: int,
        page_size: int,
        num_nodes: int,
        placement: str = "round_robin",
    ):
        if num_pages < 1:
            raise ValueError("need at least one page")
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if placement not in ("round_robin", "hash"):
            raise ValueError(f"unknown placement {placement!r}")
        self.num_pages = num_pages
        self.page_size = page_size
        self.num_nodes = num_nodes
        self.placement = placement

    def home(self, page_id: int) -> int:
        """Node id holding the disk-resident copy of ``page_id``."""
        self._check(page_id)
        if self.placement == "round_robin":
            return page_id % self.num_nodes
        # Deterministic multiplicative hash, well spread for small ids.
        return (page_id * 2654435761) % (2**32) % self.num_nodes

    def pages_homed_at(self, node_id: int) -> List[int]:
        """All page ids whose home is ``node_id``."""
        return [p for p in range(self.num_pages) if self.home(p) == node_id]

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise ValueError(
                f"page {page_id} outside database [0, {self.num_pages})"
            )
