"""Disk model: FCFS single-arm SCSI disk with analytic service times."""

from __future__ import annotations

from repro.cluster.config import DiskParameters
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.sim.stats import OnlineStats


class Disk:
    """One node's local disk.

    Each read occupies the arm for seek + rotation + transfer time;
    concurrent requests queue FCFS, so disk contention emerges naturally
    under load.
    """

    def __init__(self, env: Environment, params: DiskParameters):
        self.env = env
        self.params = params
        self.resource = Resource(env, capacity=1)
        self.reads = 0
        self.writes = 0
        self.service_stats = OnlineStats()
        #: Service-time multiplier of an active slowdown episode (set
        #: and restored by :class:`repro.faults.FaultInjector`).
        self.fault_factor = 1.0

    def read(self, nbytes: int):
        """Generator: perform one read of ``nbytes`` bytes."""
        service = self.params.access_ms(nbytes)
        if self.fault_factor != 1.0:
            service *= self.fault_factor
        yield from self.resource.occupy(service)
        self.reads += 1
        self.service_stats.add(service)

    def sequential_write(self, nbytes: int):
        """Generator: append ``nbytes`` sequentially (log writes).

        Sequential appends skip the seek: only rotational latency plus
        transfer is charged, which is why forcing the WAL is far
        cheaper than a random page read.
        """
        transfer = (
            nbytes / (self.params.transfer_mb_per_s * 1_000_000.0) * 1_000.0
        )
        service = self.params.avg_rotational_ms + transfer
        if self.fault_factor != 1.0:
            service *= self.fault_factor
        yield from self.resource.occupy(service)
        self.writes += 1
        self.service_stats.add(service)

    def utilization(self) -> float:
        """Fraction of elapsed time the disk arm was busy."""
        return self.resource.utilization()

    @property
    def mean_queue_wait(self) -> float:
        """Mean time requests spent waiting for the arm."""
        return self.resource.mean_wait
