"""Discrete-event simulation kernel.

A small, self-contained process-based discrete-event simulation (DES)
engine in the style of SimPy: simulation *processes* are Python
generators that ``yield`` events (timeouts, resource requests, other
processes) and are resumed by the :class:`~repro.sim.engine.Environment`
when those events fire.

The kernel is intentionally free of any database or networking
vocabulary; the cluster substrate (:mod:`repro.cluster`) builds on top
of it.

Public API
----------
- :class:`Environment` — event loop and simulation clock.
- :class:`Event`, :class:`Timeout`, :class:`Process` — awaitables.
- :class:`AnyOf`, :class:`AllOf` — event combinators.
- :class:`Resource`, :class:`PriorityResource` — queued servers.
- :class:`RandomStreams` — named, reproducible random streams.
- :class:`CalendarQueue` — the high-density scheduler backend
  (``Environment(scheduler=...)`` selects it; "auto" adopts it once
  enough events are pending).
- :mod:`repro.sim.stats` — online statistics and time series.
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    pooled_timeout,
    pooled_timeout_at,
)
from repro.sim.resources import PriorityResource, Resource
from repro.sim.rng import RandomStreams
from repro.sim.stats import (
    OnlineStats,
    P2Quantile,
    TimeSeries,
    WindowStats,
    mean_confidence_interval,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Environment",
    "Event",
    "Interrupt",
    "OnlineStats",
    "P2Quantile",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "TimeSeries",
    "Timeout",
    "WindowStats",
    "mean_confidence_interval",
    "pooled_timeout",
    "pooled_timeout_at",
]
