"""Core event loop of the discrete-event simulation kernel.

The design follows the classic process-interaction style: simulation
logic lives in Python generators.  A generator yields :class:`Event`
instances; the :class:`Environment` resumes the generator when the
yielded event is *triggered*.  Triggering an event schedules its
callbacks at the current simulation time; the event heap orders
callbacks by ``(time, priority, sequence)`` so that the simulation is
fully deterministic for a fixed seed.

Time is a ``float`` in **milliseconds** by convention throughout this
project, although the kernel itself is unit-agnostic.

Hot-path design
---------------
The kernel is the substrate every experiment pays for, so the dominant
``yield env.timeout(...)`` round trip is aggressively specialized
(without changing any observable ordering — the golden-trace test pins
this down):

- every event class uses ``__slots__``, and the ``_defused`` flag is an
  ordinary slot instead of a ``getattr`` probe per dispatch;
- a *fused timeout→resume* path: when a process is the first (and
  typically only) waiter of a :class:`Timeout`, the process is stored
  in the event's ``_fast_proc`` slot and resumed directly at dispatch,
  skipping the callback-list append/iterate machinery and the bound
  method allocation it implies;
- :class:`Timeout` construction writes its slots and pushes onto the
  heap inline instead of chaining ``Event.__init__`` → ``_schedule``;
- :meth:`Environment.run` hoists the ``stop_at`` / ``stop_event``
  branches out of the per-event loop into three specialized loops with
  locally bound queue/heappop references;
- a *timeout free list*: a fused timeout whose only waiter was resumed
  through ``_fast_proc`` is provably unreachable by simulation code
  once its dispatch returns, so the dispatch loops recycle it into
  ``Environment._pool`` (callbacks list and all) and
  :func:`pooled_timeout` / :func:`pooled_timeout_at` re-arm pooled
  records instead of allocating — the dominant allocation on the page
  access path at large node counts.  Timeouts with extra callbacks, or
  with no fused waiter (e.g. an event passed to ``run(until=...)``),
  are never pooled, so late reads of ``.value``/``.processed`` on a
  retained reference keep working.

Scheduler backends
------------------
The pending-event set lives either in a binary heap (the default) or a
:class:`~repro.sim.calendar.CalendarQueue`.  Both order the same
``(time, priority, seq, event)`` tuples, and since ``seq`` is unique
that order is total — the backends pop bit-identically, which the
pop-order property test and the golden trace pin down.  The
``scheduler`` knob selects the backend:

- ``"auto"`` (default): start on the heap and migrate to a calendar
  queue the first time the pending count reaches
  :data:`CALENDAR_AUTO_THRESHOLD` — small simulations never leave the
  heap's fast constant factors, big ones (hundreds of nodes keep one
  pending arrival per node and class) escape its O(log n) pushes;
- ``"heap"`` / ``"calendar"``: force one backend.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.calendar import CalendarQueue

#: Scheduling priorities.  URGENT callbacks (event chain plumbing) run
#: before NORMAL callbacks scheduled for the same simulation time.
URGENT = 0
NORMAL = 1

#: Pending-event count at which an ``"auto"`` environment swaps its
#: heap for a calendar queue.  Sits just past the measured crossover
#: where the calendar's O(1) pushes overtake the C heap's constant
#: factors (~0.95x at 4k pending, ~1.4x at 32k).  Read once per
#: Environment construction, so tests can monkeypatch it to force
#: early migration.
CALENDAR_AUTO_THRESHOLD = 8192


class SimulationError(Exception):
    """Raised for illegal kernel operations (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted by another one.

    The interrupting cause is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An occurrence that processes can wait for.

    An event starts *pending*, becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called (which schedules it on the event queue),
    and is *processed* once the environment has run its callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused",
                 "_fast_proc")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._defused = False
        self._fast_proc: Optional["Process"] = None

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (not failed)."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting for the
        event.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, URGENT)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run the callback immediately so that
            # late waiters do not deadlock.
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined Event.__init__ + Environment._schedule: a timeout is
        # created per kernel round trip, so the chained calls matter.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._fast_proc = None
        self.delay = delay
        seq = env._seq
        env._seq = seq + 1
        calendar = env._calendar
        if calendar is None:
            queue = env._queue
            heapq.heappush(queue, (env._now + delay, NORMAL, seq, self))
            if env._auto_at and len(queue) >= env._auto_at:
                env._activate_calendar()
        else:
            calendar.push((env._now + delay, NORMAL, seq, self))


def pooled_timeout(env: "Environment", delay: float,
                   value: Any = None) -> "Timeout":
    """A :class:`Timeout` from the environment's free list.

    Identical to ``Timeout(env, delay, value)`` — same heap tuple, same
    sequence number, same observable state — but reuses a recycled
    timeout record (including its empty callbacks list) when one is
    available.  Hot paths that schedule one timeout per event round
    trip bind this function once and skip the allocator entirely.
    """
    pool = env._pool
    if not pool:
        return Timeout(env, delay, value)
    if delay < 0:
        raise ValueError(f"negative delay {delay!r}")
    self = pool.pop()
    # _ok is True, _defused False, _fast_proc None and callbacks an
    # empty list by the recycle invariant; only value/delay change.
    self._value = value
    self.delay = delay
    seq = env._seq
    env._seq = seq + 1
    calendar = env._calendar
    if calendar is None:
        queue = env._queue
        heapq.heappush(queue, (env._now + delay, NORMAL, seq, self))
        if env._auto_at and len(queue) >= env._auto_at:
            env._activate_calendar()
    else:
        calendar.push((env._now + delay, NORMAL, seq, self))
    return self


def pooled_timeout_at(env: "Environment", when: float,
                      value: Any = None) -> "Timeout":
    """A pooled :class:`Timeout` firing at *absolute* time ``when``.

    ``Timeout(env, when - env.now)`` re-derives the absolute fire time
    as ``now + (when - now)``, which is not ``when`` under float
    rounding; schedulers that walk precomputed absolute timestamps (the
    block-generated arrival front-end) need the event to land on the
    exact float.  ``when`` must not lie in the past.
    """
    if when < env._now:
        raise ValueError(f"timeout_at({when!r}) lies in the past")
    pool = env._pool
    if pool:
        self = pool.pop()
        self._value = value
    else:
        self = Timeout.__new__(Timeout)
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._fast_proc = None
    self.delay = when - env._now
    seq = env._seq
    env._seq = seq + 1
    calendar = env._calendar
    if calendar is None:
        queue = env._queue
        heapq.heappush(queue, (when, NORMAL, seq, self))
        if env._auto_at and len(queue) >= env._auto_at:
            env._activate_calendar()
    else:
        calendar.push((when, NORMAL, seq, self))
    return self


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._fast_proc = process
        env._schedule(self, URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it triggers (with the generator's
    return value) when the generator terminates, so other processes may
    ``yield`` it to wait for completion.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True  # never counts as an unhandled failure
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT)
        # Unsubscribe from the event the process was waiting on: it will
        # be resumed by the interrupt instead.
        target = self._target
        if target is not None:
            if target._fast_proc is self:
                target._fast_proc = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self._generator
        send = generator.send
        while True:
            if event._ok:
                try:
                    target = send(event._value)
                except StopIteration as stop:
                    self._terminate(True, stop.value)
                    break
                except BaseException as exc:
                    self._terminate(False, exc)
                    break
            else:
                # Mark the failure as handled: it is being delivered.
                event._defused = True
                try:
                    target = generator.throw(event._value)
                except StopIteration as stop:
                    self._terminate(True, stop.value)
                    break
                except BaseException as exc:
                    self._terminate(False, exc)
                    break
            if type(target) is Timeout:
                callbacks = target.callbacks
                if callbacks is not None:
                    # Fused fast path: first waiter of a pending
                    # timeout rides the _fast_proc slot (resumed before
                    # any later callbacks, preserving FIFO order).
                    if target._fast_proc is None and not callbacks:
                        target._fast_proc = self
                    else:
                        callbacks.append(self._resume)
                    self._target = target
                    break
                event = target
                continue
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            callbacks = target.callbacks
            if callbacks is None:  # already processed
                event = target
                continue
            # Same fusion for every other event kind (resource grants,
            # process joins, ...): the dispatch loops resume _fast_proc
            # before running callbacks, so first-waiter-in-the-slot is
            # ordering-identical to first-callback-in-the-list.
            if target._fast_proc is None and not callbacks:
                target._fast_proc = self
            else:
                callbacks.append(self._resume)
            self._target = target
            break
        env._active_process = None

    def _terminate(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        self.env._schedule(self, URGENT)


class _MultiEvent(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`.

    The value is a dict mapping the index of each *fired* child event
    to its value, collected at the moment the combinator triggers.
    """

    __slots__ = ("_events", "_results", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._results: dict = {}
        self._done = 0
        for event in self._events:
            if not isinstance(event, Event):
                raise TypeError(f"{event!r} is not an Event")
        if not self._events:
            self._ok = True
            self._value = {}
            env._schedule(self, URGENT)
            return
        for index, event in enumerate(self._events):
            event._add_callback(
                lambda fired, index=index: self._on_child(index, fired)
            )

    def _on_child(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._results[index] = event._value
        self._done += 1
        if self._check(self._done, len(self._events)):
            self.succeed(dict(self._results))

    def _check(self, done: int, total: int) -> bool:
        raise NotImplementedError


class AnyOf(_MultiEvent):
    """Fires when any of the given events has fired."""

    __slots__ = ()

    def _check(self, done: int, total: int) -> bool:
        return done > 0


class AllOf(_MultiEvent):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _check(self, done: int, total: int) -> bool:
        return done == total


class Environment:
    """Event loop, simulation clock, and process factory.

    ``scheduler`` picks the pending-event backend: ``"auto"`` (heap
    now, calendar queue once :data:`CALENDAR_AUTO_THRESHOLD` events are
    pending), ``"heap"``, or ``"calendar"`` — see the module docstring;
    the backends are pop-order identical.
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process",
                 "_calendar", "_auto_at", "_pool", "_pool_high")

    def __init__(self, initial_time: float = 0.0,
                 scheduler: str = "auto"):
        self._now = float(initial_time)
        self._queue: List = []  # (time, priority, seq, event)
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Free list of recycled Timeout records (see module docstring)
        #: and its high-water mark (an off-by-default telemetry gauge).
        self._pool: List[Timeout] = []
        self._pool_high = 0
        if scheduler == "auto":
            self._calendar: Optional[CalendarQueue] = None
            self._auto_at = CALENDAR_AUTO_THRESHOLD
        elif scheduler == "heap":
            self._calendar = None
            self._auto_at = 0
        elif scheduler == "calendar":
            self._calendar = CalendarQueue()
            self._auto_at = 0
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r} "
                "(expected 'auto', 'heap', or 'calendar')"
            )

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def time(self) -> float:
        """Current simulation time, as a plain method.

        Equivalent to :attr:`now`; hot paths that need a ``clock``
        callable bind this method directly instead of wrapping the
        property in a lambda.
        """
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now."""
        return pooled_timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing at absolute time ``when``.

        Unlike ``timeout(when - now)`` the event lands on the exact
        float ``when`` (no ``now + delta`` re-rounding).
        """
        return pooled_timeout_at(self, when, value)

    @property
    def event_pool_size(self) -> int:
        """Recycled timeout records currently on the free list."""
        return len(self._pool)

    @property
    def event_pool_high_water(self) -> int:
        """Largest free-list size seen so far (pool growth gauge)."""
        return self._pool_high

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        seq = self._seq
        self._seq = seq + 1
        calendar = self._calendar
        if calendar is None:
            queue = self._queue
            heapq.heappush(
                queue, (self._now + delay, priority, seq, event)
            )
            if self._auto_at and len(queue) >= self._auto_at:
                self._activate_calendar()
        else:
            calendar.push((self._now + delay, priority, seq, event))

    def _activate_calendar(self) -> None:
        """Migrate the pending heap into a calendar queue (auto mode).

        Emptying ``_queue`` in place matters: the dispatch loops bind
        the heap list locally, see it drain to zero, and fall through
        to their calendar variant on the next outer iteration.
        """
        self._calendar = CalendarQueue(self._queue)
        del self._queue[:]

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-undispatched events (any backend)."""
        calendar = self._calendar
        return len(self._queue) if calendar is None else len(calendar)

    @property
    def scheduler_backend(self) -> str:
        """The active backend: ``"heap"`` or ``"calendar"``."""
        return "heap" if self._calendar is None else "calendar"

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        calendar = self._calendar
        if calendar is not None:
            return calendar.peek()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        calendar = self._calendar
        if calendar is None:
            if not self._queue:
                raise SimulationError("no more events")
            when, _, _, event = heapq.heappop(self._queue)
        else:
            if not calendar:
                raise SimulationError("no more events")
            when, _, _, event = calendar.pop()
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        proc = event._fast_proc
        if proc is not None:
            event._fast_proc = None
            proc._resume(event)
            if not callbacks and type(event) is Timeout:
                # Fused timeout, no other subscribers: recycle the
                # record (and its still-empty callbacks list).
                event.callbacks = callbacks
                pool = self._pool
                pool.append(event)
                if len(pool) > self._pool_high:
                    self._pool_high = len(pool)
                return  # a timeout is always _ok
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody waited for: surface the error
            # instead of silently dropping it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulation time), or an :class:`Event` (run until
        it is processed, returning its value).
        """
        if until is None:
            self._run_exhaust()
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        stop_at = float(until)
        if stop_at < self._now:
            raise ValueError("until lies in the past")
        self._run_until_time(stop_at)
        return None

    # The loops below are step() inlined with the stop condition
    # hoisted out of the per-event dispatch (one branch per event
    # instead of three), with the queue and heappop locally bound.
    # Each has a heap and a calendar variant; the outer ``while True``
    # re-checks the backend because an auto migration can happen inside
    # any dispatched callback (the heap variant then sees its locally
    # bound list drain to zero and falls through).

    def _run_exhaust(self) -> None:
        pool = self._pool
        while True:
            calendar = self._calendar
            if calendar is not None:
                pop = calendar.pop
                while calendar._size:
                    when, _, _, event = pop()
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    proc = event._fast_proc
                    if proc is not None:
                        event._fast_proc = None
                        proc._resume(event)
                        if not callbacks and type(event) is Timeout:
                            event.callbacks = callbacks
                            pool.append(event)
                            if len(pool) > self._pool_high:
                                self._pool_high = len(pool)
                            continue
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                return
            queue = self._queue
            pop = heapq.heappop
            while queue:
                when, _, _, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                proc = event._fast_proc
                if proc is not None:
                    event._fast_proc = None
                    proc._resume(event)
                    if not callbacks and type(event) is Timeout:
                        event.callbacks = callbacks
                        pool.append(event)
                        if len(pool) > self._pool_high:
                            self._pool_high = len(pool)
                        continue
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if self._calendar is None:
                return

    def _run_until_time(self, stop_at: float) -> None:
        pool = self._pool
        while True:
            calendar = self._calendar
            if calendar is not None:
                pop_before = calendar.pop_before
                while True:
                    entry = pop_before(stop_at)
                    if entry is None:
                        break
                    event = entry[3]
                    self._now = entry[0]
                    callbacks = event.callbacks
                    event.callbacks = None
                    proc = event._fast_proc
                    if proc is not None:
                        event._fast_proc = None
                        proc._resume(event)
                        if not callbacks and type(event) is Timeout:
                            event.callbacks = callbacks
                            pool.append(event)
                            if len(pool) > self._pool_high:
                                self._pool_high = len(pool)
                            continue
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                break
            queue = self._queue
            pop = heapq.heappop
            while queue and queue[0][0] < stop_at:
                when, _, _, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                proc = event._fast_proc
                if proc is not None:
                    event._fast_proc = None
                    proc._resume(event)
                    if not callbacks and type(event) is Timeout:
                        event.callbacks = callbacks
                        pool.append(event)
                        if len(pool) > self._pool_high:
                            self._pool_high = len(pool)
                        continue
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if self._calendar is None:
                break
        self._now = stop_at

    def _run_until_event(self, stop_event: Event) -> Any:
        while stop_event.callbacks is not None:  # not yet processed
            calendar = self._calendar
            if calendar is None:
                if not self._queue:
                    break
            elif not calendar:
                break
            self.step()
        if stop_event.callbacks is not None:
            raise SimulationError(
                "simulation ended before the awaited event fired"
            )
        if not stop_event._ok:
            raise stop_event._value
        return stop_event._value
