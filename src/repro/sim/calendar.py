"""Calendar-queue backend for the event scheduler.

A calendar queue (Brown, CACM '88) hashes events into time buckets of a
fixed *width* and pops by draining the bucket that covers the current
simulated "day".  For schedules where pending events are dense in time
— large clusters keep one pending arrival timeout per (node, class)
plus every in-flight operation — pushes are an O(1) list append and
pops amortize the sort of one small bucket, instead of paying the
heap's O(log n) tuple-comparison cascade per operation.

Entries are exactly the kernel's heap tuples, ``(time, priority, seq,
event)``.  Because ``seq`` is unique, that tuple order is *total*: any
correct priority queue pops the same schedule in the same order, so
swapping the heap for a calendar cannot change simulated behaviour.
The pop-order property test and the golden trace pin this down.

Implementation notes
--------------------
- The current bucket is drained through a sorted staging list
  (``_drain``) consumed from the front via an index (no ``pop(0)``).
  Pushes that land in the current or an earlier virtual bucket —
  events scheduled *now* during a callback — are insorted into the
  staging list's live region, which reproduces the heap's behaviour
  for same-time pushes exactly.
- Bucket membership is decided by ``int(t * inv_width)`` everywhere
  (push and drain alike), so float rounding can never strand an entry
  in a bucket the drain scan has passed.
- When the queue outgrows the bucket directory, it is rebuilt with
  twice the buckets and a width re-estimated from a sample of pending
  inter-event gaps (the classic rule of thumb: a few events per
  bucket).
- A scan that finds ``nbuckets`` consecutive empty buckets jumps
  straight to the earliest pending entry instead of walking an
  arbitrarily sparse region bucket by bucket.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional, Tuple

#: Lower bound for the estimated bucket width (ms): degenerate samples
#: (all-identical timestamps) must not produce a zero width.
_MIN_WIDTH = 1e-9

#: How many pending entries to sample when estimating the width.
_WIDTH_SAMPLE = 64


def _estimate_width(times: List[float]) -> float:
    """Bucket width from a sample of event times: ~2x the mean gap."""
    if len(times) < 2:
        return 1.0
    sample = sorted(times[:_WIDTH_SAMPLE])
    gaps = [
        b - a for a, b in zip(sample, sample[1:]) if b > a
    ]
    if not gaps:
        return 1.0
    width = 2.0 * (sum(gaps) / len(gaps))
    return width if width > _MIN_WIDTH else _MIN_WIDTH


class CalendarQueue:
    """Priority queue over ``(time, priority, seq, event)`` tuples.

    Pops in exactly the order ``heapq`` would (the tuple order is total
    — see module docstring).  Built either empty or from an existing
    list of heap entries (ownership is not taken; the list is copied).
    """

    __slots__ = ("_width", "_inv_width", "_buckets", "_nbuckets",
                 "_mask", "_size", "_cur_vb", "_drain", "_pos",
                 "_resize_at")

    def __init__(self, entries: Optional[List[tuple]] = None,
                 min_buckets: int = 256):
        # Power-of-two bucket count for mask indexing.
        nbuckets = 1
        while nbuckets < min_buckets:
            nbuckets <<= 1
        self._size = 0
        self._drain: List[tuple] = []
        self._pos = 0
        self._setup(nbuckets, 1.0, -1)
        if entries:
            self._rebuild(list(entries))

    def _setup(self, nbuckets: int, width: float, cur_vb: int) -> None:
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: List[List[tuple]] = [[] for _ in range(nbuckets)]
        self._cur_vb = cur_vb
        self._resize_at = 2 * nbuckets

    def _rebuild(self, entries: List[tuple]) -> None:
        """Re-seed buckets and width from a flat entry list."""
        nbuckets = self._nbuckets
        while len(entries) > 2 * nbuckets:
            nbuckets <<= 1
        width = _estimate_width([e[0] for e in entries])
        tmin = min(e[0] for e in entries) if entries else 0.0
        # Start one virtual bucket before the earliest entry so the
        # first advance lands on it.
        self._setup(nbuckets, width, int(tmin / width) - 1)
        del self._drain[:]
        self._pos = 0
        self._size = len(entries)
        buckets = self._buckets
        mask = self._mask
        inv = self._inv_width
        for entry in entries:
            buckets[int(entry[0] * inv) & mask].append(entry)

    def _pending_entries(self) -> List[tuple]:
        entries = self._drain[self._pos:]
        for bucket in self._buckets:
            entries.extend(bucket)
        return entries

    def push(self, entry: tuple) -> None:
        """Insert one ``(time, priority, seq, event)`` entry."""
        vb = int(entry[0] * self._inv_width)
        if vb <= self._cur_vb:
            # Lands in the bucket being drained (or an already-passed
            # one — possible right after a sparse-region jump): insort
            # into the live region of the staging list.  Everything
            # before ``_pos`` was already popped, and like the heap we
            # only promise order among *pending* entries.
            insort(self._drain, entry, self._pos)
        else:
            self._buckets[vb & self._mask].append(entry)
        self._size += 1
        if self._size > self._resize_at:
            self._rebuild(self._pending_entries())

    def _advance(self) -> None:
        """Refill ``_drain`` from the next non-empty virtual bucket.

        Caller guarantees the queue is non-empty and the staging list
        is exhausted.
        """
        del self._drain[:]
        self._pos = 0
        buckets = self._buckets
        mask = self._mask
        inv = self._inv_width
        nbuckets = self._nbuckets
        vb = self._cur_vb + 1
        scanned = 0
        while True:
            bucket = buckets[vb & mask]
            if bucket:
                take = [e for e in bucket if int(e[0] * inv) <= vb]
                if take:
                    if len(take) == len(bucket):
                        del bucket[:]
                    else:
                        buckets[vb & mask] = [
                            e for e in bucket if int(e[0] * inv) > vb
                        ]
                    take.sort()
                    self._drain = take
                    self._cur_vb = vb
                    return
            vb += 1
            scanned += 1
            if scanned >= nbuckets:
                # Sparse region: jump to the earliest pending entry.
                tmin = min(
                    e[0] for b in buckets for e in b
                )
                vb = int(tmin * inv)
                scanned = 0

    def pop(self) -> tuple:
        """Remove and return the smallest pending entry."""
        pos = self._pos
        drain = self._drain
        if pos >= len(drain):
            self._advance()
            pos = self._pos
            drain = self._drain
        entry = drain[pos]
        pos += 1
        self._size -= 1
        # Trim the consumed prefix once it dominates the staging list,
        # keeping pops amortized O(1) without per-pop slicing.
        if pos > 512 and 2 * pos > len(drain):
            del drain[:pos]
            pos = 0
        self._pos = pos
        return entry

    def pop_before(self, stop_at: float) -> Optional[tuple]:
        """Pop the smallest entry if its time is ``< stop_at``, else None."""
        if not self._size:
            return None
        pos = self._pos
        drain = self._drain
        if pos >= len(drain):
            self._advance()
            pos = self._pos
            drain = self._drain
        entry = drain[pos]
        if entry[0] >= stop_at:
            return None
        pos += 1
        self._size -= 1
        if pos > 512 and 2 * pos > len(drain):
            del drain[:pos]
            pos = 0
        self._pos = pos
        return entry

    def peek(self) -> float:
        """Time of the earliest pending entry, or ``inf`` if none."""
        if not self._size:
            return float("inf")
        if self._pos >= len(self._drain):
            self._advance()
        return self._drain[self._pos][0]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
