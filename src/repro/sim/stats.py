"""Online statistics used by agents, experiments, and reports.

Everything here is incremental (Welford's algorithm) so that agents can
track response times over long runs without storing samples, plus a
small set of batch helpers (confidence intervals, time series) for the
experiment harness.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


class OnlineStats:
    """Incremental mean / variance / extrema (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def coefficient_of_variation(self) -> float:
        """stddev / mean (0.0 when the mean is zero)."""
        return self.stddev / self.mean if self.mean else 0.0

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new OnlineStats combining both sample sets."""
        merged = OnlineStats()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = (
            self._mean * self.count + other._mean * other.count
        ) / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def reset(self) -> None:
        """Discard all samples."""
        self.__init__()


class WindowStats:
    """Per-observation-interval statistics that can be snapshot and reset.

    Agents use one of these per (class, node): samples accumulate during
    an observation interval; at the interval boundary the coordinator
    snapshots the window and the agent resets it.
    """

    __slots__ = ("window", "lifetime")

    def __init__(self):
        self.window = OnlineStats()
        self.lifetime = OnlineStats()

    def add(self, value: float) -> None:
        """Record a sample in both the window and lifetime statistics."""
        self.window.add(value)
        self.lifetime.add(value)

    def roll(self) -> OnlineStats:
        """Return the finished window and start a new one."""
        finished = self.window
        self.window = OnlineStats()
        return finished


class TimeSeries:
    """An append-only (time, value) series for plots and reports."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        """Record ``value`` at simulation time ``time``."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Tuple[float, float]:
        """Most recent (time, value) pair."""
        return self.times[-1], self.values[-1]

    def mean(self) -> float:
        """Mean of the recorded values."""
        return sum(self.values) / len(self.values) if self.values else 0.0


class P2Quantile:
    """Streaming quantile estimate (Jain & Chlamtac's P² algorithm).

    Tracks one quantile (e.g. the p95 response time) in O(1) memory
    without storing samples: five markers move along the empirical
    distribution using piecewise-parabolic interpolation.  Useful for
    tail-latency goals, which mean-based SLAs (the paper's setting)
    do not capture.
    """

    def __init__(self, quantile: float):
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        self.quantile = quantile
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []
        self.count = 0

    def add(self, value: float) -> None:
        """Fold one sample into the estimate."""
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.quantile
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0
                ]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        heights = self._heights
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (exact until 5 samples exist)."""
        if self.count == 0:
            return 0.0
        if len(self._initial) < 5 or not self._heights:
            ordered = sorted(self._initial)
            index = min(
                int(self.quantile * len(ordered)), len(ordered) - 1
            )
            return ordered[index]
        return self._heights[2]


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.99
) -> Tuple[float, float]:
    """Return (mean, half-width) of a t-based confidence interval.

    Used by the convergence experiments, which replicate until the
    half-width drops below one iteration at 99 % confidence (§7.1).
    """
    n = len(samples)
    if n == 0:
        return 0.0, math.inf
    mean = sum(samples) / n
    if n == 1:
        return mean, math.inf
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    try:
        from scipy.stats import t as t_dist

        critical = float(t_dist.ppf(0.5 + confidence / 2.0, n - 1))
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        critical = 2.576  # normal approximation at 99 %
    half_width = critical * math.sqrt(variance / n)
    return mean, half_width


def replicate_until(
    run, target_half_width: float, confidence: float = 0.99,
    min_replications: int = 3, max_replications: int = 200,
) -> Tuple[float, float, List[float]]:
    """Replicate ``run(replication_index)`` until the CI is tight enough.

    Returns (mean, half_width, samples).  ``run`` must return one scalar
    sample per call.  Mirrors the paper's protocol of repeating
    experiments until the accuracy is below 1 iteration at 99 %
    confidence.
    """
    samples: List[float] = []
    half_width = math.inf
    mean = 0.0
    while len(samples) < max_replications:
        samples.append(float(run(len(samples))))
        if len(samples) >= min_replications:
            mean, half_width = mean_confidence_interval(samples, confidence)
            if half_width <= target_half_width:
                break
    return mean, half_width, samples
