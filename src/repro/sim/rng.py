"""Reproducible named random streams.

Every stochastic component of a simulation (one arrival process per
node per class, page selection, goal randomization, ...) draws from its
own named stream so that changing one component's consumption pattern
does not perturb the others.  All streams derive deterministically from
a single experiment seed.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Sequence


class RandomStreams:
    """Factory of independent, reproducibly seeded random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 0x9E3779B9)
            stream = random.Random(derived & 0xFFFFFFFFFFFFFFFF)
            self._streams[name] = stream
        return stream

    # -- convenience draws -----------------------------------------

    def exponential(self, name: str, mean: float) -> float:
        """Draw from Exp with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw uniformly from [low, high]."""
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw an integer uniformly from [low, high] inclusive."""
        return self.stream(name).randint(low, high)

    def choice(self, name: str, items: Sequence):
        """Pick one element of ``items`` uniformly."""
        return self.stream(name).choice(items)

    def random(self, name: str) -> float:
        """Draw uniformly from [0, 1)."""
        return self.stream(name).random()
