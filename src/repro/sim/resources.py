"""Queued resources for the simulation kernel.

A :class:`Resource` models a server (or pool of servers) with a FIFO
request queue — e.g. a disk arm, a CPU, or the shared network medium.
Processes acquire it with::

    with resource.request() as req:
        yield req                      # wait for our turn
        yield env.timeout(service_ms)  # hold the resource

and release it automatically when the ``with`` block exits.
:class:`PriorityResource` additionally orders waiting requests by a
numeric priority (lower = more urgent), FIFO within equal priorities.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.sim.engine import URGENT, Environment, Event, pooled_timeout


class Request(Event):
    """A pending acquisition of a :class:`Resource`.

    Usable as a context manager; exiting the context releases the
    resource (or cancels the request if it never got the resource).
    """

    __slots__ = ("resource", "priority", "_enqueued_at")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    @property
    def wait_time(self) -> float:
        """Time between request creation and grant (valid once granted)."""
        return self.value  # the grant triggers with the wait time


class Resource:
    """A server with ``capacity`` units and a FIFO wait queue."""

    __slots__ = (
        "env", "capacity", "users", "_waiting", "_busy_since",
        "_busy_time", "_grants", "_wait_total", "_tel_wait",
    )

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self._waiting: List[Request] = []
        # Utilization accounting.
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0
        self._grants = 0
        self._wait_total = 0.0
        #: Telemetry wait histogram, or None (off by default).  Only
        #: contended grants consult it — uncontended holds have zero
        #: queueing delay by construction — so disabled telemetry costs
        #: one attribute check per *queued* grant and nothing on the
        #: fast paths.
        self._tel_wait = None

    # -- public API ------------------------------------------------

    def request(self, priority: float = 0.0) -> Request:
        """Create a request; ``yield`` it to wait for the grant."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Release a granted request (or cancel a waiting one)."""
        if request in self.users:
            self.users.remove(request)
            if not self.users and self._busy_since is not None:
                self._busy_time += self.env.now - self._busy_since
                self._busy_since = None
            self._grant_next()
        else:
            self._cancel(request)

    @property
    def count(self) -> int:
        """Number of granted (in-service) requests."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return len(self._waiting)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time at least one unit was busy."""
        elapsed = self.env.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        busy = self._busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        return busy / elapsed

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay over all grants so far."""
        return self._wait_total / self._grants if self._grants else 0.0

    def occupy(self, service: float):
        """Generator: acquire one unit, hold it ``service``, release it.

        Semantically identical to::

            with self.request() as req:
                yield req
                yield env.timeout(service)

        but when the resource is idle the whole Request/grant-event
        round trip is skipped: the holder is marked busy inline (the
        resource object itself serves as the hold token in ``users``)
        and only the service timeout is scheduled — one event instead
        of two.  Contended acquisitions fall back to the queued path
        unchanged, so FIFO ordering and wait accounting are preserved.
        """
        users = self.users
        if not self._waiting and len(users) < self.capacity:
            env = self.env
            if self._busy_since is None:
                self._busy_since = env._now
            self._grants += 1
            users.append(self)
            try:
                yield pooled_timeout(env, service)
            finally:
                users.remove(self)
                if not users and self._busy_since is not None:
                    self._busy_time += env._now - self._busy_since
                    self._busy_since = None
                if self._waiting:
                    self._grant_next()
        else:
            with self.request() as req:
                yield req
                yield pooled_timeout(self.env, service)

    def acquire_fast(self) -> bool:
        """Take one unit inline if the resource is idle (else False).

        The first half of :meth:`occupy`'s uncontended fast path as a
        plain call, for flattened hot loops that cannot afford the
        generator frame ``yield from occupy(...)`` adds to every event
        resume.  On True the caller holds the resource and **must**
        schedule its own service timeout and call :meth:`release_fast`
        (in a ``finally``); on False it must fall back to
        :meth:`occupy`.  Accounting and grant ordering are identical to
        ``occupy`` either way.
        """
        if not self._waiting and not self.users:
            if self._busy_since is None:
                self._busy_since = self.env._now
            self._grants += 1
            self.users.append(self)
            return True
        return False

    def release_fast(self) -> None:
        """Release a hold taken with :meth:`acquire_fast`."""
        users = self.users
        users.remove(self)
        if not users and self._busy_since is not None:
            self._busy_time += self.env._now - self._busy_since
            self._busy_since = None
        if self._waiting:
            self._grant_next()

    # -- internals -------------------------------------------------

    def _enqueue(self, request: Request) -> None:
        env = self.env
        users = self.users
        if not self._waiting and len(users) < self.capacity:
            # Uncontended fast path: grant synchronously, with the grant
            # event pushed exactly as ``request.succeed(0.0)`` would —
            # same heap tuple, same sequence number, so contention and
            # ordering behave identically to the queued path.
            now = env._now
            request._enqueued_at = now
            users.append(request)
            if self._busy_since is None:
                self._busy_since = now
            self._grants += 1
            request._ok = True
            request._value = 0.0
            seq = env._seq
            env._seq = seq + 1
            calendar = env._calendar
            if calendar is None:
                queue = env._queue
                heapq.heappush(queue, (now, URGENT, seq, request))
                if env._auto_at and len(queue) >= env._auto_at:
                    env._activate_calendar()
            else:
                calendar.push((now, URGENT, seq, request))
            return
        request._enqueued_at = env._now
        self._waiting.append(request)
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _pop_next(self) -> Request:
        return self._waiting.pop(0)

    def _grant_next(self) -> None:
        users = self.users
        while self._waiting and len(users) < self.capacity:
            request = self._pop_next()
            users.append(request)
            now = self.env._now
            if self._busy_since is None:
                self._busy_since = now
            waited = now - request._enqueued_at
            self._grants += 1
            self._wait_total += waited
            hist = self._tel_wait
            if hist is not None:
                hist.add(waited)
            request.succeed(waited)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority."""

    __slots__ = ("_heap", "_seq")

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: List = []
        self._seq = 0

    def _enqueue(self, request: Request) -> None:
        request._enqueued_at = self.env.now
        heapq.heappush(self._heap, (request.priority, self._seq, request))
        self._seq += 1
        self._waiting.append(request)
        self._grant_next()

    def _pop_next(self) -> Request:
        while True:
            _, _, request = heapq.heappop(self._heap)
            if request in self._waiting:
                self._waiting.remove(request)
                return request
