"""Figure 2 — the base experiment (§7.2).

Two classes (one goal, one no-goal), 4 page accesses per operation,
disjoint page sets, skew 0.  The controller runs for ~80 observation
intervals while the response time goal is re-randomized after every
four satisfied intervals (so the figure exercises many different
partitions, as in the paper).  The output is the triple of series the
paper plots: observed response time, response time goal, and total
systemwide dedicated cache.

Run standalone::

    python -m repro.experiments.figure2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.config import SystemConfig
from repro.experiments.calibration import GoalRange, calibrate_goal_range
from repro.experiments.convergence import _next_goal
from repro.experiments.reporting import format_series
from repro.experiments.runner import Simulation, default_workload


@dataclass
class Figure2Data:
    """The three series of Figure 2, indexed by observation interval."""

    intervals: List[int] = field(default_factory=list)
    observed_rt: List[float] = field(default_factory=list)
    goal: List[float] = field(default_factory=list)
    dedicated_bytes: List[float] = field(default_factory=list)
    satisfied: List[bool] = field(default_factory=list)
    goal_range: Optional[GoalRange] = None

    def satisfaction_ratio(self) -> float:
        """Fraction of intervals in which the goal was satisfied."""
        if not self.satisfied:
            return 0.0
        return sum(self.satisfied) / len(self.satisfied)

    def rt_tracks_memory(self) -> float:
        """Correlation between RT and dedicated memory (expected < 0)."""
        n = len(self.observed_rt)
        if n < 3:
            return 0.0
        xs, ys = self.dedicated_bytes, self.observed_rt
        mx = sum(xs) / n
        my = sum(ys) / n
        cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
        vx = sum((x - mx) ** 2 for x in xs)
        vy = sum((y - my) ** 2 for y in ys)
        if vx <= 0 or vy <= 0:
            return 0.0
        return cov / (vx * vy) ** 0.5

    def to_text(self) -> str:
        """Figure data as an aligned text table."""
        return format_series(
            ["interval", "observed_rt_ms", "goal_ms", "dedicated_bytes"],
            [self.intervals, self.observed_rt, self.goal,
             self.dedicated_bytes],
            title="Figure 2: response time, goal, and dedicated memory",
        )

    def to_chart(self) -> str:
        """The figure itself: RT vs. goal, plus the dedicated memory."""
        from repro.experiments.plotting import ascii_chart, overlay_chart

        top = overlay_chart(
            self.observed_rt, self.goal,
            label="observed response time (*) vs goal (o), ms",
        )
        bottom = ascii_chart(
            self.dedicated_bytes,
            height=8,
            label="total dedicated cache, bytes",
        )
        return top + "\n\n" + bottom

    def save_csv(self, path: str) -> None:
        """Export the three series as CSV."""
        from repro.experiments.plotting import series_to_csv

        series_to_csv(
            ["interval", "observed_rt_ms", "goal_ms", "dedicated_bytes"],
            [self.intervals, self.observed_rt, self.goal,
             self.dedicated_bytes],
            path=path,
        )


def run_figure2(
    seed: int = 1,
    intervals: int = 80,
    skew: float = 0.0,
    config: Optional[SystemConfig] = None,
    goal_range: Optional[GoalRange] = None,
    arrival_rate_per_node: float = 0.02,
    satisfied_before_change: int = 4,
    warmup_ms: float = 20_000.0,
    recorder=None,
    jobs: int = 1,
    faults=None,
) -> Figure2Data:
    """Run the base experiment and return the Figure 2 series.

    ``recorder`` (a :class:`~repro.workload.trace.TraceRecorder`)
    captures the generated operation stream; ``jobs`` parallelizes the
    goal-range calibration runs when no ``goal_range`` is given.
    ``faults`` (a spec string or :class:`~repro.faults.FaultSchedule`)
    injects the given fault schedule into the run.
    """
    config = config if config is not None else SystemConfig()
    workload = default_workload(
        config, skew=skew, arrival_rate_per_node=arrival_rate_per_node
    )
    if goal_range is None:
        goal_range = calibrate_goal_range(
            workload, class_id=1, config=config, seed=seed, jobs=jobs
        )
    workload = workload.with_goal(
        1, 0.5 * (goal_range.goal_min_ms + goal_range.goal_max_ms)
    )
    sim = Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=warmup_ms,
        recorder=recorder, faults=faults,
    )
    rng = sim.cluster.rng.stream("figure2/goals")
    state = {"satisfied_run": 0}

    def goal_changer(controller, interval_index):
        if controller.series[1].satisfied[-1]:
            state["satisfied_run"] += 1
        if state["satisfied_run"] >= satisfied_before_change:
            state["satisfied_run"] = 0
            new_goal = _next_goal(
                rng, goal_range, controller.goal_of(1), 0.25
            )
            controller.set_goal(1, new_goal)

    sim.controller.on_interval(goal_changer)
    sim.run(intervals=intervals)

    series = sim.controller.series[1]
    data = Figure2Data(goal_range=goal_range)
    n = len(series.goal.values)
    for i in range(n):
        data.intervals.append(i + 1)
        data.observed_rt.append(
            series.observed_rt.values[i]
            if i < len(series.observed_rt.values) else float("nan")
        )
        data.goal.append(series.goal.values[i])
        data.dedicated_bytes.append(series.dedicated_bytes.values[i])
        data.satisfied.append(series.satisfied[i])
    return data


def main() -> None:
    """CLI entry point: print the Figure 2 series."""
    data = run_figure2()
    print(data.to_text())
    print()
    print(f"goal range: [{data.goal_range.goal_min_ms:.2f}, "
          f"{data.goal_range.goal_max_ms:.2f}] ms")
    print(f"satisfaction ratio: {data.satisfaction_ratio():.2f}")
    print(f"corr(RT, dedicated memory): {data.rt_tracks_memory():.2f}")


if __name__ == "__main__":
    main()
