"""Figure 2 — the base experiment (§7.2).

Two classes (one goal, one no-goal), 4 page accesses per operation,
disjoint page sets, skew 0.  The controller runs for ~80 observation
intervals while the response time goal is re-randomized after every
four satisfied intervals (so the figure exercises many different
partitions, as in the paper).  The output is the triple of series the
paper plots: observed response time, response time goal, and total
systemwide dedicated cache.

Run standalone::

    python -m repro.experiments.figure2
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.config import SystemConfig
from repro.experiments.calibration import GoalRange, calibrate_goal_range
from repro.experiments.convergence import _next_goal
from repro.experiments.reporting import emit, format_series, format_table
from repro.experiments.runner import (
    DEFAULT_WARMUP_MS,
    Simulation,
    default_workload,
)


@dataclass
class Figure2Data:
    """The three series of Figure 2, indexed by observation interval."""

    intervals: List[int] = field(default_factory=list)
    observed_rt: List[float] = field(default_factory=list)
    goal: List[float] = field(default_factory=list)
    dedicated_bytes: List[float] = field(default_factory=list)
    satisfied: List[bool] = field(default_factory=list)
    goal_range: Optional[GoalRange] = None
    #: Streaming p95 of the goal class's response times over the
    #: measured horizon (P² estimate; None before any completion).
    p95_rt_ms: Optional[float] = None
    #: Extended {quantile: response_ms} (p50/p90/p95/p99) — populated
    #: only when telemetry was attached (the existing flag), None
    #: otherwise so untraced outputs are unchanged.
    quantiles: Optional[Dict[float, float]] = None

    def satisfaction_ratio(self) -> float:
        """Fraction of intervals in which the goal was satisfied."""
        if not self.satisfied:
            return 0.0
        return sum(self.satisfied) / len(self.satisfied)

    def quantiles_text(self) -> Optional[str]:
        """One-line p50/p90/p95/p99 summary, or None when untracked."""
        if not self.quantiles:
            return None
        parts = ", ".join(
            f"p{q * 100:g}={ms:.2f}"
            for q, ms in sorted(self.quantiles.items())
        )
        return f"response time quantiles (ms): {parts}"

    def rt_tracks_memory(self) -> float:
        """Correlation between RT and dedicated memory (expected < 0)."""
        n = len(self.observed_rt)
        if n < 3:
            return 0.0
        xs, ys = self.dedicated_bytes, self.observed_rt
        mx = sum(xs) / n
        my = sum(ys) / n
        cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
        vx = sum((x - mx) ** 2 for x in xs)
        vy = sum((y - my) ** 2 for y in ys)
        if vx <= 0 or vy <= 0:
            return 0.0
        return cov / (vx * vy) ** 0.5

    def to_text(self) -> str:
        """Figure data as an aligned text table."""
        return format_series(
            ["interval", "observed_rt_ms", "goal_ms", "dedicated_bytes"],
            [self.intervals, self.observed_rt, self.goal,
             self.dedicated_bytes],
            title="Figure 2: response time, goal, and dedicated memory",
        )

    def to_chart(self) -> str:
        """The figure itself: RT vs. goal, plus the dedicated memory."""
        from repro.experiments.plotting import ascii_chart, overlay_chart

        top = overlay_chart(
            self.observed_rt, self.goal,
            label="observed response time (*) vs goal (o), ms",
        )
        bottom = ascii_chart(
            self.dedicated_bytes,
            height=8,
            label="total dedicated cache, bytes",
        )
        return top + "\n\n" + bottom

    def save_csv(self, path: str) -> None:
        """Export the three series as CSV."""
        from repro.experiments.plotting import series_to_csv

        series_to_csv(
            ["interval", "observed_rt_ms", "goal_ms", "dedicated_bytes"],
            [self.intervals, self.observed_rt, self.goal,
             self.dedicated_bytes],
            path=path,
        )


def run_figure2(
    seed: int = 1,
    intervals: int = 80,
    skew: float = 0.0,
    config: Optional[SystemConfig] = None,
    goal_range: Optional[GoalRange] = None,
    arrival_rate_per_node: float = 0.02,
    satisfied_before_change: int = 4,
    warmup_ms: float = DEFAULT_WARMUP_MS,
    recorder=None,
    jobs: int = 1,
    faults=None,
    telemetry=None,
) -> Figure2Data:
    """Run the base experiment and return the Figure 2 series.

    ``recorder`` (a :class:`~repro.workload.trace.TraceRecorder`)
    captures the generated operation stream; ``jobs`` parallelizes the
    goal-range calibration runs when no ``goal_range`` is given.
    ``faults`` (a spec string or :class:`~repro.faults.FaultSchedule`)
    injects the given fault schedule into the run.  ``telemetry`` (a
    directory path) arms the telemetry pipeline and exports its
    artifacts there after the run.
    """
    config = config if config is not None else SystemConfig()
    workload = default_workload(
        config, skew=skew, arrival_rate_per_node=arrival_rate_per_node
    )
    if goal_range is None:
        goal_range = calibrate_goal_range(
            workload, class_id=1, config=config, seed=seed, jobs=jobs
        )
    workload = workload.with_goal(
        1, 0.5 * (goal_range.goal_min_ms + goal_range.goal_max_ms)
    )
    sim = Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=warmup_ms,
        recorder=recorder, faults=faults, telemetry=telemetry,
    )
    rng = sim.cluster.rng.stream("figure2/goals")
    state = {"satisfied_run": 0}

    def goal_changer(controller, interval_index):
        if controller.series[1].satisfied[-1]:
            state["satisfied_run"] += 1
        if state["satisfied_run"] >= satisfied_before_change:
            state["satisfied_run"] = 0
            new_goal = _next_goal(
                rng, goal_range, controller.goal_of(1), 0.25
            )
            controller.set_goal(1, new_goal)

    sim.controller.on_interval(goal_changer)
    sim.run(intervals=intervals)

    series = sim.controller.series[1]
    data = Figure2Data(goal_range=goal_range)
    n = len(series.goal.values)
    for i in range(n):
        data.intervals.append(i + 1)
        data.observed_rt.append(
            series.observed_rt.values[i]
            if i < len(series.observed_rt.values) else float("nan")
        )
        data.goal.append(series.goal.values[i])
        data.dedicated_bytes.append(series.dedicated_bytes.values[i])
        data.satisfied.append(series.satisfied[i])
    if sim.controller.class_p95[1].count:
        data.p95_rt_ms = sim.controller.p95_response_ms(1)
    data.quantiles = sim.controller.response_quantiles(1)
    sim.export_telemetry()
    return data


# -- the goal sweep ---------------------------------------------------


@dataclass
class GoalPoint:
    """Steady-state outcome of the base experiment at one fixed goal."""

    goal_ms: float
    seed: int
    observed_rt: List[Optional[float]] = field(default_factory=list)
    goal: List[float] = field(default_factory=list)
    dedicated_bytes: List[float] = field(default_factory=list)
    satisfied: List[bool] = field(default_factory=list)
    #: Streaming p95 of the goal class's response times (P² estimate).
    p95_rt_ms: float = 0.0
    #: Extended {quantile: response_ms}; None when the point ran
    #: without telemetry (keeps untraced sweep tables unchanged).
    quantiles: Optional[Dict[float, float]] = None

    def satisfaction_ratio(self) -> float:
        """Fraction of intervals in which the goal was satisfied."""
        if not self.satisfied:
            return 0.0
        return sum(self.satisfied) / len(self.satisfied)

    def mean_observed_rt(self) -> float:
        """Mean observed RT over intervals with completions."""
        values = [rt for rt in self.observed_rt if rt is not None]
        return sum(values) / len(values) if values else 0.0

    def mean_dedicated_bytes(self) -> float:
        """Mean systemwide dedicated cache over the run."""
        if not self.dedicated_bytes:
            return 0.0
        return sum(self.dedicated_bytes) / len(self.dedicated_bytes)


@dataclass
class GoalSweepData:
    """A sweep of the base experiment over fixed response time goals."""

    goal_range: Optional[GoalRange]
    runner: str
    points: List[GoalPoint] = field(default_factory=list)
    #: The analytic pre-screening report when ``prescreen`` was used
    #: (a :class:`repro.analytic.frontier.PrescreenReport`), else None.
    prescreen: Optional[object] = None

    def to_text(self) -> str:
        """Render the sweep as an aligned text table.

        When points carry extended quantiles (telemetry-attached
        sweeps) the table grows p50/p90/p99 columns; untraced sweeps
        keep the original six columns.
        """
        extended = any(p.quantiles for p in self.points)
        rows = []
        for p in self.points:
            row = [
                p.seed,
                round(p.goal_ms, 3),
                round(p.satisfaction_ratio(), 3),
                round(p.mean_observed_rt(), 3),
                round(p.p95_rt_ms, 3),
            ]
            if extended:
                q = p.quantiles or {}
                row.extend(
                    round(q[key], 3) if key in q else "-"
                    for key in (0.5, 0.9, 0.99)
                )
            row.append(int(p.mean_dedicated_bytes()))
            rows.append(row)
        header = ["seed", "goal_ms", "satisfied", "mean_rt_ms",
                  "p95_rt_ms"]
        if extended:
            header += ["p50_rt_ms", "p90_rt_ms", "p99_rt_ms"]
        header.append("mean dedicated (B)")
        return format_table(
            header,
            rows,
            title=f"Figure 2 goal sweep ({self.runner} runner)",
        )


def _summarize_goal_point(sim: Simulation, intervals: int) -> GoalPoint:
    """Run the measured horizon and extract one sweep point's series."""
    sim.run(intervals=intervals)
    series = sim.controller.series[1]
    point = GoalPoint(
        goal_ms=sim.controller.goal_of(1), seed=sim.cluster.rng.seed,
        p95_rt_ms=sim.controller.p95_response_ms(1),
        quantiles=sim.controller.response_quantiles(1),
    )
    observed = series.observed_rt.values
    for i in range(len(series.goal.values)):
        point.observed_rt.append(
            observed[i] if i < len(observed) else None
        )
        point.goal.append(series.goal.values[i])
        point.dedicated_bytes.append(series.dedicated_bytes.values[i])
        point.satisfied.append(series.satisfied[i])
    sim.export_telemetry()
    return point


def _cold_goal_point_task(task) -> GoalPoint:
    """One cold sweep point (module-level: picklable for ``jobs>1``)."""
    (config, skew, arrival_rate_per_node, goal_ms, seed, warmup_ms,
     intervals, telemetry) = task
    workload = default_workload(
        config, goal_ms=goal_ms, skew=skew,
        arrival_rate_per_node=arrival_rate_per_node,
    )
    sim = Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=warmup_ms,
        telemetry=telemetry,
    )
    return _summarize_goal_point(sim, intervals)


def _build_sweep_sim(
    config: SystemConfig,
    skew: float,
    arrival_rate_per_node: float,
    base_goal_ms: float,
    seed: int,
    warmup_ms: float,
) -> Simulation:
    """Parent simulation of one warm group (module-level for clarity)."""
    workload = default_workload(
        config, goal_ms=base_goal_ms, skew=skew,
        arrival_rate_per_node=arrival_rate_per_node,
    )
    return Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=warmup_ms
    )


def sweep_goals(goal_range: GoalRange, points: int) -> List[float]:
    """``points`` goals evenly spaced across the calibrated range."""
    if points < 1:
        raise ValueError("need at least one sweep point")
    low, high = goal_range.goal_min_ms, goal_range.goal_max_ms
    if points == 1:
        return [0.5 * (low + high)]
    step = (high - low) / (points - 1)
    return [low + i * step for i in range(points)]


def run_goal_sweep(
    goals: Optional[Sequence[float]] = None,
    points: int = 8,
    seed: int = 1,
    replicates: int = 1,
    intervals: int = 40,
    skew: float = 0.0,
    config: Optional[SystemConfig] = None,
    goal_range: Optional[GoalRange] = None,
    arrival_rate_per_node: float = 0.02,
    warmup_ms: float = DEFAULT_WARMUP_MS,
    jobs: int = 1,
    runner: str = "auto",
    telemetry: Optional[str] = None,
    prescreen: Optional[int] = None,
) -> GoalSweepData:
    """Sweep the base experiment over fixed response time goals.

    Every sweep point runs the §7.2 setup to ``intervals`` observation
    intervals under one *fixed* goal.  The goal only reaches the
    coordinator — never the workload or the caches — so all points of a
    replicate share one warm-up trajectory, and the warm-state fork
    server (:mod:`repro.experiments.forkserver`) warms each replicate
    **once** and forks the points from the warmed image; results are
    bit-identical to the cold per-point path, which ``runner='cold'``
    (or any platform without ``os.fork``) still runs via
    :func:`~repro.experiments.parallel.run_tasks`.  ``goals`` defaults
    to ``points`` goals evenly spaced across the calibrated range.
    ``telemetry`` (a directory path) exports per-point telemetry to
    ``<dir>/rep<r>-goal<g>/`` and a merged trace at the top level; the
    point directories are named by replicate and goal index, so fork
    and cold runners produce identical artifact trees.

    ``prescreen`` arms the analytic fast path
    (:func:`repro.analytic.frontier.prescreen_goals`): the goal grid is
    densified to ``prescreen`` points (when ``goals`` is not given),
    classified analytically in milliseconds, and only the feasibility
    frontier — regime boundaries, endpoints, binding-regime
    representatives — is simulated.  Each sweep point is an independent
    simulation keyed by (config, seed, goal), so the simulated subset
    is bit-identical to the same points of an unscreened sweep.  The
    report lands on :attr:`GoalSweepData.prescreen` and, with
    ``telemetry``, as a ``prescreen`` record in the merged trace.
    """
    from repro.experiments import forkserver
    from repro.experiments.parallel import derive_replicate_seed, run_tasks

    config = config if config is not None else SystemConfig()
    if goal_range is None:
        workload = default_workload(
            config, skew=skew,
            arrival_rate_per_node=arrival_rate_per_node,
        )
        goal_range = calibrate_goal_range(
            workload, class_id=1, config=config, seed=seed, jobs=jobs
        )
    if goals is None:
        goals = sweep_goals(
            goal_range, prescreen if prescreen else points
        )
    goals = list(goals)
    prescreen_report = None
    if prescreen:
        from repro.analytic.frontier import prescreen_goals

        prescreen_report = prescreen_goals(
            config,
            default_workload(
                config, skew=skew,
                arrival_rate_per_node=arrival_rate_per_node,
            ),
            goals,
        )
        goals = prescreen_report.selected_goals()
    seeds = [derive_replicate_seed(seed, i) for i in range(replicates)]

    deltas = [
        forkserver.WarmDelta.for_goals({1: goal_ms}) for goal_ms in goals
    ]
    warm_keys = [s for s in seeds for _ in goals]
    mode = forkserver.plan_sweep(runner, warm_keys, deltas * len(seeds))
    data = GoalSweepData(
        goal_range=goal_range, runner=mode, prescreen=prescreen_report
    )

    def point_dir(rep: int, goal_index: int) -> Optional[str]:
        if telemetry is None:
            return None
        return os.path.join(telemetry, f"rep{rep}-goal{goal_index}")

    if mode == "fork":
        groups = [
            forkserver.WarmGroup(
                build=functools.partial(
                    _build_sweep_sim, config, skew,
                    arrival_rate_per_node, goals[0], rep_seed, warmup_ms,
                ),
                deltas=[
                    forkserver.telemetry_delta(delta, point_dir(rep, g))
                    if telemetry is not None else delta
                    for g, delta in enumerate(deltas)
                ],
                measure=functools.partial(
                    _summarize_goal_point, intervals=intervals
                ),
            )
            for rep, rep_seed in enumerate(seeds)
        ]
        for group_points in forkserver.run_warm_groups(
            groups, jobs=jobs, runner="fork"
        ):
            data.points.extend(group_points)
    else:
        tasks = [
            (config, skew, arrival_rate_per_node, goal_ms, rep_seed,
             warmup_ms, intervals, point_dir(rep, g))
            for rep, rep_seed in enumerate(seeds)
            for g, goal_ms in enumerate(goals)
        ]
        data.points.extend(
            run_tasks(_cold_goal_point_task, tasks, jobs=jobs)
        )
    if telemetry is not None:
        from repro.telemetry.exporters import merge_point_dirs

        merge_point_dirs(
            telemetry,
            [
                (f"rep{rep}-goal{g}", point_dir(rep, g))
                for rep in range(len(seeds))
                for g in range(len(goals))
            ],
        )
        if prescreen_report is not None:
            from repro.telemetry.exporters import append_trace_records
            from repro.telemetry.trace import TraceLog

            log = TraceLog()
            log.emit(
                "prescreen", 0.0, **prescreen_report.trace_fields()
            )
            append_trace_records(telemetry, log.records)
    return data


def main() -> None:
    """CLI entry point: print the Figure 2 series."""
    data = run_figure2()
    emit(data.to_text())
    emit()
    emit(f"goal range: [{data.goal_range.goal_min_ms:.2f}, "
         f"{data.goal_range.goal_max_ms:.2f}] ms")
    emit(f"satisfaction ratio: {data.satisfaction_ratio():.2f}")
    if data.p95_rt_ms is not None:
        emit(f"p95 response time: {data.p95_rt_ms:.2f} ms")
    if data.quantiles_text() is not None:
        emit(data.quantiles_text())
    emit(f"corr(RT, dedicated memory): {data.rt_tracks_memory():.2f}")


if __name__ == "__main__":
    main()
