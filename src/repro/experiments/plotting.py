"""Terminal-friendly rendering and export of experiment series.

The paper's Figure 2 is a line plot; this module renders the same
series as an ASCII chart (no plotting dependencies) and exports series
data as CSV/JSON for external tooling.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence


def ascii_chart(
    values: Sequence[float],
    width: int = 72,
    height: int = 16,
    label: str = "",
) -> str:
    """Render one series as an ASCII line chart.

    Values are binned to ``width`` columns (mean per bin) and scaled to
    ``height`` rows; the y-axis shows min/max ticks.
    """
    if width < 8 or height < 3:
        raise ValueError("chart too small")
    data = [float(v) for v in values]
    if not data:
        return "(empty series)"
    # Bin to the requested width.
    if len(data) > width:
        binned = []
        per_bin = len(data) / width
        for i in range(width):
            lo = int(i * per_bin)
            hi = max(int((i + 1) * per_bin), lo + 1)
            chunk = data[lo:hi]
            binned.append(sum(chunk) / len(chunk))
        data = binned
    low = min(data)
    high = max(data)
    span = high - low or 1.0
    rows = [[" "] * len(data) for _ in range(height)]
    for x, value in enumerate(data):
        y = int(round((value - low) / span * (height - 1)))
        rows[height - 1 - y][x] = "*"
    lines = []
    if label:
        lines.append(label)
    for i, row in enumerate(rows):
        if i == 0:
            tick = f"{high:10.2f} |"
        elif i == height - 1:
            tick = f"{low:10.2f} |"
        else:
            tick = " " * 10 + " |"
        lines.append(tick + "".join(row))
    lines.append(" " * 10 + " +" + "-" * len(data))
    return "\n".join(lines)


def overlay_chart(
    primary: Sequence[float],
    secondary: Sequence[float],
    width: int = 72,
    height: int = 16,
    label: str = "",
    marks: str = "*o",
) -> str:
    """Two series on a shared y-axis (e.g. observed RT vs. goal)."""
    if len(marks) != 2:
        raise ValueError("need exactly two mark characters")
    series = [list(map(float, primary)), list(map(float, secondary))]
    flat = [v for s in series for v in s]
    if not flat:
        return "(empty series)"
    low, high = min(flat), max(flat)
    span = high - low or 1.0
    n = max(len(s) for s in series)
    columns = min(width, n)
    grid = [[" "] * columns for _ in range(height)]
    for mark, data in zip(marks, series):
        if not data:
            continue
        for x in range(columns):
            index = int(x * len(data) / columns)
            value = data[index]
            y = int(round((value - low) / span * (height - 1)))
            grid[height - 1 - y][x] = mark
    lines = []
    if label:
        lines.append(label)
    for i, row in enumerate(grid):
        if i == 0:
            tick = f"{high:10.2f} |"
        elif i == height - 1:
            tick = f"{low:10.2f} |"
        else:
            tick = " " * 10 + " |"
        lines.append(tick + "".join(row))
    lines.append(" " * 10 + " +" + "-" * columns)
    lines.append(
        " " * 12 + f"{marks[0]} = primary, {marks[1]} = secondary"
    )
    return "\n".join(lines)


def series_to_csv(
    headers: Sequence[str],
    columns: Sequence[Sequence],
    path: Optional[str] = None,
) -> str:
    """Serialize parallel columns as CSV; optionally write to ``path``."""
    if len(headers) != len(columns):
        raise ValueError("one header per column required")
    lines = [",".join(headers)]
    for row in zip(*columns):
        lines.append(",".join(str(cell) for cell in row))
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def series_to_json(
    headers: Sequence[str],
    columns: Sequence[Sequence],
    path: Optional[str] = None,
) -> str:
    """Serialize parallel columns as a JSON object of arrays."""
    if len(headers) != len(columns):
        raise ValueError("one header per column required")
    payload = {
        header: list(column)
        for header, column in zip(headers, columns)
    }
    text = json.dumps(payload, indent=2)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
