"""Section 7.4 — multiple goal classes, disjoint and shared page sets.

Setup per the paper: two goal classes k1, k2 with
``RT_goal(k1) < RT_goal(k2)`` plus the no-goal class, and **twice** the
cache memory per node.

(a) With *disjoint* page sets, memory dedicated to one class does not
    influence the other, so the convergence speed matches the base
    experiment (Table 2).

(b) With increasing *data sharing* between the classes, class k2
    profits from the dedicated buffer of class k1 (whose goal is
    tighter, hence its buffer larger): the memory dedicated to k2
    shrinks gradually and eventually disappears, while k2 still meets
    its goal purely through k1's buffers — the Example 2 effect of §3.

Run standalone::

    python -m repro.experiments.multiclass
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import NodeParameters, SystemConfig
from repro.experiments.parallel import run_tasks
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import DEFAULT_WARMUP_MS, Simulation
from repro.workload.spec import (
    ClassSpec,
    WorkloadSpec,
    partition_pages,
    shared_pages,
)


def doubled_cache_config(base: Optional[SystemConfig] = None) -> SystemConfig:
    """The §7.4 system: twice the cache memory at each node."""
    base = base if base is not None else SystemConfig()
    return replace(
        base, node=NodeParameters(buffer_bytes=2 * base.node.buffer_bytes)
    )


def multiclass_workload(
    config: SystemConfig,
    goal1_ms: float,
    goal2_ms: float,
    sharing: float = 0.0,
    skew: float = 0.0,
    arrival_rate_per_node: float = 0.02,
) -> WorkloadSpec:
    """Two goal classes + no-goal class; k2 shares ``sharing`` of k1's pages."""
    if goal1_ms >= goal2_ms:
        raise ValueError("the paper requires goal(k1) < goal(k2)")
    set1, set2, set0 = partition_pages(config.num_pages, 3)
    pages2 = shared_pages(set1, set2, sharing)
    common = dict(
        skew=skew,
        pages_per_op=4,
        arrival_rate_per_node=arrival_rate_per_node,
    )
    return WorkloadSpec(
        classes=[
            ClassSpec(class_id=0, goal_ms=None, pages=set0,
                      name="no-goal", **common),
            ClassSpec(class_id=1, goal_ms=goal1_ms, pages=tuple(set1),
                      name="k1", **common),
            ClassSpec(class_id=2, goal_ms=goal2_ms, pages=pages2,
                      name="k2", **common),
        ]
    )


@dataclass
class SharingPoint:
    """Steady-state outcome for one sharing fraction."""

    sharing: float
    dedicated_k1_bytes: float
    dedicated_k2_bytes: float
    satisfied_k1: float
    satisfied_k2: float
    observed_rt_k1: float
    observed_rt_k2: float
    #: Fraction of tail intervals with RT <= goal (one-sided — the
    #: §7.4 sense of "exceeds its goal": being *faster* counts).
    goal_met_k1: float = 0.0
    goal_met_k2: float = 0.0
    #: Streaming p95 response times over the measured horizon (P²).
    p95_rt_k1: float = 0.0
    p95_rt_k2: float = 0.0
    #: Extended {quantile: response_ms} per class; None when the point
    #: ran without telemetry (keeps untraced tables unchanged).
    quantiles_k1: Optional[Dict[float, float]] = None
    quantiles_k2: Optional[Dict[float, float]] = None


@dataclass
class MulticlassResult:
    """The §7.4 sharing sweep."""

    points: List[SharingPoint] = field(default_factory=list)

    def k2_dedicated_decreases(self) -> bool:
        """Does k2's dedicated memory shrink as sharing rises?"""
        if len(self.points) < 2:
            return False
        return (
            self.points[-1].dedicated_k2_bytes
            < self.points[0].dedicated_k2_bytes
        )

    def to_text(self) -> str:
        """Render the sweep as an aligned text table.

        Telemetry-attached runs carry extended quantiles and grow
        p99 columns per class; untraced runs keep the original table.
        """
        extended = any(
            p.quantiles_k1 or p.quantiles_k2 for p in self.points
        )
        rows = []
        for p in self.points:
            row = [
                p.sharing,
                int(p.dedicated_k1_bytes),
                int(p.dedicated_k2_bytes),
                p.goal_met_k1,
                p.goal_met_k2,
                p.observed_rt_k1,
                p.observed_rt_k2,
                p.p95_rt_k1,
                p.p95_rt_k2,
            ]
            if extended:
                for q in (p.quantiles_k1, p.quantiles_k2):
                    row.append(
                        round(q[0.99], 3) if q and 0.99 in q else "-"
                    )
            rows.append(row)
        header = ["sharing", "dedicated k1 (B)", "dedicated k2 (B)",
                  "goal met k1", "goal met k2", "rt k1 (ms)",
                  "rt k2 (ms)", "p95 k1 (ms)", "p95 k2 (ms)"]
        if extended:
            header += ["p99 k1 (ms)", "p99 k2 (ms)"]
        return format_table(
            header,
            rows,
            title="Section 7.4: data sharing between goal classes",
        )


def run_sharing_point(
    sharing: float,
    goal1_ms: float = 4.0,
    goal2_ms: float = 10.0,
    seed: int = 7,
    intervals: int = 60,
    tail: int = 20,
    config: Optional[SystemConfig] = None,
    skew: float = 0.0,
    warmup_ms: float = DEFAULT_WARMUP_MS,
    telemetry: Optional[str] = None,
) -> SharingPoint:
    """Run one sharing fraction to steady state and summarize the tail."""
    config = (
        doubled_cache_config() if config is None else config
    )
    workload = multiclass_workload(
        config, goal1_ms, goal2_ms, sharing=sharing, skew=skew
    )
    sim = Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=warmup_ms,
        telemetry=telemetry,
    )
    return _summarize_sharing_point(
        sim, sharing=sharing, intervals=intervals, tail=tail
    )


def _summarize_sharing_point(
    sim: Simulation, sharing: float, intervals: int, tail: int
) -> SharingPoint:
    """Run the measured horizon and summarize the tail of one point."""
    sim.run(intervals=intervals)

    def tail_mean(values: Sequence[float]) -> float:
        window = list(values)[-tail:]
        return sum(window) / len(window) if window else 0.0

    s1 = sim.controller.series[1]
    s2 = sim.controller.series[2]
    goal1_ms = sim.controller.goal_of(1)
    goal2_ms = sim.controller.goal_of(2)

    def goal_met(series, goal_ms):
        flags = [
            1.0 if rt <= goal_ms * 1.1 else 0.0
            for rt in series.observed_rt.values
        ]
        return tail_mean(flags)

    point = SharingPoint(
        sharing=sharing,
        dedicated_k1_bytes=tail_mean(s1.dedicated_bytes.values),
        dedicated_k2_bytes=tail_mean(s2.dedicated_bytes.values),
        satisfied_k1=tail_mean([float(x) for x in s1.satisfied]),
        satisfied_k2=tail_mean([float(x) for x in s2.satisfied]),
        observed_rt_k1=tail_mean(s1.observed_rt.values),
        observed_rt_k2=tail_mean(s2.observed_rt.values),
        goal_met_k1=goal_met(s1, goal1_ms),
        goal_met_k2=goal_met(s2, goal2_ms),
        p95_rt_k1=sim.controller.p95_response_ms(1),
        p95_rt_k2=sim.controller.p95_response_ms(2),
        quantiles_k1=sim.controller.response_quantiles(1),
        quantiles_k2=sim.controller.response_quantiles(2),
    )
    sim.export_telemetry()
    return point


def _sharing_point_task(task) -> SharingPoint:
    """Unpack one ``(sharing, kwargs)`` task (picklable for ``jobs>1``)."""
    sharing, kwargs = task
    return run_sharing_point(sharing, **kwargs)


def run_sharing_sweep(
    sharings: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    jobs: int = 1,
    runner: str = "auto",
    telemetry: Optional[str] = None,
    **kwargs,
) -> MulticlassResult:
    """The full §7.4(b) sweep over sharing fractions.

    The sharing fraction reshapes k2's page set, which feeds the
    workload generator *during warm-up* — so sharing points never share
    warm state and the fork-server planner
    (:func:`repro.experiments.forkserver.plan_sweep`) always resolves
    this sweep to the cold per-point path: independent simulations
    farmed to worker processes by ``jobs``, in ``sharings`` order.
    (Contrast :func:`run_goal_sweep`, whose points fork off one warmed
    image.)  ``runner='fork'`` therefore raises; pass ``'auto'``.
    """
    from repro.experiments.forkserver import plan_sweep

    # One distinct warm key per sharing fraction: the plan documents
    # (and enforces) that there is nothing to amortize here.
    plan_sweep(runner, warm_keys=list(sharings))
    labels = [f"share{sharing:g}" for sharing in sharings]
    tasks = []
    for sharing, label in zip(sharings, labels):
        point_kwargs = dict(kwargs)
        if telemetry is not None:
            point_kwargs["telemetry"] = os.path.join(telemetry, label)
        tasks.append((sharing, point_kwargs))
    result = MulticlassResult()
    result.points.extend(run_tasks(_sharing_point_task, tasks, jobs=jobs))
    if telemetry is not None:
        from repro.telemetry.exporters import merge_point_dirs

        merge_point_dirs(
            telemetry,
            [(label, os.path.join(telemetry, label)) for label in labels],
        )
    return result


# -- the goal-pair sweep ----------------------------------------------


@dataclass
class GoalPairPoint:
    """Steady-state outcome for one (goal k1, goal k2) pair."""

    goal1_ms: float
    goal2_ms: float
    point: SharingPoint

    def to_row(self, extended: bool = False) -> list:
        """The point as one row of the sweep table.

        ``extended`` appends the telemetry-tracked p99 per class
        (``"-"`` for points that ran untracked).
        """
        p = self.point
        row = [
            self.goal1_ms,
            self.goal2_ms,
            int(p.dedicated_k1_bytes),
            int(p.dedicated_k2_bytes),
            p.goal_met_k1,
            p.goal_met_k2,
            p.observed_rt_k1,
            p.observed_rt_k2,
            p.p95_rt_k1,
            p.p95_rt_k2,
        ]
        if extended:
            for q in (p.quantiles_k1, p.quantiles_k2):
                row.append(round(q[0.99], 3) if q and 0.99 in q else "-")
        return row


@dataclass
class MulticlassGoalSweep:
    """A sweep over goal pairs at a fixed sharing fraction."""

    sharing: float
    runner: str
    points: List[GoalPairPoint] = field(default_factory=list)
    #: The analytic pre-screening report when ``prescreen`` was used
    #: (a :class:`repro.analytic.frontier.PairPrescreenReport`).
    prescreen: Optional[object] = None

    def to_text(self) -> str:
        """Render the sweep as an aligned text table.

        Telemetry-attached sweeps grow per-class p99 columns.
        """
        extended = any(
            p.point.quantiles_k1 or p.point.quantiles_k2
            for p in self.points
        )
        header = ["goal k1 (ms)", "goal k2 (ms)", "dedicated k1 (B)",
                  "dedicated k2 (B)", "goal met k1", "goal met k2",
                  "rt k1 (ms)", "rt k2 (ms)", "p95 k1 (ms)",
                  "p95 k2 (ms)"]
        if extended:
            header += ["p99 k1 (ms)", "p99 k2 (ms)"]
        return format_table(
            header,
            [p.to_row(extended) for p in self.points],
            title=(
                f"Section 7.4 goal-pair sweep (sharing "
                f"{self.sharing:.2f}, {self.runner} runner)"
            ),
        )


def _build_goal_pair_sim(
    config: SystemConfig,
    goal1_ms: float,
    goal2_ms: float,
    sharing: float,
    skew: float,
    seed: int,
    warmup_ms: float,
) -> Simulation:
    workload = multiclass_workload(
        config, goal1_ms, goal2_ms, sharing=sharing, skew=skew
    )
    return Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=warmup_ms
    )


def _measure_goal_pair(
    sim: Simulation, sharing: float, intervals: int, tail: int
) -> GoalPairPoint:
    point = _summarize_sharing_point(
        sim, sharing=sharing, intervals=intervals, tail=tail
    )
    return GoalPairPoint(
        goal1_ms=sim.controller.goal_of(1),
        goal2_ms=sim.controller.goal_of(2),
        point=point,
    )


def _cold_goal_pair_task(task) -> GoalPairPoint:
    """One cold goal pair (module-level: picklable for ``jobs>1``)."""
    (config, goal1_ms, goal2_ms, sharing, skew, seed, warmup_ms,
     intervals, tail, telemetry) = task
    sim = _build_goal_pair_sim(
        config, goal1_ms, goal2_ms, sharing, skew, seed, warmup_ms
    )
    sim.warm()
    if telemetry is not None:
        sim.set_telemetry(telemetry)
    return _measure_goal_pair(
        sim, sharing=sharing, intervals=intervals, tail=tail
    )


def run_goal_sweep(
    goal_pairs: Sequence[Tuple[float, float]] = (
        (3.0, 8.0), (4.0, 10.0), (5.0, 12.0), (6.0, 14.0),
    ),
    sharing: float = 0.0,
    seed: int = 7,
    intervals: int = 60,
    tail: int = 20,
    config: Optional[SystemConfig] = None,
    skew: float = 0.0,
    warmup_ms: float = DEFAULT_WARMUP_MS,
    jobs: int = 1,
    runner: str = "auto",
    telemetry: Optional[str] = None,
    prescreen: Optional[int] = None,
) -> MulticlassGoalSweep:
    """Sweep the §7.4 system over (goal k1, goal k2) pairs.

    Goals feed only the coordinators, never the warm-up, so every pair
    shares one warmed simulation: the fork server warms once per sweep
    and forks the pairs from the warmed image (``runner='cold'`` and
    non-fork platforms run independent per-pair simulations instead —
    bit-identical results either way).

    ``prescreen`` arms the analytic fast path: the bounding box of
    ``goal_pairs`` is densified to a ~sqrt(prescreen)-per-side grid,
    classified by :func:`repro.analytic.frontier.prescreen_goal_pairs`,
    and only the feasibility frontier of the goal plane is simulated
    (grid pairs violating the §7.4 ordering ``goal1 < goal2`` are
    screened but never simulated).  Each pair is an independent
    simulation keyed by (config, seed, goals), so the simulated subset
    is bit-identical to an unscreened sweep over the same pairs.
    """
    from repro.experiments import forkserver

    config = doubled_cache_config() if config is None else config
    goal_pairs = [tuple(pair) for pair in goal_pairs]
    for goal1_ms, goal2_ms in goal_pairs:
        if goal1_ms >= goal2_ms:
            raise ValueError("the paper requires goal(k1) < goal(k2)")
    prescreen_report = None
    if prescreen:
        from repro.analytic.frontier import pair_grid, prescreen_goal_pairs

        goals1 = [pair[0] for pair in goal_pairs]
        goals2 = [pair[1] for pair in goal_pairs]
        grid = pair_grid(
            (min(goals1), max(goals1)), (min(goals2), max(goals2)),
            prescreen,
        )
        prescreen_report = prescreen_goal_pairs(
            config,
            multiclass_workload(
                config, goal_pairs[0][0], goal_pairs[0][1],
                sharing=sharing, skew=skew,
            ),
            grid,
        )
        goal_pairs = [
            (goal1_ms, goal2_ms)
            for goal1_ms, goal2_ms in prescreen_report.selected_pairs()
            if goal1_ms < goal2_ms
        ]
        if not goal_pairs:
            raise ValueError(
                "prescreening selected no simulatable goal pairs "
                "(all frontier pairs violate goal(k1) < goal(k2))"
            )
    deltas = [
        forkserver.WarmDelta.for_goals({1: goal1_ms, 2: goal2_ms})
        for goal1_ms, goal2_ms in goal_pairs
    ]
    mode = forkserver.plan_sweep(
        runner, warm_keys=[seed] * len(goal_pairs), deltas=deltas
    )
    sweep = MulticlassGoalSweep(
        sharing=sharing, runner=mode, prescreen=prescreen_report
    )

    def point_dir(pair_index: int) -> Optional[str]:
        if telemetry is None:
            return None
        return os.path.join(telemetry, f"pair{pair_index}")

    if mode == "fork":
        base1, base2 = goal_pairs[0]
        sweep.points.extend(forkserver.run_warm_sweep(
            build=functools.partial(
                _build_goal_pair_sim, config, base1, base2, sharing,
                skew, seed, warmup_ms,
            ),
            deltas=[
                forkserver.telemetry_delta(delta, point_dir(g))
                if telemetry is not None else delta
                for g, delta in enumerate(deltas)
            ],
            measure=functools.partial(
                _measure_goal_pair, sharing=sharing,
                intervals=intervals, tail=tail,
            ),
            jobs=jobs,
            runner="fork",
        ))
    else:
        tasks = [
            (config, goal1_ms, goal2_ms, sharing, skew, seed,
             warmup_ms, intervals, tail, point_dir(g))
            for g, (goal1_ms, goal2_ms) in enumerate(goal_pairs)
        ]
        sweep.points.extend(
            run_tasks(_cold_goal_pair_task, tasks, jobs=jobs)
        )
    if telemetry is not None:
        from repro.telemetry.exporters import merge_point_dirs

        merge_point_dirs(
            telemetry,
            [
                (f"pair{g}", point_dir(g))
                for g in range(len(goal_pairs))
            ],
        )
        if prescreen_report is not None:
            from repro.telemetry.exporters import append_trace_records
            from repro.telemetry.trace import TraceLog

            log = TraceLog()
            log.emit(
                "prescreen", 0.0, **prescreen_report.trace_fields()
            )
            append_trace_records(telemetry, log.records)
    return sweep


def main() -> None:
    """CLI entry point: print the §7.4 sharing sweep."""
    result = run_sharing_sweep()
    emit(result.to_text())
    emit()
    emit(
        "k2 dedicated memory decreases with sharing: "
        f"{result.k2_dedicated_decreases()}"
    )


if __name__ == "__main__":
    main()
