"""Section 7.4 — multiple goal classes, disjoint and shared page sets.

Setup per the paper: two goal classes k1, k2 with
``RT_goal(k1) < RT_goal(k2)`` plus the no-goal class, and **twice** the
cache memory per node.

(a) With *disjoint* page sets, memory dedicated to one class does not
    influence the other, so the convergence speed matches the base
    experiment (Table 2).

(b) With increasing *data sharing* between the classes, class k2
    profits from the dedicated buffer of class k1 (whose goal is
    tighter, hence its buffer larger): the memory dedicated to k2
    shrinks gradually and eventually disappears, while k2 still meets
    its goal purely through k1's buffers — the Example 2 effect of §3.

Run standalone::

    python -m repro.experiments.multiclass
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.cluster.config import NodeParameters, SystemConfig
from repro.experiments.parallel import run_tasks
from repro.experiments.reporting import format_table
from repro.experiments.runner import Simulation
from repro.workload.spec import (
    ClassSpec,
    WorkloadSpec,
    partition_pages,
    shared_pages,
)


def doubled_cache_config(base: Optional[SystemConfig] = None) -> SystemConfig:
    """The §7.4 system: twice the cache memory at each node."""
    base = base if base is not None else SystemConfig()
    return replace(
        base, node=NodeParameters(buffer_bytes=2 * base.node.buffer_bytes)
    )


def multiclass_workload(
    config: SystemConfig,
    goal1_ms: float,
    goal2_ms: float,
    sharing: float = 0.0,
    skew: float = 0.0,
    arrival_rate_per_node: float = 0.02,
) -> WorkloadSpec:
    """Two goal classes + no-goal class; k2 shares ``sharing`` of k1's pages."""
    if goal1_ms >= goal2_ms:
        raise ValueError("the paper requires goal(k1) < goal(k2)")
    set1, set2, set0 = partition_pages(config.num_pages, 3)
    pages2 = shared_pages(set1, set2, sharing)
    common = dict(
        skew=skew,
        pages_per_op=4,
        arrival_rate_per_node=arrival_rate_per_node,
    )
    return WorkloadSpec(
        classes=[
            ClassSpec(class_id=0, goal_ms=None, pages=set0,
                      name="no-goal", **common),
            ClassSpec(class_id=1, goal_ms=goal1_ms, pages=tuple(set1),
                      name="k1", **common),
            ClassSpec(class_id=2, goal_ms=goal2_ms, pages=pages2,
                      name="k2", **common),
        ]
    )


@dataclass
class SharingPoint:
    """Steady-state outcome for one sharing fraction."""

    sharing: float
    dedicated_k1_bytes: float
    dedicated_k2_bytes: float
    satisfied_k1: float
    satisfied_k2: float
    observed_rt_k1: float
    observed_rt_k2: float
    #: Fraction of tail intervals with RT <= goal (one-sided — the
    #: §7.4 sense of "exceeds its goal": being *faster* counts).
    goal_met_k1: float = 0.0
    goal_met_k2: float = 0.0


@dataclass
class MulticlassResult:
    """The §7.4 sharing sweep."""

    points: List[SharingPoint] = field(default_factory=list)

    def k2_dedicated_decreases(self) -> bool:
        """Does k2's dedicated memory shrink as sharing rises?"""
        if len(self.points) < 2:
            return False
        return (
            self.points[-1].dedicated_k2_bytes
            < self.points[0].dedicated_k2_bytes
        )

    def to_text(self) -> str:
        """Render the sweep as an aligned text table."""
        rows = [
            [
                p.sharing,
                int(p.dedicated_k1_bytes),
                int(p.dedicated_k2_bytes),
                p.goal_met_k1,
                p.goal_met_k2,
                p.observed_rt_k1,
                p.observed_rt_k2,
            ]
            for p in self.points
        ]
        return format_table(
            ["sharing", "dedicated k1 (B)", "dedicated k2 (B)",
             "goal met k1", "goal met k2", "rt k1 (ms)", "rt k2 (ms)"],
            rows,
            title="Section 7.4: data sharing between goal classes",
        )


def run_sharing_point(
    sharing: float,
    goal1_ms: float = 4.0,
    goal2_ms: float = 10.0,
    seed: int = 7,
    intervals: int = 60,
    tail: int = 20,
    config: Optional[SystemConfig] = None,
    skew: float = 0.0,
) -> SharingPoint:
    """Run one sharing fraction to steady state and summarize the tail."""
    config = (
        doubled_cache_config() if config is None else config
    )
    workload = multiclass_workload(
        config, goal1_ms, goal2_ms, sharing=sharing, skew=skew
    )
    sim = Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=20_000.0
    )
    sim.run(intervals=intervals)

    def tail_mean(values: Sequence[float]) -> float:
        window = list(values)[-tail:]
        return sum(window) / len(window) if window else 0.0

    s1 = sim.controller.series[1]
    s2 = sim.controller.series[2]

    def goal_met(series, goal_ms):
        flags = [
            1.0 if rt <= goal_ms * 1.1 else 0.0
            for rt in series.observed_rt.values
        ]
        return tail_mean(flags)

    return SharingPoint(
        sharing=sharing,
        dedicated_k1_bytes=tail_mean(s1.dedicated_bytes.values),
        dedicated_k2_bytes=tail_mean(s2.dedicated_bytes.values),
        satisfied_k1=tail_mean([float(x) for x in s1.satisfied]),
        satisfied_k2=tail_mean([float(x) for x in s2.satisfied]),
        observed_rt_k1=tail_mean(s1.observed_rt.values),
        observed_rt_k2=tail_mean(s2.observed_rt.values),
        goal_met_k1=goal_met(s1, goal1_ms),
        goal_met_k2=goal_met(s2, goal2_ms),
    )


def _sharing_point_task(task) -> SharingPoint:
    """Unpack one ``(sharing, kwargs)`` task (picklable for ``jobs>1``)."""
    sharing, kwargs = task
    return run_sharing_point(sharing, **kwargs)


def run_sharing_sweep(
    sharings: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    jobs: int = 1,
    **kwargs,
) -> MulticlassResult:
    """The full §7.4(b) sweep over sharing fractions.

    The sharing points are independent simulations, so ``jobs`` runs
    them on worker processes; results keep the order of ``sharings``.
    """
    tasks = [(sharing, kwargs) for sharing in sharings]
    result = MulticlassResult()
    result.points.extend(run_tasks(_sharing_point_task, tasks, jobs=jobs))
    return result


def main() -> None:
    """CLI entry point: print the §7.4 sharing sweep."""
    result = run_sharing_sweep()
    print(result.to_text())
    print()
    print(
        "k2 dedicated memory decreases with sharing:",
        result.k2_dedicated_decreases(),
    )


if __name__ == "__main__":
    main()
