"""Resilience under injected faults: recovery of the feedback loop.

The paper's feedback loop (§5) is advertised as self-correcting: every
observation interval re-measures the system, so any disturbance —
lost reports, stale allocations, a crashed node with a cold cache —
is eventually washed out by new measure points.  This experiment makes
that claim measurable.  A seeded fault schedule (see
:mod:`repro.faults`) is injected into the base experiment and two
recovery metrics are computed per fault:

``time-to-goal-reattainment``
    Observation intervals from the fault until the goal class first
    re-enters its tolerance band (a satisfied interval with an actual
    observation).

``goal-violation area``
    The integral of ``max(0, observed_rt - goal)`` over the recovery
    window, in ms·s — how *badly* and for how long the goal was missed,
    not just whether it was.

Replication follows the repository convention: replicate ``i`` runs
with ``derive_replicate_seed(base, i)`` and replicates are farmed out
via :func:`~repro.experiments.parallel.run_tasks`, so ``--jobs N`` is
bit-identical to ``--jobs 1``.

Run standalone::

    python -m repro.experiments.resilience
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import NodeParameters, SystemConfig
from repro.experiments.parallel import derive_replicate_seed, run_tasks
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import (
    RESILIENCE_WARMUP_MS,
    Simulation,
    default_workload,
)

#: Class id of the goal class in the base workload.
GOAL_CLASS = 1


def quick_config() -> SystemConfig:
    """A scaled-down system (3 nodes, 400 pages, 256 KB buffers).

    Mirrors the test suite's fast configuration: ~8x smaller than the
    §7.1 environment with similar cache/database ratios, so recovery
    behaviour transfers while CI smoke runs stay cheap.
    """
    return SystemConfig(
        num_nodes=3,
        num_pages=400,
        node=NodeParameters(buffer_bytes=256 * 1024),
        observation_interval_ms=2000.0,
    )


def default_fault_spec(
    intervals: int, interval_ms: float, warmup_ms: float = 0.0
) -> str:
    """The default resilience schedule, scaled to the run horizon.

    Two node crashes (at ~25 % and ~70 % of the horizon, so even short
    smoke runs leave room to re-converge after each), one
    control-message loss episode and one disk slowdown in between.
    Fault times are absolute simulation times, hence the warm-up
    offset.  The second crash targets ``node=any`` to exercise the
    seeded node draw.
    """
    if intervals < 8:
        raise ValueError("the default schedule needs >= 8 intervals")
    horizon = intervals * interval_ms
    restart = interval_ms  # one interval of downtime
    episode = 3.0 * interval_ms

    def at(fraction: float) -> float:
        return warmup_ms + fraction * horizon

    return (
        f"crash@{at(0.25):.0f}:node=0:restart={restart:.0f};"
        f"netloss@{at(0.45):.0f}:dur={episode:.0f}:p=0.3;"
        f"diskslow@{at(0.55):.0f}:node=0:dur={episode:.0f}:factor=4;"
        f"crash@{at(0.70):.0f}:node=any:restart={restart:.0f}"
    )


def control_fault_spec(
    intervals: int, interval_ms: float, warmup_ms: float = 0.0
) -> str:
    """Control-plane resilience schedule, scaled to the run horizon.

    The coordinator crashes twice (at ~20 % and ~75 % of the horizon),
    node 0 is partitioned off the control network long enough to enter
    degraded mode (~40 %), and a node crash lands at ~60 % so node- and
    control-plane recovery interleave.  The first coordinator outage
    lasts three observation intervals (state wipe + epoch bump + full
    re-learn); the partition lasts five so the degraded-mode state
    machine is exercised end to end with the default thresholds.
    """
    if intervals < 16:
        raise ValueError("the control-plane schedule needs >= 16 intervals")
    horizon = intervals * interval_ms
    restart = interval_ms

    def at(fraction: float) -> float:
        return warmup_ms + fraction * horizon

    return (
        f"coordcrash@{at(0.20):.0f}:dur={3 * interval_ms:.0f};"
        f"partition@{at(0.40):.0f}:nodes=0:dur={5 * interval_ms:.0f};"
        f"crash@{at(0.60):.0f}:node=any:restart={restart:.0f};"
        f"coordcrash@{at(0.75):.0f}:dur={2 * interval_ms:.0f}"
    )


@dataclass(frozen=True)
class FaultOutcome:
    """Recovery metrics of one injected fault."""

    kind: str
    time_ms: float
    node: Optional[int]
    duration_ms: float
    #: Intervals from the fault to the first satisfied observation,
    #: or None when the run ended before the goal was reattained.
    reattained_after: Optional[int]
    #: Goal-violation area over the recovery window, in ms·s.
    violation_area: float
    #: Partitioned node set (empty for other kinds).
    nodes: Tuple[int, ...] = ()


@dataclass
class ResilienceReplicate:
    """One seeded run under the fault schedule."""

    seed: int
    #: Response time goal of the run (recorded for goal sweeps).
    goal_ms: float = 0.0
    intervals: List[int] = field(default_factory=list)
    observed_rt: List[float] = field(default_factory=list)
    goal: List[float] = field(default_factory=list)
    satisfied: List[bool] = field(default_factory=list)
    faults: List[FaultOutcome] = field(default_factory=list)
    #: Failure-aware loop counters (see GoalOrientedController).
    reports_dropped: int = 0
    allocation_retries: int = 0
    allocation_unconfirmed: int = 0
    invalidated_points: int = 0
    #: Control-plane fault counters (all zero unless coordcrash or
    #: partition clauses were scheduled).
    coordinator_crashes: int = 0
    reports_unreachable: int = 0
    allocations_deferred: int = 0
    stale_allocations_rejected: int = 0
    degraded_entries: int = 0
    degraded_exits: int = 0
    reconciles: int = 0
    reconcile_repairs: int = 0
    final_epoch: int = 0
    #: Whole-run goal-violation area, in ms·s.
    total_violation_area: float = 0.0
    #: Streaming p95 of the goal class's response times (P² estimate).
    p95_rt_ms: float = 0.0
    #: Extended {quantile: response_ms}; None when the replicate ran
    #: without telemetry (keeps untraced reports unchanged).
    quantiles: Optional[Dict[float, float]] = None


@dataclass
class ResilienceData:
    """Aggregated resilience results across replicates."""

    fault_spec: str
    goal_ms: float
    interval_ms: float
    replicates: List[ResilienceReplicate] = field(default_factory=list)

    # -- summary metrics ---------------------------------------------

    def crash_outcomes(self) -> List[FaultOutcome]:
        """All crash outcomes across replicates."""
        return [
            f for rep in self.replicates for f in rep.faults
            if f.kind == "crash"
        ]

    def all_crashes_reattained(self) -> bool:
        """True when the goal was reattained after every crash."""
        crashes = self.crash_outcomes()
        return bool(crashes) and all(
            f.reattained_after is not None for f in crashes
        )

    def mean_reattainment_intervals(self) -> Optional[float]:
        """Mean time-to-goal-reattainment over recovered crashes."""
        recovered = [
            f.reattained_after for f in self.crash_outcomes()
            if f.reattained_after is not None
        ]
        if not recovered:
            return None
        return sum(recovered) / len(recovered)

    def outcomes_by_kind(self) -> Dict[str, List[FaultOutcome]]:
        """All fault outcomes across replicates, grouped by kind."""
        by_kind: Dict[str, List[FaultOutcome]] = {}
        for rep in self.replicates:
            for f in rep.faults:
                by_kind.setdefault(f.kind, []).append(f)
        return by_kind

    def control_outcomes(self) -> List[FaultOutcome]:
        """Coordinator-crash and partition outcomes across replicates."""
        return [
            f for rep in self.replicates for f in rep.faults
            if f.kind in ("coordcrash", "partition")
        ]

    def all_control_faults_reattained(self) -> bool:
        """True when the goal was reattained after every control-plane
        fault (coordinator crash or partition)."""
        control = self.control_outcomes()
        return bool(control) and all(
            f.reattained_after is not None for f in control
        )

    def mean_violation_area(self) -> float:
        """Mean whole-run goal-violation area per replicate (ms·s)."""
        if not self.replicates:
            return 0.0
        return sum(
            rep.total_violation_area for rep in self.replicates
        ) / len(self.replicates)

    def mean_p95_rt_ms(self) -> float:
        """Mean per-replicate p95 response time of the goal class."""
        if not self.replicates:
            return 0.0
        return sum(
            rep.p95_rt_ms for rep in self.replicates
        ) / len(self.replicates)

    def mean_quantiles(self) -> Optional[Dict[float, float]]:
        """Mean per-replicate extended quantiles, or None untracked."""
        tracked = [r.quantiles for r in self.replicates if r.quantiles]
        if not tracked:
            return None
        keys = sorted(tracked[0])
        return {
            q: sum(t[q] for t in tracked) / len(tracked) for q in keys
        }

    # -- presentation -------------------------------------------------

    def to_text(self) -> str:
        """Per-fault recovery table plus the summary lines."""
        rows = []
        for rep in self.replicates:
            for f in rep.faults:
                if f.node is not None:
                    target = f.node
                elif f.nodes:
                    target = ",".join(str(n) for n in f.nodes)
                else:
                    target = "-"
                rows.append([
                    rep.seed,
                    f.kind,
                    f"{f.time_ms:.0f}",
                    target,
                    (
                        f.reattained_after
                        if f.reattained_after is not None else "never"
                    ),
                    f"{f.violation_area:.2f}",
                ])
        table = format_table(
            ["seed", "fault", "time_ms", "node", "reattained_after",
             "violation_ms_s"],
            rows,
            title="Resilience: recovery per injected fault",
        )
        mean_re = self.mean_reattainment_intervals()
        lines = [
            table,
            "",
            f"fault schedule: {self.fault_spec}",
            f"goal: {self.goal_ms:.2f} ms, interval: "
            f"{self.interval_ms:.0f} ms, replicates: "
            f"{len(self.replicates)}",
            "mean time-to-goal-reattainment: "
            + ("n/a" if mean_re is None else f"{mean_re:.1f} intervals"),
            f"mean goal-violation area: "
            f"{self.mean_violation_area():.2f} ms*s",
            f"mean p95 response time: "
            f"{self.mean_p95_rt_ms():.2f} ms",
            *(
                [
                    "mean response time quantiles (ms): " + ", ".join(
                        f"p{q * 100:g}={ms:.2f}"
                        for q, ms in sorted(self.mean_quantiles().items())
                    )
                ]
                if self.mean_quantiles() is not None else []
            ),
            f"reports dropped: "
            f"{sum(r.reports_dropped for r in self.replicates)}, "
            f"allocation retries: "
            f"{sum(r.allocation_retries for r in self.replicates)}, "
            f"unconfirmed: "
            f"{sum(r.allocation_unconfirmed for r in self.replicates)}, "
            f"measure points invalidated: "
            f"{sum(r.invalidated_points for r in self.replicates)}",
        ]
        by_kind = self.outcomes_by_kind()
        if by_kind:
            parts = []
            for kind in sorted(by_kind):
                outcomes = by_kind[kind]
                recovered = [
                    f.reattained_after for f in outcomes
                    if f.reattained_after is not None
                ]
                mean = (
                    f"{sum(recovered) / len(recovered):.1f}"
                    if recovered else "never"
                )
                parts.append(
                    f"{kind} n={len(outcomes)} "
                    f"reattain={mean}/{len(recovered)}ok"
                )
            lines.append("reattainment by kind: " + ", ".join(parts))
        if any(r.coordinator_crashes or r.allocations_deferred
               for r in self.replicates):
            reps = self.replicates
            lines.append(
                f"control plane: coordinator crashes "
                f"{sum(r.coordinator_crashes for r in reps)}, "
                f"reports unreachable "
                f"{sum(r.reports_unreachable for r in reps)}, "
                f"allocations deferred "
                f"{sum(r.allocations_deferred for r in reps)}, "
                f"stale rejected "
                f"{sum(r.stale_allocations_rejected for r in reps)}, "
                f"degraded enter/exit "
                f"{sum(r.degraded_entries for r in reps)}/"
                f"{sum(r.degraded_exits for r in reps)}, "
                f"reconciles {sum(r.reconciles for r in reps)} "
                f"(repairs {sum(r.reconcile_repairs for r in reps)})"
            )
        lines.append(
            f"all crashes reattained: {self.all_crashes_reattained()}"
        )
        if self.control_outcomes():
            lines.append(
                f"all control faults reattained: "
                f"{self.all_control_faults_reattained()}"
            )
        return "\n".join(lines)

    def to_chart(self) -> str:
        """Replicate 0's RT vs. goal, with the fault times marked."""
        from repro.experiments.plotting import ascii_chart, overlay_chart

        if not self.replicates:
            return "(no replicates)"
        rep = self.replicates[0]
        top = overlay_chart(
            rep.observed_rt, rep.goal,
            label="observed response time (*) vs goal (o), ms "
                  "[replicate 0]",
        )
        excess = [
            max(0.0, rt - g) for rt, g in zip(rep.observed_rt, rep.goal)
        ]
        bottom = ascii_chart(
            excess, height=8,
            label="goal violation (observed - goal, ms, clipped at 0)",
        )
        marks = ", ".join(
            f"{f.kind}@{f.time_ms:.0f}ms" for f in rep.faults
        )
        return top + "\n\n" + bottom + f"\n\nfaults: {marks}"

    def save_csv(self, path: str) -> None:
        """Export replicate 0's per-interval series as CSV."""
        from repro.experiments.plotting import series_to_csv

        if not self.replicates:
            raise ValueError("no replicates to export")
        rep = self.replicates[0]
        series_to_csv(
            ["interval", "observed_rt_ms", "goal_ms", "satisfied"],
            [rep.intervals, rep.observed_rt, rep.goal,
             [int(s) for s in rep.satisfied]],
            path=path,
        )


def _recovery_metrics(
    records, injected, interval_ms: float
) -> List[FaultOutcome]:
    """Per-fault recovery metrics from the coordinator's decision log.

    The decision log is per-interval aligned (one record per evaluate),
    so "intervals until reattainment" is a simple record count.  The
    violation area of a fault integrates from the fault to its
    reattainment (or the end of the run).
    """
    outcomes = []
    for fault in injected:
        after = [r for r in records if r.time > fault.time_ms]
        reattained: Optional[int] = None
        area = 0.0
        for i, record in enumerate(after, start=1):
            if record.observed_rt is not None:
                area += (
                    max(0.0, record.observed_rt - record.goal_ms)
                    * interval_ms / 1000.0
                )
                if record.satisfied and reattained is None:
                    reattained = i
                    break
        outcomes.append(
            FaultOutcome(
                kind=fault.kind,
                time_ms=fault.time_ms,
                node=fault.node,
                duration_ms=fault.duration_ms,
                reattained_after=reattained,
                violation_area=area,
                nodes=fault.nodes,
            )
        )
    return outcomes


def _build_resilience_sim(
    config: SystemConfig,
    goal_ms: float,
    warmup_ms: float,
    fault_spec: str,
    arrival_rate_per_node: float,
    seed: int,
) -> Simulation:
    """Assemble one seeded resilience simulation (not yet warmed)."""
    workload = default_workload(
        config, goal_ms=goal_ms,
        arrival_rate_per_node=arrival_rate_per_node,
    )
    return Simulation(
        config=config, workload=workload, seed=seed,
        warmup_ms=warmup_ms, faults=fault_spec,
    )


def _measure_resilience(
    sim: Simulation, intervals: int
) -> ResilienceReplicate:
    """Run the measured horizon and extract the recovery metrics."""
    sim.run(intervals=intervals)

    controller = sim.controller
    coordinator = controller.coordinators[GOAL_CLASS]
    records = coordinator.decision_log
    rep = ResilienceReplicate(
        seed=sim.cluster.rng.seed,
        goal_ms=controller.goal_of(GOAL_CLASS),
    )
    total_area = 0.0
    for i, record in enumerate(records):
        rep.intervals.append(i + 1)
        rep.observed_rt.append(
            record.observed_rt
            if record.observed_rt is not None else float("nan")
        )
        rep.goal.append(record.goal_ms)
        rep.satisfied.append(record.satisfied)
        if record.observed_rt is not None:
            total_area += (
                max(0.0, record.observed_rt - record.goal_ms)
                * sim.controller.interval_ms / 1000.0
            )
    rep.total_violation_area = total_area
    rep.faults = _recovery_metrics(
        records, sim.fault_injector.injected, controller.interval_ms
    )
    rep.reports_dropped = controller.reports_dropped
    rep.allocation_retries = controller.allocation_retries
    rep.allocation_unconfirmed = controller.allocation_unconfirmed
    rep.invalidated_points = coordinator.invalidated_points
    rep.p95_rt_ms = controller.p95_response_ms(GOAL_CLASS)
    rep.quantiles = controller.response_quantiles(GOAL_CLASS)
    rep.coordinator_crashes = controller.coordinator_crashes
    rep.reports_unreachable = controller.reports_unreachable
    rep.allocations_deferred = controller.allocations_deferred
    rep.stale_allocations_rejected = controller.stale_allocations_rejected
    rep.degraded_entries = controller.degraded_entries
    rep.degraded_exits = controller.degraded_exits
    rep.reconciles = sim.cluster.reconciles
    rep.reconcile_repairs = sim.cluster.reconcile_repairs
    rep.final_epoch = coordinator.epoch
    sim.export_telemetry()
    return rep


def _resilience_replicate(
    config: SystemConfig,
    goal_ms: float,
    intervals: int,
    warmup_ms: float,
    fault_spec: str,
    arrival_rate_per_node: float,
    seed: int,
    telemetry: Optional[str] = None,
) -> ResilienceReplicate:
    """One seeded resilience run (module-level: picklable for jobs>1)."""
    sim = _build_resilience_sim(
        config, goal_ms, warmup_ms, fault_spec,
        arrival_rate_per_node, seed,
    )
    if telemetry is not None:
        sim.set_telemetry(telemetry)
    return _measure_resilience(sim, intervals)


def _resilience_replicate_task(
    config: SystemConfig,
    goal_ms: float,
    intervals: int,
    warmup_ms: float,
    fault_spec: str,
    arrival_rate_per_node: float,
    task,
) -> ResilienceReplicate:
    """Unpack one ``(seed, telemetry)`` replicate task (picklable)."""
    seed, telemetry = task
    return _resilience_replicate(
        config, goal_ms, intervals, warmup_ms, fault_spec,
        arrival_rate_per_node, seed, telemetry,
    )


def run_resilience(
    seed: int = 0,
    intervals: int = 90,
    config: Optional[SystemConfig] = None,
    goal_ms: float = 6.0,
    faults: Optional[str] = None,
    replications: int = 2,
    warmup_ms: float = RESILIENCE_WARMUP_MS,
    arrival_rate_per_node: float = 0.02,
    jobs: int = 1,
    telemetry: Optional[str] = None,
) -> ResilienceData:
    """Run the resilience experiment and return the aggregated data.

    ``faults`` is a fault spec string (see :mod:`repro.faults`); when
    None the :func:`default_fault_spec` scaled to the horizon is used.
    ``config`` defaults to the full §7.1 environment; pass
    :func:`quick_config` for smoke runs.  ``jobs`` parallelizes
    replicates with bit-identical results.  (Replicates never share a
    warm-up trajectory — every replicate has its own seed — so this
    protocol stays on the cold per-replicate path; the warm-state fork
    server amortizes :func:`run_goal_sweep` instead.)
    """
    config = config if config is not None else SystemConfig()
    if faults is None:
        faults = default_fault_spec(
            intervals, config.observation_interval_ms, warmup_ms
        )
    worker = functools.partial(
        _resilience_replicate_task, config, goal_ms, intervals,
        warmup_ms, faults, arrival_rate_per_node,
    )
    seeds = [
        derive_replicate_seed(seed, i) for i in range(replications)
    ]
    labels = [f"rep{i}" for i in range(replications)]
    tasks = [
        (
            rep_seed,
            os.path.join(telemetry, label)
            if telemetry is not None else None,
        )
        for rep_seed, label in zip(seeds, labels)
    ]
    replicates = run_tasks(worker, tasks, jobs=jobs)
    if telemetry is not None:
        from repro.telemetry.exporters import merge_point_dirs

        merge_point_dirs(
            telemetry,
            [(label, os.path.join(telemetry, label)) for label in labels],
        )
    return ResilienceData(
        fault_spec=faults,
        goal_ms=goal_ms,
        interval_ms=config.observation_interval_ms,
        replicates=replicates,
    )


@dataclass
class ResilienceGoalSweep:
    """Recovery metrics as a function of goal tightness.

    One :class:`ResilienceData` per swept goal, all under the *same*
    fault schedule and seeds — with the fork runner, literally the same
    warmed memory image per replicate, so differences between goals are
    purely the controller's doing.
    """

    fault_spec: str
    runner: str
    results: List[ResilienceData] = field(default_factory=list)

    def to_text(self) -> str:
        """Summary table: recovery metrics per swept goal."""
        rows = []
        for data in self.results:
            mean_re = data.mean_reattainment_intervals()
            rows.append([
                data.goal_ms,
                len(data.replicates),
                "n/a" if mean_re is None else round(mean_re, 1),
                round(data.mean_violation_area(), 2),
                data.all_crashes_reattained(),
            ])
        return format_table(
            ["goal_ms", "replicates", "mean reattain (intervals)",
             "violation (ms*s)", "all crashes reattained"],
            rows,
            title=f"Resilience goal sweep ({self.runner} runner)",
        )


def run_goal_sweep(
    goals: Sequence[float] = (4.0, 6.0, 8.0),
    seed: int = 0,
    intervals: int = 90,
    config: Optional[SystemConfig] = None,
    faults: Optional[str] = None,
    replications: int = 1,
    warmup_ms: float = RESILIENCE_WARMUP_MS,
    arrival_rate_per_node: float = 0.02,
    jobs: int = 1,
    runner: str = "auto",
    telemetry: Optional[str] = None,
) -> ResilienceGoalSweep:
    """Measure recovery under the same fault schedule at several goals.

    The default schedule injects every fault *after* the warm-up
    horizon and the goal never reaches the workload or the fault
    injector, so all goals of a replicate share one warmed image: the
    fork server warms (workload **and** armed injector) once per
    replicate seed and forks the goal points from it.  The cold path
    (``runner='cold'`` or platforms without ``os.fork``) runs one
    simulation per (goal, seed) via
    :func:`~repro.experiments.parallel.run_tasks` — bit-identical.
    """
    from repro.experiments import forkserver

    config = config if config is not None else SystemConfig()
    goals = list(goals)
    if faults is None:
        faults = default_fault_spec(
            intervals, config.observation_interval_ms, warmup_ms
        )
    seeds = [
        derive_replicate_seed(seed, i) for i in range(replications)
    ]
    deltas = [
        forkserver.WarmDelta.for_goals({GOAL_CLASS: goal_ms})
        for goal_ms in goals
    ]
    mode = forkserver.plan_sweep(
        runner,
        warm_keys=[s for s in seeds for _ in goals],
        deltas=deltas * len(seeds),
    )
    def point_dir(rep: int, goal_index: int) -> Optional[str]:
        if telemetry is None:
            return None
        return os.path.join(telemetry, f"rep{rep}-goal{goal_index}")

    if mode == "fork":
        groups = [
            forkserver.WarmGroup(
                build=functools.partial(
                    _build_resilience_sim, config, goals[0], warmup_ms,
                    faults, arrival_rate_per_node, rep_seed,
                ),
                deltas=[
                    forkserver.telemetry_delta(delta, point_dir(rep, g))
                    if telemetry is not None else delta
                    for g, delta in enumerate(deltas)
                ],
                measure=functools.partial(
                    _measure_resilience, intervals=intervals
                ),
            )
            for rep, rep_seed in enumerate(seeds)
        ]
        # One warmed parent per replicate seed; replicate-major lists
        # of per-goal results come back in point order.
        per_seed = forkserver.run_warm_groups(
            groups, jobs=jobs, runner="fork"
        )
        by_goal = [
            [per_seed[s][g] for s in range(len(seeds))]
            for g in range(len(goals))
        ]
    else:
        tasks = [
            (config, goal_ms, intervals, warmup_ms, faults,
             arrival_rate_per_node, rep_seed, point_dir(rep, g))
            for g, goal_ms in enumerate(goals)
            for rep, rep_seed in enumerate(seeds)
        ]
        flat = run_tasks(_resilience_goal_task, tasks, jobs=jobs)
        by_goal = [
            flat[g * len(seeds):(g + 1) * len(seeds)]
            for g in range(len(goals))
        ]
    if telemetry is not None:
        from repro.telemetry.exporters import merge_point_dirs

        merge_point_dirs(
            telemetry,
            [
                (f"rep{rep}-goal{g}", point_dir(rep, g))
                for rep in range(len(seeds))
                for g in range(len(goals))
            ],
        )
    sweep = ResilienceGoalSweep(fault_spec=faults, runner=mode)
    for goal_ms, replicates in zip(goals, by_goal):
        sweep.results.append(ResilienceData(
            fault_spec=faults,
            goal_ms=goal_ms,
            interval_ms=config.observation_interval_ms,
            replicates=replicates,
        ))
    return sweep


def _resilience_goal_task(task) -> ResilienceReplicate:
    """One cold goal-sweep point (module-level: picklable)."""
    (config, goal_ms, intervals, warmup_ms, fault_spec,
     arrival_rate_per_node, seed, telemetry) = task
    return _resilience_replicate(
        config, goal_ms, intervals, warmup_ms, fault_spec,
        arrival_rate_per_node, seed, telemetry,
    )


def main() -> None:
    """CLI entry point: print the resilience report."""
    data = run_resilience()
    emit(data.to_text())


if __name__ == "__main__":
    main()
