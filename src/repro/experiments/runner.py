"""Simulation assembly: cluster + workload + goal-oriented controller.

:class:`Simulation` is the top-level convenience object of the library:
it wires a :class:`~repro.cluster.Cluster`, a
:class:`~repro.workload.WorkloadGenerator`, and a controller (the
goal-oriented one by default, or any baseline implementing the same
interface) and runs the feedback loop for a number of observation
intervals.  :func:`build_base_experiment` reproduces the §7.1/§7.2
setup exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.core.controller import GoalOrientedController
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import ClassSpec, WorkloadSpec, partition_pages

#: Shared simulated warm-up horizons (ms).  Every experiment warms the
#: caches before its controller starts reacting; these constants pin
#: the historical values in one place instead of scattered literals.
#: The discrepancy is deliberate and documented: the goal-range
#: calibration (§7.3) wants a fully steady cache under a *static*
#: allocation, so it warms 3x longer than the feedback experiments,
#: while the resilience study inherited a shorter warm-up because its
#: scaled-down quick config reaches steady state faster.
DEFAULT_WARMUP_MS = 20_000.0
CALIBRATION_WARMUP_MS = 60_000.0
RESILIENCE_WARMUP_MS = 10_000.0


class Simulation:
    """A runnable goal-oriented buffer management experiment."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        workload: Optional[WorkloadSpec] = None,
        seed: int = 0,
        policy: str = "cost",
        controller: Optional[GoalOrientedController] = None,
        warmup_ms: float = 0.0,
        recorder=None,
        faults=None,
        telemetry=None,
        **controller_kwargs,
    ):
        self.config = config if config is not None else SystemConfig()
        if workload is None:
            raise ValueError("a workload spec is required")
        self.workload = workload
        self.cluster = Cluster(self.config, seed=seed, policy=policy)
        if controller is None:
            goals = {
                c.class_id: c.goal_ms for c in workload.goal_classes
            }
            controller = GoalOrientedController(
                self.cluster, goals, **controller_kwargs
            )
        self.controller = controller
        #: Created automatically when the workload contains writes.
        self.txn_manager = None
        if any(c.write_fraction > 0 for c in workload.classes):
            from repro.txn.manager import TransactionManager

            self.txn_manager = TransactionManager(self.cluster)
        self.generator = WorkloadGenerator(
            self.cluster, workload, sink=controller,
            recorder=recorder, txn_manager=self.txn_manager,
        )
        #: Fault injector (``faults`` may be a spec string, a
        #: FaultSchedule, or None).  Without faults nothing is attached
        #: and the simulation is bit-identical to pre-fault builds.
        self.fault_injector = None
        if faults is not None:
            from repro.faults import FaultInjector, FaultSchedule

            if isinstance(faults, str):
                faults = FaultSchedule.parse(faults)
            self.fault_injector = FaultInjector(self.cluster, faults)
        self.warmup_ms = warmup_ms
        self._warmed = False
        self._started = False
        self._controller_t0 = 0.0
        self._intervals_requested = 0
        #: Attached telemetry pipeline (None until activation).
        self.telemetry = None
        #: Export directory (``telemetry`` may be a directory path, or
        #: True for an in-memory pipeline without exports).  The
        #: pipeline attaches at activation — after the warm-up — so
        #: warmed images stay goal- and telemetry-agnostic and fork
        #: children inherit an untelemetried parent.
        self._telemetry_spec = telemetry

    # -- running -------------------------------------------------------

    def warm(self) -> None:
        """Run the warm-up phase: workload (and faults) without control.

        Starts the generator and fault injector and advances the clock
        to ``warmup_ms`` so the caches warm before the controller ever
        reacts.  Idempotent.  This is the fork point of the warm-state
        fork server (:mod:`repro.experiments.forkserver`): everything
        up to here is by construction independent of the response time
        goals, tolerances, and controller policy knobs, so sweep points
        that differ only in those can share one warmed memory image.
        """
        if self._warmed:
            return
        self._warmed = True
        self.generator.start()
        if self.fault_injector is not None:
            self.fault_injector.start()
        if self.warmup_ms > 0:
            # Let caches warm before the controller starts reacting.
            self.cluster.env.run(until=self.warmup_ms)

    def set_telemetry(self, spec) -> None:
        """Arm telemetry before activation (a directory path or True).

        Only records the spec — attachment happens in
        :meth:`activate`, file writes in :meth:`export_telemetry` — so
        calling this from a fork-server ``WarmDelta.configure`` is
        warmup-invariant: no events, no RNG, no files, and each forked
        child opens its own sinks post-fork.
        """
        if self._started:
            raise RuntimeError("telemetry must be armed before activation")
        self._telemetry_spec = spec

    def activate(self) -> None:
        """Start the controller's feedback loop (idempotent)."""
        if self._started:
            return
        self._started = True
        import repro.telemetry as telemetry_mod

        if (
            self._telemetry_spec is not None
            or telemetry_mod.is_enabled()
            or telemetry_mod.live_installed()
        ):
            if self.telemetry is None:
                self.telemetry = telemetry_mod.attach_simulation(self)
        self.controller.start()
        self._controller_t0 = self.cluster.env.now

    def start(self) -> None:
        """Start workload and controller processes (idempotent)."""
        self.warm()
        self.activate()

    @property
    def warmed(self) -> bool:
        """True once the warm-up phase has run."""
        return self._warmed

    @property
    def active(self) -> bool:
        """True once the controller's feedback loop has started."""
        return self._started

    def run(self, intervals: int) -> None:
        """Advance the simulation by ``intervals`` observation intervals.

        The horizon lands just *past* the interval boundary so the
        controller's end-of-interval processing is included.
        """
        if intervals < 0:
            raise ValueError("intervals must be non-negative")
        self.start()
        self._intervals_requested += intervals
        horizon = (
            self._controller_t0
            + self._intervals_requested * self.controller.interval_ms
            + 1e-3
        )
        self.cluster.env.run(until=horizon)

    def run_until(self, time_ms: float) -> None:
        """Advance the simulation to absolute time ``time_ms``."""
        self.start()
        self.cluster.env.run(until=time_ms)

    def export_telemetry(self, outdir: Optional[str] = None):
        """Write telemetry exports; no-op when telemetry is off.

        ``outdir`` defaults to the directory given at construction (or
        via :meth:`set_telemetry`).  Returns the artifact path mapping,
        or None when telemetry was never attached or no directory is
        known (``telemetry=True`` keeps the pipeline in memory only).
        """
        if self.telemetry is None:
            return None
        if outdir is None and isinstance(self._telemetry_spec, str):
            outdir = self._telemetry_spec
        if outdir is None:
            return None
        from repro.telemetry.exporters import write_export

        return write_export(self.telemetry, outdir)

    # -- convenience accessors ---------------------------------------------

    @property
    def env(self):
        """The simulation environment."""
        return self.cluster.env

    def observed_rt(self, class_id: int) -> Optional[float]:
        """Most recent interval's weighted mean RT of a goal class."""
        series = self.controller.series[class_id].observed_rt
        return series.values[-1] if len(series) else None

    def satisfied(self, class_id: int) -> list:
        """Per-interval goal-satisfaction flags of a goal class."""
        return self.controller.series[class_id].satisfied

    def dedicated_bytes(self, class_id: int) -> int:
        """Current system-wide dedicated memory of a goal class."""
        return self.cluster.total_dedicated_bytes(class_id)


def default_workload(
    config: SystemConfig,
    goal_ms: float = 3.0,
    skew: float = 0.0,
    pages_per_op: int = 4,
    arrival_rate_per_node: float = 0.02,
) -> WorkloadSpec:
    """The §7.2 base workload: one goal class, one no-goal class,
    disjoint page sets, 4 pages per operation."""
    goal_pages, nogoal_pages = partition_pages(config.num_pages, 2)
    return WorkloadSpec(
        classes=[
            ClassSpec(
                class_id=0,
                goal_ms=None,
                pages=nogoal_pages,
                skew=skew,
                pages_per_op=pages_per_op,
                arrival_rate_per_node=arrival_rate_per_node,
                name="no-goal",
            ),
            ClassSpec(
                class_id=1,
                goal_ms=goal_ms,
                pages=goal_pages,
                skew=skew,
                pages_per_op=pages_per_op,
                arrival_rate_per_node=arrival_rate_per_node,
                name="goal",
            ),
        ]
    )


def build_base_experiment(
    seed: int = 0,
    goal_ms: float = 3.0,
    skew: float = 0.0,
    config: Optional[SystemConfig] = None,
    policy: str = "cost",
    arrival_rate_per_node: float = 0.02,
    **controller_kwargs,
) -> Simulation:
    """Assemble the paper's base experiment (§7.1/§7.2)."""
    config = config if config is not None else SystemConfig()
    workload = default_workload(
        config,
        goal_ms=goal_ms,
        skew=skew,
        arrival_rate_per_node=arrival_rate_per_node,
    )
    return Simulation(
        config=config,
        workload=workload,
        seed=seed,
        policy=policy,
        **controller_kwargs,
    )
