"""Plain-text tables and series matching the paper's presentation.

This module is also the sanctioned output path for experiment entry
points: :func:`emit` is the one place (besides the CLI itself) where
the library writes to stdout, so diagnostics elsewhere must go through
the telemetry layer instead of stray ``print`` calls (enforced by
``tools/check_no_prints.py``).
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence


def emit(text: str = "") -> None:
    """Write one line of report output to stdout."""
    sys.stdout.write(text + "\n")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned text table (paper-style)."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                # Ragged row wider than the header: grow the table.
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    headers: Sequence[str],
    columns: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render parallel columns (a figure's data) as a text table."""
    rows = list(zip(*columns))
    return format_table(headers, rows, title=title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.0f}"
    return str(cell)
