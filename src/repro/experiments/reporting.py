"""Plain-text tables and series matching the paper's presentation."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned text table (paper-style)."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    headers: Sequence[str],
    columns: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render parallel columns (a figure's data) as a text table."""
    rows = list(zip(*columns))
    return format_table(headers, rows, title=title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.0f}"
    return str(cell)
