"""Section 7.5 — overhead of the goal-oriented machinery.

The paper reports that, thanks to the observation-interval pacing and
the small message sizes, the control messages of the method account for
less than 0.1 % of the total network traffic, and that CPU and memory
overheads are insignificant.  This experiment runs the base workload
and breaks the simulated traffic down by message kind, estimates the
coordinator CPU time from the Table 1 task measurements, and sizes the
coordinator's memory footprint.

Run standalone::

    python -m repro.experiments.overhead
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.config import SystemConfig
from repro.cluster.messages import CONTROL_KINDS, MessageKind
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import Simulation, default_workload
from repro.experiments.table1 import measure_row


@dataclass
class OverheadResult:
    """Overhead breakdown of one run."""

    total_bytes: int
    control_bytes: int
    bytes_by_kind: Dict[MessageKind, int]
    messages_by_kind: Dict[MessageKind, int]
    #: Coordinator CPU ms consumed per simulated second (estimate).
    coordinator_cpu_ms_per_s: float
    #: Coordinator state size in bytes (measure points + reports).
    coordinator_memory_bytes: int
    simulated_ms: float

    @property
    def control_fraction(self) -> float:
        """Control bytes / total bytes."""
        return (
            self.control_bytes / self.total_bytes if self.total_bytes else 0.0
        )

    def to_text(self) -> str:
        """Render the traffic breakdown and overhead summary."""
        rows = [
            [
                kind.value,
                self.messages_by_kind.get(kind, 0),
                self.bytes_by_kind.get(kind, 0),
                "control" if kind in CONTROL_KINDS else "data",
            ]
            for kind in MessageKind
        ]
        table = format_table(
            ["message kind", "count", "bytes", "path"],
            rows,
            title="Section 7.5: network traffic by message kind",
        )
        return (
            f"{table}\n\n"
            f"control fraction of network traffic: "
            f"{self.control_fraction * 100:.4f} %\n"
            f"coordinator CPU: {self.coordinator_cpu_ms_per_s:.4f} ms "
            f"per simulated second\n"
            f"coordinator memory: {self.coordinator_memory_bytes} bytes"
        )


def run_overhead(
    seed: int = 1,
    intervals: int = 40,
    config: Optional[SystemConfig] = None,
    goal_ms: float = 6.0,
    arrival_rate_per_node: float = 0.02,
) -> OverheadResult:
    """Run the base workload and account the overheads."""
    config = config if config is not None else SystemConfig()
    workload = default_workload(
        config, goal_ms=goal_ms,
        arrival_rate_per_node=arrival_rate_per_node,
    )
    sim = Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=20_000.0
    )
    sim.run(intervals=intervals)

    accounting = sim.cluster.network.accounting
    coordinator = sim.controller.coordinators[1]
    # CPU: per-optimization cost measured like Table 1, times the
    # number of optimizations actually run.
    row = measure_row(config.num_nodes, repetitions=20)
    total_cpu_ms = coordinator.optimizations * row.overall_ms
    simulated_ms = sim.env.now

    # Memory: retained measure points, one float per node plus two
    # response times and a timestamp, plus the remembered agent reports.
    floats_per_point = config.num_nodes + 3
    point_bytes = len(coordinator.window) * floats_per_point * 8
    report_bytes = (
        len(coordinator.goal_reports) + len(coordinator.nogoal_reports)
    ) * 7 * 8
    return OverheadResult(
        total_bytes=accounting.total_bytes,
        control_bytes=accounting.control_bytes,
        bytes_by_kind=dict(accounting.bytes_by_kind),
        messages_by_kind=dict(accounting.messages_by_kind),
        coordinator_cpu_ms_per_s=(
            total_cpu_ms / (simulated_ms / 1_000.0) if simulated_ms else 0.0
        ),
        coordinator_memory_bytes=point_bytes + report_bytes,
        simulated_ms=simulated_ms,
    )


def main() -> None:
    """CLI entry point: print the overhead breakdown."""
    emit(run_overhead().to_text())


if __name__ == "__main__":
    main()
