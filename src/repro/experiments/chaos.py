"""Chaos harness: randomized control-plane fault schedules, asserted.

The resilience experiment measures recovery under one hand-written
fault schedule.  The chaos harness instead *generates* a schedule per
seed — always including a coordinator crash and a network partition,
optionally a node crash and a second coordinator outage — runs the
full simulation, and asserts safety and liveness properties that must
hold regardless of where the faults landed:

``directory_clean``
    The page directory's internal invariants hold at quiesce and every
    entry agrees with the actual buffer-pool contents
    (:meth:`PageDirectory.audit` returns no problems).

``directory_matches_rebuild``
    The post-fault directory snapshot equals a from-scratch rebuild
    from the pools — anti-entropy left no residue.

``no_dead_epoch_applied``
    No allocation computed under a dead coordinator epoch was applied:
    the deferred-delivery queue has fully drained and every
    coordinator's believed allocation matches what the cluster actually
    granted.  (Stale deliveries are rejected and counted, never
    applied.)

``goal_reattained``
    The goal class re-enters its tolerance band after the last injected
    fault, within the fault-free quiesce tail.

Schedules are drawn with :class:`random.Random` *before* the simulation
starts, so the harness adds no randomness to the runs themselves; all
faults end within ~65 % of the horizon, leaving a quiesce tail for the
properties to stabilize.  Each harness invocation additionally runs one
fault-free pair of simulations and asserts their end states are
bit-identical — the control-plane machinery must cost nothing when no
fault fires.

Run standalone::

    python -m repro.experiments.chaos
"""

from __future__ import annotations

import functools
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.config import SystemConfig
from repro.experiments.parallel import derive_replicate_seed, run_tasks
from repro.experiments.reporting import emit, format_table
from repro.experiments.resilience import GOAL_CLASS, quick_config
from repro.experiments.runner import (
    RESILIENCE_WARMUP_MS,
    Simulation,
    default_workload,
)

#: Fraction of the measured horizon by which every fault has ended;
#: the remainder is the fault-free quiesce tail the properties need.
QUIESCE_FRACTION = 0.35


def generate_schedule(
    seed: int,
    intervals: int,
    interval_ms: float,
    num_nodes: int,
    warmup_ms: float = 0.0,
) -> str:
    """Draw one randomized control-plane fault schedule.

    Deterministic in ``seed`` (a private :class:`random.Random`, drawn
    before any simulation exists).  Always contains one coordinator
    crash and one partition; a node crash and a second coordinator
    outage join with fixed probabilities.  Every
    fault ends before ``1 - QUIESCE_FRACTION`` of the horizon so the
    run quiesces.  ``netloss`` and ``diskslow`` are deliberately
    excluded: message drops make end-state equalities probabilistic,
    data-plane slowdowns can push a scaled-down node past saturation
    (recovery then measures queue draining, not the control plane),
    and both have their own experiment (resilience).
    """
    if intervals < 20:
        raise ValueError("chaos schedules need >= 20 intervals")
    if num_nodes < 2:
        raise ValueError("chaos schedules need >= 2 nodes")
    rng = random.Random(seed)
    horizon = intervals * interval_ms

    def at(fraction: float) -> float:
        return warmup_ms + fraction * horizon

    clauses = [
        # The tentpole fault: coordinator memory dies for 1-3 intervals.
        f"coordcrash@{at(rng.uniform(0.12, 0.28)):.0f}"
        f":dur={rng.randint(1, 3) * interval_ms:.0f}"
    ]
    # Partition 1..(n-1) nodes off the control network for 2-5
    # intervals (>= degraded_after sometimes, so degraded mode and the
    # deferred-allocation path both get exercised across seeds).
    width = rng.randint(1, min(2, num_nodes - 1))
    nodes = ",".join(str(n) for n in sorted(rng.sample(range(num_nodes), width)))
    clauses.append(
        f"partition@{at(rng.uniform(0.32, 0.45)):.0f}"
        f":nodes={nodes}:dur={rng.randint(2, 5) * interval_ms:.0f}"
    )
    if rng.random() < 0.5:
        clauses.append(
            f"crash@{at(rng.uniform(0.30, 0.50)):.0f}"
            f":node=any:restart={interval_ms:.0f}"
        )
    if rng.random() < 0.3:
        # A second, shorter outage late in the fault window; its start
        # (>= 0.50 of the horizon) clears the first outage's end
        # (<= 0.28 + 3/20) for any intervals >= 20.
        clauses.append(
            f"coordcrash@{at(rng.uniform(0.50, 0.58)):.0f}"
            f":dur={interval_ms:.0f}"
        )
    return ";".join(clauses)


def rebuild_directory_state(
    pools: Dict[int, Set[int]]
) -> Dict[int, tuple]:
    """Directory snapshot a from-scratch rebuild of ``pools`` yields.

    The ground truth for the anti-entropy property: for every cached
    page, ``(copy count, lowest holder, sorted holders)`` derived from
    nothing but the actual buffer-pool contents.
    """
    return {
        page_id: (len(holders), min(holders), tuple(sorted(holders)))
        for page_id, holders in pools.items()
        if holders
    }


def run_digest(sim: Simulation) -> tuple:
    """End-state digest for the bit-identity property.

    Covers the clock, the scheduling sequence counter, every RNG
    stream's exact state, the buffer-pool contents, and the
    coordinators' believed allocations — two runs that diverged
    anywhere in their event sequence cannot collide on all of these.
    """
    env = sim.env
    cluster = sim.cluster
    pools = tuple(
        (node_id, tuple(sorted(pages)))
        for node_id, pages in sorted(cluster.pool_contents().items())
    )
    allocations = tuple(
        (class_id, tuple(float(b) for b in coordinator.current_allocation))
        for class_id, coordinator in sorted(
            sim.controller.coordinators.items()
        )
    )
    streams = tuple(sorted(
        (name, stream.getstate())
        for name, stream in cluster.rng._streams.items()
    ))
    return (env._now, env._seq, pools, allocations, streams)


@dataclass
class ChaosSeedResult:
    """Outcome of one seeded chaos run."""

    seed: int
    fault_spec: str
    #: Property name -> held?  (see the module docstring)
    checks: Dict[str, bool] = field(default_factory=dict)
    #: Human-readable details for failed checks.
    failures: List[str] = field(default_factory=list)
    #: Intervals from the last fault to goal reattainment (None =
    #: never within the run).
    reattained_after: Optional[int] = None
    coordinator_crashes: int = 0
    stale_allocations_rejected: int = 0
    allocations_deferred: int = 0
    degraded_entries: int = 0
    degraded_exits: int = 0
    reconciles: int = 0
    reconcile_repairs: int = 0
    final_epoch: int = 0

    @property
    def passed(self) -> bool:
        """True when every property held for this seed."""
        return all(self.checks.values())


@dataclass
class ChaosMatrix:
    """Aggregated chaos results (the CI resilience-matrix artifact)."""

    intervals: int
    goal_ms: float
    results: List[ChaosSeedResult] = field(default_factory=list)
    #: Did the fault-free pair produce bit-identical end states?
    identity_ok: bool = True

    def all_passed(self) -> bool:
        """True when every seed passed and the identity pair matched."""
        return (
            self.identity_ok
            and bool(self.results)
            and all(r.passed for r in self.results)
        )

    def to_text(self) -> str:
        """Human-readable matrix with per-seed property verdicts."""
        rows = []
        for r in self.results:
            failed = sorted(k for k, ok in r.checks.items() if not ok)
            rows.append([
                r.seed,
                r.final_epoch,
                r.stale_allocations_rejected,
                f"{r.degraded_entries}/{r.degraded_exits}",
                f"{r.reconciles}({r.reconcile_repairs})",
                "-" if r.reattained_after is None else r.reattained_after,
                "pass" if r.passed else "FAIL: " + ",".join(failed),
            ])
        table = format_table(
            ["seed", "epoch", "stale rej", "degraded",
             "reconciles(repairs)", "reattain", "properties"],
            rows,
            title=f"Chaos matrix ({len(self.results)} seeds, "
                  f"{self.intervals} intervals)",
        )
        lines = [table]
        for r in self.results:
            for failure in r.failures:
                lines.append(f"  seed {r.seed}: {failure}")
        lines.append(f"no-fault pair bit-identical: {self.identity_ok}")
        lines.append(f"all seeds passed: {self.all_passed()}")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        """The matrix as plain JSON types (the CI artifact payload)."""
        return {
            "intervals": self.intervals,
            "goal_ms": self.goal_ms,
            "identity_ok": self.identity_ok,
            "all_passed": self.all_passed(),
            "results": [
                {
                    "seed": r.seed,
                    "fault_spec": r.fault_spec,
                    "checks": dict(r.checks),
                    "failures": list(r.failures),
                    "reattained_after": r.reattained_after,
                    "coordinator_crashes": r.coordinator_crashes,
                    "stale_allocations_rejected":
                        r.stale_allocations_rejected,
                    "allocations_deferred": r.allocations_deferred,
                    "degraded_entries": r.degraded_entries,
                    "degraded_exits": r.degraded_exits,
                    "reconciles": r.reconciles,
                    "reconcile_repairs": r.reconcile_repairs,
                    "final_epoch": r.final_epoch,
                }
                for r in self.results
            ],
        }

    def save_json(self, path: str) -> None:
        """Write :meth:`to_json` to ``path`` (pretty-printed)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _build_chaos_sim(
    config: SystemConfig,
    goal_ms: float,
    warmup_ms: float,
    arrival_rate_per_node: float,
    seed: int,
    faults: Optional[str],
) -> Simulation:
    workload = default_workload(
        config, goal_ms=goal_ms,
        arrival_rate_per_node=arrival_rate_per_node,
    )
    return Simulation(
        config=config, workload=workload, seed=seed,
        warmup_ms=warmup_ms, faults=faults,
    )


def run_chaos_seed(
    seed: int,
    config: SystemConfig,
    goal_ms: float,
    intervals: int,
    warmup_ms: float,
    arrival_rate_per_node: float,
) -> ChaosSeedResult:
    """Run one seeded chaos schedule and evaluate every property."""
    spec = generate_schedule(
        seed, intervals, config.observation_interval_ms,
        config.num_nodes, warmup_ms,
    )
    sim = _build_chaos_sim(
        config, goal_ms, warmup_ms, arrival_rate_per_node, seed, spec,
    )
    sim.run(intervals=intervals)

    cluster = sim.cluster
    controller = sim.controller
    coordinator = controller.coordinators[GOAL_CLASS]
    result = ChaosSeedResult(seed=seed, fault_spec=spec)

    # Property: directory invariants + agreement with the pools.
    pools = cluster.pool_contents()
    problems = cluster.directory.audit(pools)
    result.checks["directory_clean"] = not problems
    result.failures.extend(problems[:3])

    # Property: snapshot equals a from-scratch rebuild.
    snapshot = cluster.directory.state()
    rebuilt = rebuild_directory_state(pools)
    result.checks["directory_matches_rebuild"] = snapshot == rebuilt
    if snapshot != rebuilt:
        diff = set(snapshot.items()) ^ set(rebuilt.items())
        result.failures.append(
            f"directory snapshot != rebuild ({len(diff)} entries differ)"
        )

    # Property: no dead-epoch allocation was applied.  Direct evidence:
    # the deferred queue drained during the quiesce tail, and every
    # coordinator's belief matches the granted truth (an old-epoch
    # write would have desynchronized them; stale deliveries are
    # rejected and only ever increment the counter).
    pending_empty = not controller._pending
    views_agree = all(
        [float(b) for b in coord.current_allocation]
        == [float(b) for b in cluster.dedicated_bytes(class_id)]
        for class_id, coord in controller.coordinators.items()
    )
    result.checks["no_dead_epoch_applied"] = pending_empty and views_agree
    if not pending_empty:
        result.failures.append(
            f"deferred allocations never delivered: {controller._pending}"
        )
    if not views_agree:
        result.failures.append(
            "coordinator allocation view diverged from the cluster"
        )

    # Property: the goal class re-enters its band after the last fault.
    last_fault_ms = max(
        (f.time_ms for f in sim.fault_injector.injected), default=0.0
    )
    reattained = None
    after = 0
    for record in coordinator.decision_log:
        if record.time <= last_fault_ms:
            continue
        after += 1
        if record.observed_rt is not None and record.satisfied:
            reattained = after
            break
    result.reattained_after = reattained
    result.checks["goal_reattained"] = reattained is not None
    if reattained is None:
        result.failures.append(
            f"goal never reattained after the last fault "
            f"(t={last_fault_ms:g} ms)"
        )

    result.coordinator_crashes = controller.coordinator_crashes
    result.stale_allocations_rejected = (
        controller.stale_allocations_rejected
    )
    result.allocations_deferred = controller.allocations_deferred
    result.degraded_entries = controller.degraded_entries
    result.degraded_exits = controller.degraded_exits
    result.reconciles = cluster.reconciles
    result.reconcile_repairs = cluster.reconcile_repairs
    result.final_epoch = coordinator.epoch
    return result


def _chaos_seed_task(
    config: SystemConfig,
    goal_ms: float,
    intervals: int,
    warmup_ms: float,
    arrival_rate_per_node: float,
    seed: int,
) -> ChaosSeedResult:
    """One chaos seed (module-level: picklable for ``jobs > 1``)."""
    return run_chaos_seed(
        seed, config, goal_ms, intervals, warmup_ms,
        arrival_rate_per_node,
    )


def _identity_pair_ok(
    config: SystemConfig,
    goal_ms: float,
    warmup_ms: float,
    arrival_rate_per_node: float,
    seed: int,
    intervals: int,
) -> bool:
    """Two fault-free runs of the same seed end bit-identically."""
    digests = []
    for _ in range(2):
        sim = _build_chaos_sim(
            config, goal_ms, warmup_ms, arrival_rate_per_node,
            seed, None,
        )
        sim.run(intervals=intervals)
        digests.append(run_digest(sim))
    return digests[0] == digests[1]


def run_chaos(
    seeds: int = 5,
    base_seed: int = 0,
    intervals: int = 40,
    config: Optional[SystemConfig] = None,
    goal_ms: float = 6.0,
    warmup_ms: float = RESILIENCE_WARMUP_MS,
    arrival_rate_per_node: float = 0.02,
    jobs: int = 1,
    identity_intervals: int = 8,
) -> ChaosMatrix:
    """Run the chaos harness and return the property matrix.

    Seed ``i`` runs ``derive_replicate_seed(base_seed, i)`` — the same
    derivation as every replicated experiment — under its own generated
    schedule.  ``jobs`` parallelizes seeds with bit-identical results.
    One fault-free identity pair runs in the parent regardless.
    ``config`` defaults to the full §7.1 environment; pass
    :func:`~repro.experiments.resilience.quick_config` for smoke runs.
    """
    config = config if config is not None else SystemConfig()
    worker = functools.partial(
        _chaos_seed_task, config, goal_ms, intervals, warmup_ms,
        arrival_rate_per_node,
    )
    tasks = [derive_replicate_seed(base_seed, i) for i in range(seeds)]
    results = run_tasks(worker, tasks, jobs=jobs)
    matrix = ChaosMatrix(
        intervals=intervals, goal_ms=goal_ms, results=results,
    )
    matrix.identity_ok = _identity_pair_ok(
        config, goal_ms, warmup_ms, arrival_rate_per_node,
        derive_replicate_seed(base_seed, 0), identity_intervals,
    )
    return matrix


def main() -> None:
    """CLI entry point: print the chaos matrix (quick configuration)."""
    emit(run_chaos(config=quick_config()).to_text())


if __name__ == "__main__":
    main()
