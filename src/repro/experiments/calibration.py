"""Goal-range calibration (§7.3).

To compare experiments, the paper draws response time goals randomly
from ``[goal_min, goal_max]``, where ``goal_min`` is the goal class's
response time when **2/3** of the aggregate cache is dedicated to it
and ``goal_max`` the response time with **1/3** dedicated.  This module
measures those two anchors by running the workload under static
allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.experiments.runner import CALIBRATION_WARMUP_MS
from repro.sim.stats import OnlineStats
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class GoalRange:
    """Calibrated admissible goal interval for a goal class."""

    class_id: int
    goal_min_ms: float  # RT with 2/3 of the aggregate cache dedicated
    goal_max_ms: float  # RT with 1/3 of the aggregate cache dedicated

    def contains(self, goal_ms: float) -> bool:
        """Is ``goal_ms`` satisfiable per the calibration?"""
        return self.goal_min_ms <= goal_ms <= self.goal_max_ms


class _MeanSink:
    """Workload sink recording per-class response time means."""

    def __init__(self):
        self.stats = {}

    def on_arrival(self, node_id, class_id, now):
        pass

    def on_complete(self, node_id, class_id, response_ms, now):
        self.stats.setdefault(class_id, OnlineStats()).add(response_ms)

    def mean(self, class_id) -> float:
        stats = self.stats.get(class_id)
        return stats.mean if stats else 0.0


def measure_static_rt(
    workload: WorkloadSpec,
    class_id: int,
    dedicated_fraction: float,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    policy: str = "cost",
    warmup_ms: float = CALIBRATION_WARMUP_MS,
    measure_ms: float = 90_000.0,
) -> float:
    """Steady-state mean RT of ``class_id`` under a static allocation.

    ``dedicated_fraction`` of every node's reserved memory is dedicated
    to the class for the whole run; the first ``warmup_ms`` are
    discarded.
    """
    if not 0.0 <= dedicated_fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    config = config if config is not None else SystemConfig()
    cluster = Cluster(config, seed=seed, policy=policy)
    generator = WorkloadGenerator(cluster, workload)
    generator.start()
    nbytes = int(dedicated_fraction * config.node.buffer_bytes)
    cluster.apply_allocation(class_id, [nbytes] * config.num_nodes)
    cluster.env.run(until=warmup_ms)
    sink = _MeanSink()
    generator.sink = sink
    cluster.env.run(until=warmup_ms + measure_ms)
    return sink.mean(class_id)


def calibrate_goal_range(
    workload: WorkloadSpec,
    class_id: int = 1,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    policy: str = "cost",
    warmup_ms: float = CALIBRATION_WARMUP_MS,
    measure_ms: float = 90_000.0,
    jobs: int = 1,
) -> GoalRange:
    """Measure the §7.3 goal interval for ``class_id``.

    ``jobs > 1`` runs the two independent static-allocation anchors in
    parallel worker processes; the result is identical to the serial
    path because each anchor is a self-contained seeded simulation.
    """
    tasks = [
        (workload, class_id, fraction, config, seed, policy,
         warmup_ms, measure_ms)
        for fraction in (2.0 / 3.0, 1.0 / 3.0)
    ]
    if jobs > 1:
        from repro.experiments.parallel import run_tasks

        rt_two_thirds, rt_one_third = run_tasks(
            _measure_static_rt_task, tasks, jobs=jobs
        )
    else:
        rt_two_thirds, rt_one_third = (
            _measure_static_rt_task(task) for task in tasks
        )
    low, high = sorted([rt_two_thirds, rt_one_third])
    return GoalRange(class_id=class_id, goal_min_ms=low, goal_max_ms=high)


def _measure_static_rt_task(task) -> float:
    """Module-level worker so calibration anchors can cross processes."""
    return measure_static_rt(*task)
