"""The convergence-speed measurement protocol (§7.1).

The paper measures how many iterations of the feedback-controlled loop
the system needs to find a satisfying partitioning after a goal
change:

* goals are drawn randomly from the calibrated ``[goal_min, goal_max]``
  interval (see :mod:`repro.experiments.calibration`) such that the new
  goal "differs significantly from the current goal";
* after a goal change, the number of observation intervals until the
  first satisfied interval is one *convergence sample*;
* the goal is changed again after four satisfied intervals;
* experiments are replicated until the mean convergence speed is known
  to within 1 iteration at 99 % statistical confidence.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.calibration import GoalRange, calibrate_goal_range
from repro.experiments.parallel import (
    derive_replicate_seed,
    replicate_with_stopping,
)
from repro.experiments.runner import (
    DEFAULT_WARMUP_MS,
    Simulation,
    default_workload,
)
from repro.cluster.config import SystemConfig
from repro.sim.stats import mean_confidence_interval


@dataclass
class ConvergenceSettings:
    """Everything that parameterizes one convergence measurement."""

    skew: float = 0.0
    goal_class: int = 1
    config: SystemConfig = field(default_factory=SystemConfig)
    arrival_rate_per_node: float = 0.02
    policy: str = "cost"
    #: Simulated warm time before the controller starts.
    warmup_ms: float = DEFAULT_WARMUP_MS
    #: Intervals allowed for the initial (cold-start) convergence.
    initial_intervals: int = 40
    #: Goal changes measured per replication.
    goal_changes_per_run: int = 5
    #: Cap on intervals waited for convergence after one goal change.
    max_intervals_per_change: int = 40
    #: Satisfied intervals required before the next goal change.
    satisfied_before_change: int = 4
    #: Minimum relative difference between successive goals.
    min_goal_change: float = 0.25


@dataclass
class ConvergenceResult:
    """Summary of one convergence experiment (one skew value)."""

    skew: float
    mean_iterations: float
    half_width: float
    samples: List[int]
    goal_range: GoalRange


def _next_goal(rng, goal_range: GoalRange, current: float,
               min_change: float) -> float:
    """Random satisfiable goal differing significantly from ``current``."""
    for _ in range(64):
        candidate = rng.uniform(goal_range.goal_min_ms, goal_range.goal_max_ms)
        if abs(candidate - current) > min_change * current:
            return candidate
    # Interval too narrow to differ by min_change: jump to the far end.
    mid = 0.5 * (goal_range.goal_min_ms + goal_range.goal_max_ms)
    return goal_range.goal_max_ms if current < mid else goal_range.goal_min_ms


def measure_convergence_run(
    settings: ConvergenceSettings,
    goal_range: GoalRange,
    seed: int,
) -> List[int]:
    """One replication: convergence samples for several goal changes."""
    workload = default_workload(
        settings.config,
        goal_ms=0.5 * (goal_range.goal_min_ms + goal_range.goal_max_ms),
        skew=settings.skew,
        arrival_rate_per_node=settings.arrival_rate_per_node,
    )
    sim = Simulation(
        config=settings.config,
        workload=workload,
        seed=seed,
        policy=settings.policy,
        warmup_ms=settings.warmup_ms,
    )
    sim.run(intervals=settings.initial_intervals)
    rng = sim.cluster.rng.stream(f"goal-changes/{seed}")
    samples: List[int] = []
    current_goal = sim.controller.goal_of(settings.goal_class)
    for _ in range(settings.goal_changes_per_run):
        current_goal = _next_goal(
            rng, goal_range, current_goal, settings.min_goal_change
        )
        sim.controller.set_goal(settings.goal_class, current_goal)
        iterations = 0
        satisfied_seen = 0
        converged_at: Optional[int] = None
        while iterations < settings.max_intervals_per_change:
            sim.run(intervals=1)
            iterations += 1
            if sim.controller.series[settings.goal_class].satisfied[-1]:
                if converged_at is None:
                    converged_at = iterations
                satisfied_seen += 1
                if satisfied_seen >= settings.satisfied_before_change:
                    break
        samples.append(
            converged_at if converged_at is not None
            else settings.max_intervals_per_change
        )
    return samples


def _convergence_replicate(
    settings: ConvergenceSettings,
    goal_range: GoalRange,
    base_seed: int,
    index: int,
) -> List[int]:
    """Replicate ``index`` of a convergence experiment.

    Module-level (with picklable arguments) so ``functools.partial``
    over it can cross the process boundary when ``jobs > 1``.
    """
    return measure_convergence_run(
        settings, goal_range, seed=derive_replicate_seed(base_seed, index)
    )


def convergence_experiment(
    settings: Optional[ConvergenceSettings] = None,
    goal_range: Optional[GoalRange] = None,
    target_half_width: float = 1.0,
    confidence: float = 0.99,
    min_replications: int = 3,
    max_replications: int = 12,
    base_seed: int = 100,
    jobs: int = 1,
    runner: str = "auto",
) -> ConvergenceResult:
    """Replicated convergence measurement for one skew setting.

    Replication stops once the confidence interval half-width of the
    mean drops below ``target_half_width`` iterations (the paper's
    "accuracy of less than 1 iteration ... with a statistical
    confidence of 99 percent"), or at ``max_replications``.

    ``jobs`` runs replicates on worker processes; the stopping rule is
    applied over the index-ordered prefix of replicate results, so any
    ``jobs`` value yields the same samples and statistics as ``jobs=1``.

    Every replicate here has its own seed, so no two units of work
    share a warm-up trajectory — the fork-server planner
    (:func:`repro.experiments.forkserver.plan_sweep`) therefore always
    resolves this protocol to the cold per-replicate path.  Passing
    ``runner='fork'`` raises rather than silently running cold.
    """
    from repro.experiments.forkserver import plan_sweep

    settings = settings if settings is not None else ConvergenceSettings()
    plan_sweep(
        runner,
        warm_keys=[
            derive_replicate_seed(base_seed, i)
            for i in range(max_replications)
        ],
    )
    if goal_range is None:
        workload = default_workload(
            settings.config,
            skew=settings.skew,
            arrival_rate_per_node=settings.arrival_rate_per_node,
        )
        goal_range = calibrate_goal_range(
            workload,
            class_id=settings.goal_class,
            config=settings.config,
            seed=base_seed,
            policy=settings.policy,
            jobs=jobs,
        )
    worker = functools.partial(
        _convergence_replicate, settings, goal_range, base_seed
    )

    def stop(runs: List[List[int]]) -> bool:
        merged = [sample for run in runs for sample in run]
        _, half = mean_confidence_interval(merged, confidence)
        return half <= target_half_width

    runs = replicate_with_stopping(
        worker, min_replications, max_replications, stop, jobs=jobs
    )
    samples = [sample for run in runs for sample in run]
    mean, half = mean_confidence_interval(samples, confidence)
    return ConvergenceResult(
        skew=settings.skew,
        mean_iterations=mean,
        half_width=half,
        samples=samples,
        goal_range=goal_range,
    )
