"""Run every experiment of the paper and emit a combined report.

This is the one-shot reproduction driver::

    python -m repro.experiments.all            # full protocol (slow)
    python -m repro.experiments.all --quick    # reduced replication

The output contains, for each table and figure, the regenerated rows
next to the paper's published values, ready to be pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from repro.cluster.config import SystemConfig
from repro.experiments.calibration import calibrate_goal_range
from repro.experiments.convergence import ConvergenceSettings
from repro.experiments.figure2 import run_figure2
from repro.experiments.multiclass import run_sharing_sweep
from repro.experiments.overhead import run_overhead
from repro.experiments.runner import default_workload
from repro.experiments import table1, table2


def run_all(quick: bool = False, out=sys.stdout) -> None:
    """Run table1, figure2, table2, §7.4 and §7.5 in sequence."""
    config = SystemConfig()
    t_start = time.time()

    def section(title: str) -> None:
        out.write(f"\n{'=' * 70}\n{title}\n{'=' * 70}\n")

    section("Table 1 — coordinator CPU time per task")
    rows = table1.run_table1(repetitions=20 if quick else 50)
    out.write(table1.to_text(rows) + "\n")

    section("Calibration — goal range (§7.3 anchors)")
    workload = default_workload(config)
    goal_range = calibrate_goal_range(
        workload, class_id=1, config=config, seed=100,
        warmup_ms=30_000 if quick else 60_000,
        measure_ms=45_000 if quick else 90_000,
    )
    out.write(
        f"goal_min (2/3 dedicated): {goal_range.goal_min_ms:.2f} ms\n"
        f"goal_max (1/3 dedicated): {goal_range.goal_max_ms:.2f} ms\n"
    )

    section("Figure 2 — base experiment")
    data = run_figure2(
        seed=1,
        intervals=40 if quick else 80,
        config=config,
        goal_range=goal_range,
    )
    out.write(data.to_text() + "\n")
    out.write(
        f"satisfaction ratio: {data.satisfaction_ratio():.2f}\n"
        f"corr(RT, dedicated memory): {data.rt_tracks_memory():.2f}\n"
    )

    section("Table 2 — convergence speed vs. skew")
    settings = ConvergenceSettings(
        config=config,
        goal_changes_per_run=3 if quick else 5,
    )
    skews = (0.0, 0.5, 1.0) if quick else table2.PAPER_SKEWS
    results = table2.run_table2(
        skews=skews,
        settings=settings,
        target_half_width=1.5 if quick else 1.0,
        max_replications=3 if quick else 12,
        base_seed=100,
    )
    out.write(table2.to_text(results) + "\n")

    section("Section 7.4 — data sharing between goal classes")
    sweep = run_sharing_sweep(
        sharings=(0.0, 0.5, 1.0) if quick else (0.0, 0.25, 0.5, 0.75, 1.0),
        intervals=40 if quick else 60,
    )
    out.write(sweep.to_text() + "\n")
    out.write(
        "k2 dedicated memory decreases with sharing: "
        f"{sweep.k2_dedicated_decreases()}\n"
    )

    section("Section 7.5 — overhead")
    overhead = run_overhead(
        seed=1, intervals=20 if quick else 40, config=config
    )
    out.write(overhead.to_text() + "\n")

    out.write(
        f"\nall experiments finished in "
        f"{time.time() - t_start:.0f} s wall-clock\n"
    )


def main(argv=None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Run every experiment of the paper."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced replication for a fast smoke run",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="also write the report to a file",
    )
    args = parser.parse_args(argv)
    if args.output:
        import io

        buffer = io.StringIO()

        class Tee:
            """Write to stdout and the buffer simultaneously."""

            def write(self, text):
                sys.stdout.write(text)
                buffer.write(text)

        run_all(quick=args.quick, out=Tee())
        with open(args.output, "w") as handle:
            handle.write(buffer.getvalue())
    else:
        run_all(quick=args.quick)


if __name__ == "__main__":
    main()
