"""Process-parallel experiment replication.

The paper's protocols replicate independent seeded simulations — until
a confidence target is met (Table 2) or over a fixed parameter sweep
(§7.4).  Each replicate is a self-contained single-process simulation,
so the only way to use more than one core is to farm replicates out to
worker *processes*; this module provides the shared machinery:

- :func:`derive_replicate_seed` — the deterministic seed of replicate
  ``i``, shared by the serial and parallel paths so ``--jobs N`` can
  never change *which* simulations run;
- :func:`run_tasks` — order-preserving process-pool map (results are
  merged by task index, never by completion order);
- :func:`replicate_with_stopping` — the sequential stopping rule of the
  replication protocol, evaluated over the *index-ordered prefix* of
  results.  Workers may finish in any order and waves may overshoot,
  but the merged prefix is exactly what a serial run would have kept,
  so ``jobs=N`` and ``jobs=1`` produce bit-identical statistics.

``jobs=1`` (the default everywhere) never touches the pool: it runs the
historical in-process loop unchanged.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")

#: Upper bound on worker processes when ``jobs=0`` asks for "all cores".
MAX_AUTO_JOBS = 32


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: 0 means all cores, N means N."""
    if jobs == 0:
        return min(os.cpu_count() or 1, MAX_AUTO_JOBS)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0 for auto), got {jobs}")
    return jobs


def derive_replicate_seed(base_seed: int, index: int) -> int:
    """Deterministic seed of replicate ``index``.

    The contract is intentionally the historical ``base_seed + index``:
    every replication loop in the repository used it before the
    parallel runner existed, so serial results stay bit-exact and the
    parallel path inherits the same seed set.  Named RNG streams
    (:class:`~repro.sim.rng.RandomStreams`) already decorrelate nearby
    integer seeds.
    """
    return base_seed + index


def run_tasks(
    fn: Callable[..., T],
    tasks: Sequence,
    jobs: int = 1,
) -> List[T]:
    """Map a picklable ``fn`` over ``tasks``, merging by task index.

    With ``jobs <= 1`` this is a plain in-process loop.  With more, the
    tasks run on a :class:`ProcessPoolExecutor`; results are collected
    as they complete but slotted by their submission index, so the
    returned list is independent of completion order.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    results: List = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = {
            pool.submit(fn, task): index for index, task in enumerate(tasks)
        }
        for future in as_completed(futures):
            results[futures[future]] = future.result()
    return results


def replicate_with_stopping(
    worker: Callable[[int], T],
    min_replications: int,
    max_replications: int,
    stop: Callable[[List[T]], bool],
    jobs: int = 1,
) -> List[T]:
    """Run replicates 0..max-1 under the sequential stopping rule.

    ``worker(index)`` produces replicate ``index`` (it must be
    picklable for ``jobs > 1`` — use ``functools.partial`` over a
    module-level function).  ``stop(prefix)`` is the pure stopping
    predicate, consulted on every index-ordered prefix of length >=
    ``min_replications``; the first prefix it accepts is returned.

    The parallel path runs replicates in waves of ``jobs``, then
    replays the *same* prefix checks the serial loop would have made —
    extra replicates computed past the stopping point are discarded, so
    the merged result is identical for any ``jobs``.
    """
    if max_replications < 1:
        return []
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        results: List[T] = []
        for index in range(max_replications):
            results.append(worker(index))
            if len(results) >= min_replications and stop(results):
                break
        return results

    completed: dict = {}
    with ProcessPoolExecutor(
        max_workers=min(jobs, max_replications)
    ) as pool:
        next_index = 0
        while next_index < max_replications:
            wave = range(
                next_index, min(next_index + jobs, max_replications)
            )
            futures = {pool.submit(worker, i): i for i in wave}
            for future in as_completed(futures):
                completed[futures[future]] = future.result()
            next_index = wave[-1] + 1
            # Replay the serial prefix checks over everything done so
            # far (order-independent: keyed by replicate index).
            prefix: List[T] = []
            for index in range(next_index):
                prefix.append(completed[index])
                if len(prefix) >= min_replications and stop(prefix):
                    return prefix
    return [completed[index] for index in range(max_replications)]
