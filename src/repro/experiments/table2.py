"""Table 2 — convergence speed under varying access skew (§7.3).

For skew theta in {0, 0.25, 0.5, 0.75, 1} the experiment measures the
mean number of feedback-loop iterations needed to adapt to a goal
change.  Higher skew bends the true response time surface away from a
hyperplane, so the linear approximation needs more iterations — the
paper reports 1.84 iterations at theta = 0 rising monotonically to
3.95 at theta = 1.

Run standalone::

    python -m repro.experiments.table2
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.cluster.config import SystemConfig
from repro.experiments.convergence import (
    ConvergenceResult,
    ConvergenceSettings,
    convergence_experiment,
)
from repro.experiments.reporting import emit, format_table

#: The skew values of the paper's Table 2.
PAPER_SKEWS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: The paper's measured iteration counts, for comparison.
PAPER_TABLE2 = {0.0: 1.84, 0.25: 2.41, 0.5: 3.55, 0.75: 3.88, 1.0: 3.95}


def run_table2(
    skews: Sequence[float] = PAPER_SKEWS,
    settings: Optional[ConvergenceSettings] = None,
    target_half_width: float = 1.0,
    max_replications: int = 12,
    base_seed: int = 100,
    jobs: int = 1,
    runner: str = "auto",
) -> List[ConvergenceResult]:
    """Measure convergence speed for every skew value.

    ``jobs`` parallelizes the replicates *within* each skew point; the
    sequential stopping rule is unchanged, so results are identical to
    ``jobs=1`` for any value.  Skew reshapes the page-access
    distribution during warm-up and every replicate is independently
    seeded, so there is no warm state to share — ``runner`` is passed
    down to :func:`convergence_experiment`, whose planner always
    resolves this protocol to the cold path (``runner='fork'`` raises).
    """
    settings = settings if settings is not None else ConvergenceSettings()
    results = []
    for skew in skews:
        result = convergence_experiment(
            settings=replace(settings, skew=skew),
            target_half_width=target_half_width,
            max_replications=max_replications,
            base_seed=base_seed,
            jobs=jobs,
            runner=runner,
        )
        results.append(result)
    return results


def to_text(results: List[ConvergenceResult]) -> str:
    """Render measured convergence next to the paper's values."""
    rows = [
        [
            r.skew,
            r.mean_iterations,
            r.half_width,
            len(r.samples),
            PAPER_TABLE2.get(r.skew, "-"),
        ]
        for r in results
    ]
    return format_table(
        ["skew", "iterations", "ci half-width", "samples", "paper"],
        rows,
        title="Table 2: convergence speed under varying skew",
    )


def main() -> None:
    """CLI entry point: print the measured Table 2."""
    config = SystemConfig()
    settings = ConvergenceSettings(config=config)
    emit(to_text(run_table2(settings=settings)))


if __name__ == "__main__":
    main()
