"""Scaling studies: node count and operation complexity (§7.2).

The paper reports that the base-experiment behaviour — fast convergence
to a satisfying partitioning — held "for all experiments conducted,
including experiments with vastly more complex operations, dynamically
changing workloads or a larger number of nodes".  These runs check the
two structural axes:

- **node count**: the optimization problem grows one dimension per
  node (the window needs N + 1 independent points before the LP can
  fire), so warm-up lengthens but convergence must still happen;
- **operation complexity**: more page accesses per operation raise
  response times but do not change the feedback structure.

Configurations are independent seeded simulations, so both sweeps
accept ``jobs`` and farm points out to worker processes through
:mod:`repro.experiments.parallel` — results are merged by point index
and are identical for any ``jobs`` value.  Node counts up to 64 are
supported (and exercised by ``repro scaling --nodes 16 32 64``); they
lean on the allocation-lean hot-path structures, which keep per-access
cost roughly flat as the cluster grows.

Run standalone::

    python -m repro.experiments.scaling
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.cluster.config import SystemConfig
from repro.experiments.parallel import run_tasks
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import Simulation, default_workload


@dataclass
class ScalingPoint:
    """Outcome of one scaling configuration."""

    label: str
    num_nodes: int
    pages_per_op: int
    first_satisfied: Optional[int]
    satisfaction_ratio: float
    mean_rt_tail_ms: float


#: One sweep configuration, picklable for the process-pool path:
#: (label, config, pages_per_op, goal_scale, seed, intervals,
#: telemetry directory or None).
_PointTask = Tuple[str, SystemConfig, int, float, int, int,
                   Optional[str]]


def _run_point(task: _PointTask) -> ScalingPoint:
    (label, config, pages_per_op, goal_scale, seed, intervals,
     telemetry) = task
    # Calibrate a modest, reachable goal for this configuration: run a
    # probe with half the cache statically dedicated.
    from repro.experiments.calibration import measure_static_rt

    workload = default_workload(config)
    workload = _with_pages_per_op(workload, pages_per_op)
    probe_rt = measure_static_rt(
        workload, 1, 0.5, config, seed=seed,
        warmup_ms=20_000, measure_ms=30_000,
    )
    goal_ms = probe_rt * goal_scale
    workload = workload.with_goal(1, goal_ms)
    sim = Simulation(
        config=config, workload=workload, seed=seed,
        warmup_ms=20_000.0, telemetry=telemetry,
    )
    sim.run(intervals=intervals)
    satisfied = sim.satisfied(1)
    rts = sim.controller.series[1].observed_rt.values
    tail = rts[-max(len(rts) // 3, 1):]
    sim.export_telemetry()
    return ScalingPoint(
        label=label,
        num_nodes=config.num_nodes,
        pages_per_op=pages_per_op,
        first_satisfied=(
            satisfied.index(True) + 1 if any(satisfied) else None
        ),
        satisfaction_ratio=(
            sum(satisfied) / len(satisfied) if satisfied else 0.0
        ),
        mean_rt_tail_ms=sum(tail) / len(tail) if tail else 0.0,
    )


def _with_pages_per_op(workload, pages_per_op: int):
    """Change operation complexity at constant page-access load.

    The arrival rate scales inversely with the per-operation page
    count, so heavier operations do not overload the open system —
    only the response time structure changes.
    """
    from dataclasses import replace as dreplace

    from repro.workload.spec import WorkloadSpec

    return WorkloadSpec(classes=[
        dreplace(
            c,
            pages_per_op=pages_per_op,
            arrival_rate_per_node=(
                c.arrival_rate_per_node * c.pages_per_op / pages_per_op
            ),
        )
        for c in workload.classes
    ])


def _point_dir(telemetry: Optional[str], label: str) -> Optional[str]:
    if telemetry is None:
        return None
    return os.path.join(telemetry, label)


def _merge_points(telemetry: Optional[str], labels: List[str]) -> None:
    if telemetry is None:
        return
    from repro.telemetry.exporters import merge_point_dirs

    merge_point_dirs(
        telemetry,
        [(label, _point_dir(telemetry, label)) for label in labels],
    )


def run_node_scaling(
    node_counts: Sequence[int] = (3, 5),
    base_config: Optional[SystemConfig] = None,
    seed: int = 7,
    intervals: int = 50,
    goal_scale: float = 1.0,
    jobs: int = 1,
    telemetry: Optional[str] = None,
) -> List[ScalingPoint]:
    """Convergence behaviour as the cluster grows."""
    base = base_config if base_config is not None else SystemConfig()
    labels = [f"nodes{n}" for n in node_counts]
    tasks: List[_PointTask] = [
        (f"{n} nodes", replace(base, num_nodes=n), 4,
         goal_scale, seed, intervals, _point_dir(telemetry, label))
        for n, label in zip(node_counts, labels)
    ]
    points = run_tasks(_run_point, tasks, jobs=jobs)
    _merge_points(telemetry, labels)
    return points


def run_complexity_scaling(
    pages_per_op: Sequence[int] = (4, 8, 16),
    base_config: Optional[SystemConfig] = None,
    seed: int = 7,
    intervals: int = 50,
    goal_scale: float = 1.0,
    jobs: int = 1,
    telemetry: Optional[str] = None,
) -> List[ScalingPoint]:
    """Convergence behaviour as operations get more complex."""
    config = base_config if base_config is not None else SystemConfig()
    labels = [f"ppo{ppo}" for ppo in pages_per_op]
    tasks: List[_PointTask] = [
        (f"{ppo} pages/op", config, ppo, goal_scale, seed, intervals,
         _point_dir(telemetry, label))
        for ppo, label in zip(pages_per_op, labels)
    ]
    points = run_tasks(_run_point, tasks, jobs=jobs)
    _merge_points(telemetry, labels)
    return points


def to_text(points: List[ScalingPoint], title: str) -> str:
    """Render scaling points as a table."""
    return format_table(
        ["configuration", "nodes", "pages/op", "first satisfied",
         "satisfied ratio", "tail mean rt (ms)"],
        [
            [p.label, p.num_nodes, p.pages_per_op,
             p.first_satisfied if p.first_satisfied else "never",
             p.satisfaction_ratio, p.mean_rt_tail_ms]
            for p in points
        ],
        title=title,
    )


def run_scaling(
    node_counts: Sequence[int] = (3, 5),
    pages_per_op: Sequence[int] = (4, 8, 16),
    seed: int = 7,
    intervals: int = 50,
    goal_scale: float = 1.0,
    jobs: int = 1,
    telemetry: Optional[str] = None,
) -> str:
    """Run both sweeps and render them; the ``repro scaling`` backend.

    An empty ``node_counts`` or ``pages_per_op`` skips that axis, so a
    smoke run can drive a single large-cluster point without paying for
    the other sweep.  ``telemetry`` exports per-point artifacts under
    ``<dir>/nodes/`` and ``<dir>/complexity/`` respectively.
    """
    sections = []
    if node_counts:
        sections.append(to_text(
            run_node_scaling(
                node_counts=node_counts, seed=seed, intervals=intervals,
                goal_scale=goal_scale, jobs=jobs,
                telemetry=_point_dir(telemetry, "nodes"),
            ),
            "Scaling: number of nodes",
        ))
    if pages_per_op:
        sections.append(to_text(
            run_complexity_scaling(
                pages_per_op=pages_per_op, seed=seed,
                intervals=intervals, goal_scale=goal_scale, jobs=jobs,
                telemetry=_point_dir(telemetry, "complexity"),
            ),
            "Scaling: operation complexity",
        ))
    return "\n\n".join(sections)


def main() -> None:
    """CLI entry point: run both scaling axes."""
    emit(run_scaling())


if __name__ == "__main__":
    main()
