"""Scaling studies: node count and operation complexity (§7.2).

The paper reports that the base-experiment behaviour — fast convergence
to a satisfying partitioning — held "for all experiments conducted,
including experiments with vastly more complex operations, dynamically
changing workloads or a larger number of nodes".  These runs check the
two structural axes:

- **node count**: the optimization problem grows one dimension per
  node (the window needs N + 1 independent points before the LP can
  fire), so warm-up lengthens but convergence must still happen;
- **operation complexity**: more page accesses per operation raise
  response times but do not change the feedback structure.

Run standalone::

    python -m repro.experiments.scaling
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.config import SystemConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import Simulation, default_workload


@dataclass
class ScalingPoint:
    """Outcome of one scaling configuration."""

    label: str
    num_nodes: int
    pages_per_op: int
    first_satisfied: Optional[int]
    satisfaction_ratio: float
    mean_rt_tail_ms: float


def _run_point(
    label: str,
    config: SystemConfig,
    pages_per_op: int,
    goal_scale: float,
    seed: int,
    intervals: int,
) -> ScalingPoint:
    # Calibrate a modest, reachable goal for this configuration: run a
    # probe with half the cache statically dedicated.
    from repro.experiments.calibration import measure_static_rt

    workload = default_workload(config)
    workload = _with_pages_per_op(workload, pages_per_op)
    probe_rt = measure_static_rt(
        workload, 1, 0.5, config, seed=seed,
        warmup_ms=20_000, measure_ms=30_000,
    )
    goal_ms = probe_rt * goal_scale
    workload = workload.with_goal(1, goal_ms)
    sim = Simulation(
        config=config, workload=workload, seed=seed,
        warmup_ms=20_000.0,
    )
    sim.run(intervals=intervals)
    satisfied = sim.satisfied(1)
    rts = sim.controller.series[1].observed_rt.values
    tail = rts[-max(len(rts) // 3, 1):]
    return ScalingPoint(
        label=label,
        num_nodes=config.num_nodes,
        pages_per_op=pages_per_op,
        first_satisfied=(
            satisfied.index(True) + 1 if any(satisfied) else None
        ),
        satisfaction_ratio=(
            sum(satisfied) / len(satisfied) if satisfied else 0.0
        ),
        mean_rt_tail_ms=sum(tail) / len(tail) if tail else 0.0,
    )


def _with_pages_per_op(workload, pages_per_op: int):
    """Change operation complexity at constant page-access load.

    The arrival rate scales inversely with the per-operation page
    count, so heavier operations do not overload the open system —
    only the response time structure changes.
    """
    from dataclasses import replace as dreplace

    from repro.workload.spec import WorkloadSpec

    return WorkloadSpec(classes=[
        dreplace(
            c,
            pages_per_op=pages_per_op,
            arrival_rate_per_node=(
                c.arrival_rate_per_node * c.pages_per_op / pages_per_op
            ),
        )
        for c in workload.classes
    ])


def run_node_scaling(
    node_counts: Sequence[int] = (3, 5),
    base_config: Optional[SystemConfig] = None,
    seed: int = 7,
    intervals: int = 50,
    goal_scale: float = 1.0,
) -> List[ScalingPoint]:
    """Convergence behaviour as the cluster grows."""
    base = base_config if base_config is not None else SystemConfig()
    points = []
    for n in node_counts:
        config = replace(base, num_nodes=n)
        points.append(
            _run_point(
                f"{n} nodes", config, pages_per_op=4,
                goal_scale=goal_scale, seed=seed, intervals=intervals,
            )
        )
    return points


def run_complexity_scaling(
    pages_per_op: Sequence[int] = (4, 8, 16),
    base_config: Optional[SystemConfig] = None,
    seed: int = 7,
    intervals: int = 50,
    goal_scale: float = 1.0,
) -> List[ScalingPoint]:
    """Convergence behaviour as operations get more complex."""
    config = base_config if base_config is not None else SystemConfig()
    return [
        _run_point(
            f"{ppo} pages/op", config, pages_per_op=ppo,
            goal_scale=goal_scale, seed=seed, intervals=intervals,
        )
        for ppo in pages_per_op
    ]


def to_text(points: List[ScalingPoint], title: str) -> str:
    """Render scaling points as a table."""
    return format_table(
        ["configuration", "nodes", "pages/op", "first satisfied",
         "satisfied ratio", "tail mean rt (ms)"],
        [
            [p.label, p.num_nodes, p.pages_per_op,
             p.first_satisfied if p.first_satisfied else "never",
             p.satisfaction_ratio, p.mean_rt_tail_ms]
            for p in points
        ],
        title=title,
    )


def main() -> None:
    """CLI entry point: run both scaling axes."""
    print(to_text(run_node_scaling(), "Scaling: number of nodes"))
    print()
    print(to_text(
        run_complexity_scaling(), "Scaling: operation complexity"
    ))


if __name__ == "__main__":
    main()
