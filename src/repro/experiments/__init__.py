"""Experiment harness reproducing every table and figure of the paper.

- :mod:`repro.experiments.table1` — coordinator CPU times (Table 1).
- :mod:`repro.experiments.figure2` — the base experiment (Figure 2).
- :mod:`repro.experiments.table2` — convergence vs. skew (Table 2).
- :mod:`repro.experiments.multiclass` — §7.4 multi-goal-class study.
- :mod:`repro.experiments.overhead` — §7.5 overhead accounting.
- :mod:`repro.experiments.calibration` — the §7.3 goal-range anchors.
- :mod:`repro.experiments.convergence` — the §7.1 measurement protocol.
- :mod:`repro.experiments.forkserver` — warm-state fork server for sweeps.
"""

from repro.experiments.calibration import (
    GoalRange,
    calibrate_goal_range,
    measure_static_rt,
)
from repro.experiments.forkserver import (
    ForkUnavailableError,
    WarmDelta,
    WarmGroup,
    WarmupInvarianceError,
    apply_delta,
    plan_sweep,
    run_warm_groups,
    run_warm_sweep,
    supports_fork,
    warmup_invariant,
)
from repro.experiments.convergence import (
    ConvergenceResult,
    ConvergenceSettings,
    convergence_experiment,
    measure_convergence_run,
)
from repro.experiments.figure2 import (
    Figure2Data,
    GoalSweepData,
    run_figure2,
    run_goal_sweep,
)
from repro.experiments.multiclass import (
    MulticlassGoalSweep,
    MulticlassResult,
    SharingPoint,
    doubled_cache_config,
    multiclass_workload,
    run_sharing_point,
    run_sharing_sweep,
)
from repro.experiments.overhead import OverheadResult, run_overhead
from repro.experiments.runner import (
    CALIBRATION_WARMUP_MS,
    DEFAULT_WARMUP_MS,
    RESILIENCE_WARMUP_MS,
    Simulation,
    build_base_experiment,
    default_workload,
)
from repro.experiments.scaling import (
    ScalingPoint,
    run_complexity_scaling,
    run_node_scaling,
)
from repro.experiments.table1 import (
    PAPER_TABLE1,
    Table1Row,
    measure_row,
    run_table1,
)
from repro.experiments.table2 import PAPER_TABLE2, run_table2

__all__ = [
    "CALIBRATION_WARMUP_MS",
    "ConvergenceResult",
    "ConvergenceSettings",
    "DEFAULT_WARMUP_MS",
    "Figure2Data",
    "ForkUnavailableError",
    "GoalRange",
    "GoalSweepData",
    "MulticlassGoalSweep",
    "MulticlassResult",
    "OverheadResult",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "RESILIENCE_WARMUP_MS",
    "ScalingPoint",
    "SharingPoint",
    "Simulation",
    "Table1Row",
    "WarmDelta",
    "WarmGroup",
    "WarmupInvarianceError",
    "apply_delta",
    "run_complexity_scaling",
    "run_node_scaling",
    "build_base_experiment",
    "calibrate_goal_range",
    "convergence_experiment",
    "default_workload",
    "doubled_cache_config",
    "measure_convergence_run",
    "measure_row",
    "measure_static_rt",
    "multiclass_workload",
    "plan_sweep",
    "run_figure2",
    "run_goal_sweep",
    "run_overhead",
    "run_sharing_point",
    "run_sharing_sweep",
    "run_table1",
    "run_table2",
    "run_warm_groups",
    "run_warm_sweep",
    "supports_fork",
    "warmup_invariant",
]
