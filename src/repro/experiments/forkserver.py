"""Warm-state fork server: amortize simulation warm-up across sweep points.

Every sweep in this repository pays a simulated warm-up per point per
replicate before the controller's feedback loop is even exercised —
for short-horizon sweeps the dominant share of wall-clock.  The warm-up
trajectory is, by construction, independent of the response time
goals, the goal tolerance, and the controller policy knobs: the
controller only *observes* during warm-up (its agents record arrivals
and completions), and none of those parameters influence the workload
generator, the cluster, or any RNG stream before the controller is
activated.  Sweep points that differ only in such parameters can
therefore share one warmed simulation.

A warmed :class:`~repro.experiments.runner.Simulation` is not
picklable — it holds live generator coroutines, the event heap, heat
trackers, the page directory, and primed RNG streams — so the sharing
mechanism is ``os.fork()``: the parent process builds and warms the
simulation **once**, then forks one child per sweep point.  Each child
continues from the copy-on-write memory image (exact, so results are
bit-identical to a cold per-point run), applies its point-specific
:class:`WarmDelta`, runs the measured horizon, and streams its pickled
result back over a pipe.  ``jobs`` children run concurrently, so fork
fan-out composes with the process-parallel replication of
:mod:`repro.experiments.parallel`.

Safety is enforced by a two-stage warm-up-invariance guard:

* **statically** — :func:`plan_sweep` only selects the fork path when
  every delta is declared warm-up-invariant (the structured
  :class:`WarmDelta` fields are invariant by construction; arbitrary
  ``configure`` callables must be vetted with the
  :func:`warmup_invariant` decorator) and when the sweep actually
  shares warm state (more than one point per warm key);
* **at runtime** — :func:`apply_delta` fingerprints the simulation
  (clock, event-heap occupancy, scheduling sequence, every RNG-stream
  state) before and after the delta and raises
  :class:`WarmupInvarianceError` on any perturbation.

On platforms without ``os.fork`` (or when the plan decides the points
do not share warm state) the same sweeps fall back to the cold
per-point path — gracefully, never as a failure.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import selectors
import traceback
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import Simulation

#: Chunk size for draining child result pipes.
_PIPE_CHUNK = 1 << 16


class WarmupInvarianceError(RuntimeError):
    """A sweep-point delta touched state that feeds the warm-up."""


class ForkUnavailableError(RuntimeError):
    """``runner='fork'`` was demanded but the fork path cannot run."""


def supports_fork() -> bool:
    """Can this platform run the fork path at all?"""
    return hasattr(os, "fork") and hasattr(os, "pipe")


def warmup_invariant(fn: Callable) -> Callable:
    """Mark a ``configure`` callable as vetted warm-up-invariant.

    The contract: the callable may mutate controller and coordinator
    state (goals, tolerances, policy knobs, coordinator subclasses) but
    must not advance the clock, schedule or cancel events, draw from
    any RNG stream, or touch the cluster, workload, or generator.  The
    runtime fingerprint guard verifies the observable half of this.
    """
    fn.__warmup_invariant__ = True
    return fn


@dataclass(frozen=True)
class WarmDelta:
    """A warm-up-invariant description of one sweep point.

    ``goals`` maps goal class ids to new response time goals (applied
    via ``controller.set_goal``, which is state-equivalent to having
    constructed the simulation with that goal because coordinators are
    untouched during warm-up).  ``tolerance_factory`` replaces every
    coordinator's goal tolerance.  ``configure`` is an escape hatch for
    controller-policy deltas (e.g. swapping in baseline coordinators);
    it must be vetted with :func:`warmup_invariant` or the planner
    refuses to fork.  ``tag`` is an opaque label carried through for
    the caller's bookkeeping.
    """

    goals: Tuple[Tuple[int, float], ...] = ()
    tolerance_factory: Optional[Callable[[], Any]] = None
    configure: Optional[Callable[[Simulation], None]] = None
    tag: Any = None

    @staticmethod
    def for_goals(goals: Mapping[int, float], **kwargs) -> "WarmDelta":
        """Delta that re-targets the given goal classes."""
        return WarmDelta(goals=tuple(sorted(goals.items())), **kwargs)

    @property
    def statically_invariant(self) -> bool:
        """True when every field is warm-up-invariant by construction."""
        return self.configure is None or bool(
            getattr(self.configure, "__warmup_invariant__", False)
        )


def telemetry_delta(delta: WarmDelta, outdir: str) -> WarmDelta:
    """Extend ``delta`` so its sweep point exports telemetry to ``outdir``.

    ``Simulation.set_telemetry`` only records the spec — the pipeline
    attaches at activation and files open at export, both inside the
    forked child — so the added ``configure`` is warm-up-invariant and
    each child writes its own per-point sink post-fork.  The cold path
    applies the same delta, giving bit-identical artifacts.
    """
    base = delta.configure

    @warmup_invariant
    def configure(sim: Simulation) -> None:
        if base is not None:
            base(sim)
        sim.set_telemetry(outdir)

    return dataclasses.replace(delta, configure=configure)


def _measure_nothing(sim: Simulation) -> None:
    """Default measure: discard the simulation and return nothing."""
    return None


@dataclass
class WarmGroup:
    """One warm-state group: points sharing a single warmed parent.

    ``build`` constructs the (un-warmed) :class:`Simulation` shared by
    all points of the group; ``deltas`` are the per-point adjustments;
    ``measure`` runs the measured horizon on the (warmed, adjusted)
    simulation and returns a **picklable** result — it crosses a pipe
    on the fork path and a process boundary on parallel cold paths.
    """

    build: Callable[[], Simulation]
    deltas: Sequence[WarmDelta] = field(default_factory=list)
    measure: Callable[[Simulation], Any] = _measure_nothing


# -- the warm-up-invariance guard ------------------------------------


def warm_fingerprint(sim: Simulation) -> tuple:
    """Snapshot of everything a warm-up-invariant delta must not touch.

    Covers the simulation clock, the event-heap occupancy, the global
    scheduling sequence counter, and the exact state of every named RNG
    stream.  Any delta that advances time, schedules events, or draws
    randomness changes this fingerprint.
    """
    env = sim.env
    streams = sim.cluster.rng._streams
    return (
        env._now,
        env.pending_events,
        env._seq,
        tuple(sorted(
            (name, stream.getstate())
            for name, stream in streams.items()
        )),
    )


def apply_delta(
    sim: Simulation, delta: WarmDelta, guard: bool = True
) -> None:
    """Apply a sweep-point delta to a warmed, not-yet-active simulation.

    Raises :class:`WarmupInvarianceError` when the simulation is in the
    wrong phase (warm-up must precede controller activation — a delta
    after activation could never have produced a cold-path-identical
    run) or when applying the delta perturbs the warm fingerprint.
    """
    if sim.active:
        raise WarmupInvarianceError(
            "sweep-point delta applied after controller activation; "
            "deltas must land between warm() and activate()"
        )
    if not sim.warmed:
        raise WarmupInvarianceError(
            "sweep-point delta applied before warm-up; warm() first so "
            "the guard can certify the delta against the warmed state"
        )
    before = warm_fingerprint(sim) if guard else None
    for class_id, goal_ms in delta.goals:
        sim.controller.set_goal(class_id, goal_ms)
    if delta.tolerance_factory is not None:
        for coordinator in sim.controller.coordinators.values():
            coordinator.tolerance = delta.tolerance_factory()
    if delta.configure is not None:
        delta.configure(sim)
    if guard and warm_fingerprint(sim) != before:
        raise WarmupInvarianceError(
            "sweep-point delta perturbed warm state (clock, event "
            "heap, or an RNG stream); it would not reproduce the "
            "cold-path run and cannot be forked"
        )


# -- planning ---------------------------------------------------------


def _all_statically_invariant(
    deltas: Sequence["WarmDelta"],
) -> bool:
    """Vet each *unique* ``configure`` callable once, not once per point.

    Sweeps repeat a handful of delta shapes across replicates (the
    figure-2 sweep passes ``deltas * len(seeds)``), so the planner
    caches the vetting verdict per callable — the only field the
    static check inspects — instead of re-evaluating the full list
    point by point.  Deltas without a ``configure`` (the common case)
    are invariant by construction and skip the cache entirely.
    """
    verdicts: Dict[int, bool] = {}
    for delta in deltas:
        fn = delta.configure
        if fn is None:
            continue
        key = id(fn)
        verdict = verdicts.get(key)
        if verdict is None:
            verdict = bool(getattr(fn, "__warmup_invariant__", False))
            verdicts[key] = verdict
        if not verdict:
            return False
    return True


def plan_sweep(
    runner: str,
    warm_keys: Sequence,
    deltas: Optional[Sequence[WarmDelta]] = None,
) -> str:
    """Resolve ``runner`` ('auto' | 'fork' | 'cold') to a concrete mode.

    ``warm_keys`` carries one hashable key per sweep point; points
    share a warmed parent exactly when their keys are equal.  The fork
    path is selected only when the platform supports ``os.fork``, at
    least one key occurs more than once (otherwise there is no warm-up
    to amortize), and every delta is statically warm-up-invariant.
    ``runner='fork'`` raises :class:`ForkUnavailableError` instead of
    silently degrading; ``'auto'`` falls back to ``'cold'``.
    """
    if runner not in ("auto", "fork", "cold"):
        raise ValueError(f"unknown runner {runner!r}")
    if runner == "cold":
        return "cold"
    reason = None
    if not supports_fork():
        reason = "platform has no os.fork"
    elif deltas is not None and not _all_statically_invariant(deltas):
        reason = (
            "a delta carries a configure callable not vetted with "
            "@warmup_invariant"
        )
    else:
        keys = list(warm_keys)
        if len(keys) == len(set(keys)):
            reason = (
                "no two sweep points share a warm key, so there is no "
                "warm-up to amortize (e.g. every replicate has its own "
                "seed)"
            )
    if reason is None:
        return "fork"
    if runner == "fork":
        raise ForkUnavailableError(f"fork runner unavailable: {reason}")
    return "cold"


# -- execution --------------------------------------------------------


def _run_cold_point(
    build: Callable[[], Simulation],
    delta: WarmDelta,
    measure: Callable[[Simulation], Any],
) -> Any:
    """The cold per-point path: fresh simulation, same delta contract."""
    sim = build()
    sim.warm()
    apply_delta(sim, delta)
    return measure(sim)


def _child_main(
    write_fd: int,
    sim: Simulation,
    delta: WarmDelta,
    measure: Callable[[Simulation], Any],
) -> None:
    """Body of a forked sweep-point child; never returns.

    The child continues from the parent's warmed memory image, applies
    its delta, runs the measured horizon, and pickles the result back.
    Failures travel the same pipe as a (kind, traceback) payload so the
    parent can re-raise with full context.  ``os._exit`` skips atexit
    handlers and buffer flushes that belong to the parent.
    """
    try:
        try:
            apply_delta(sim, delta)
            payload = pickle.dumps(
                ("ok", measure(sim)), protocol=pickle.HIGHEST_PROTOCOL
            )
        except WarmupInvarianceError as exc:
            payload = pickle.dumps(("invariance", str(exc)))
        except BaseException:
            payload = pickle.dumps(("error", traceback.format_exc()))
        written = 0
        while written < len(payload):
            written += os.write(write_fd, payload[written:])
        os.close(write_fd)
    finally:
        os._exit(0)


def _fork_group(
    sim: Simulation,
    deltas: Sequence[WarmDelta],
    measure: Callable[[Simulation], Any],
    jobs: int,
) -> List[Any]:
    """Fork one child per delta off the warmed ``sim``, ``jobs`` at a time.

    Results are slotted by point index, never by completion order, so
    the returned list is independent of scheduling — the same contract
    as :func:`repro.experiments.parallel.run_tasks`.  Pipes are drained
    while children run (a child producing more than the pipe buffer
    would otherwise deadlock against a parent waiting on exit).
    """
    results: List[Any] = [None] * len(deltas)
    sel = selectors.DefaultSelector()
    pending: dict = {}  # read fd -> (index, pid, bytearray)

    def reap(fd: int) -> None:
        index, pid, buf = pending.pop(fd)
        sel.unregister(fd)
        os.close(fd)
        _, status = os.waitpid(pid, 0)
        if not buf:
            raise RuntimeError(
                f"forked sweep point {index} died without a result "
                f"(wait status {status})"
            )
        kind, value = pickle.loads(bytes(buf))
        if kind == "invariance":
            raise WarmupInvarianceError(value)
        if kind == "error":
            raise RuntimeError(
                f"forked sweep point {index} failed:\n{value}"
            )
        results[index] = value

    def drain_once() -> None:
        for key, _ in sel.select():
            fd = key.fd
            chunk = os.read(fd, _PIPE_CHUNK)
            if chunk:
                pending[fd][2].extend(chunk)
            else:
                reap(fd)

    try:
        for index, delta in enumerate(deltas):
            while len(pending) >= jobs:
                drain_once()
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                os.close(read_fd)
                # Inherited read ends of sibling pipes are harmless for
                # the parent's EOF detection (that hangs off the write
                # ends), and os._exit drops them with the process.
                _child_main(write_fd, sim, delta, measure)
            os.close(write_fd)
            pending[read_fd] = (index, pid, bytearray())
            sel.register(read_fd, selectors.EVENT_READ)
        while pending:
            drain_once()
    finally:
        for fd, (_, pid, _) in list(pending.items()):
            sel.unregister(fd)
            os.close(fd)
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
        pending.clear()
        sel.close()
    return results


def run_warm_groups(
    groups: Sequence[WarmGroup],
    jobs: int = 1,
    runner: str = "auto",
) -> List[List[Any]]:
    """Run every warm group, forking within groups of more than one point.

    Each group warms its parent simulation once; its points then run as
    copy-on-write forks, up to ``jobs`` concurrently.  Singleton groups
    (nothing to amortize) and ``runner='cold'`` use the cold per-point
    path, which applies the *same* delta contract to a fresh simulation
    — so the two paths are bit-identical by construction and every
    group returns its results in point order.
    """
    jobs = resolve_jobs(jobs)
    warm_keys = [
        key for key, group in enumerate(groups) for _ in group.deltas
    ]
    deltas = [delta for group in groups for delta in group.deltas]
    mode = plan_sweep(runner, warm_keys, deltas)
    results: List[List[Any]] = []
    for group in groups:
        if mode == "cold" or len(group.deltas) <= 1:
            results.append([
                _run_cold_point(group.build, delta, group.measure)
                for delta in group.deltas
            ])
            continue
        sim = group.build()
        sim.warm()
        results.append(
            _fork_group(sim, group.deltas, group.measure, jobs)
        )
    return results


def run_warm_sweep(
    build: Callable[[], Simulation],
    deltas: Sequence[WarmDelta],
    measure: Callable[[Simulation], Any],
    jobs: int = 1,
    runner: str = "auto",
) -> List[Any]:
    """Single-group convenience wrapper around :func:`run_warm_groups`."""
    [results] = run_warm_groups(
        [WarmGroup(build=build, deltas=list(deltas), measure=measure)],
        jobs=jobs,
        runner=runner,
    )
    return results
