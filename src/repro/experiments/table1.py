"""Table 1 — CPU execution time of the coordinator tasks (§5).

The paper times three coordinator-side computations on a SUN Sparc 4
for different numbers of nodes N:

* **Lin. Independence** — maintaining the N + 1 most recent measure
  points with linearly independent difference vectors (incremental
  Gauss);
* **Approximation** — determining the hyperplane coefficients from the
  retained points;
* **Optimization** — solving the linear program with the simplex
  method.

Absolute milliseconds are hardware-bound; the reproduction measures the
same three tasks on the present machine and checks the paper's *shape*:
all three grow with N and the total stays small (low milliseconds).

Run standalone::

    python -m repro.experiments.table1
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.hyperplane import fit_hyperplane
from repro.core.lp import PartitioningProblem, solve_partitioning
from repro.core.measure import MeasureWindow
from repro.experiments.reporting import emit, format_table

#: The node counts of the paper's Table 1.
PAPER_NODE_COUNTS = (5, 10, 20, 30, 40, 50)

#: The paper's measured values in ms (for EXPERIMENTS.md comparison).
PAPER_TABLE1 = {
    5: (0.1, 0.24, 0.9, 1.24),
    10: (0.2, 0.6, 1.6, 2.4),
    20: (0.7, 2.7, 2.3, 5.7),
    30: (2.4, 5.5, 2.7, 10.6),
    40: (2.8, 11.1, 3.3, 17.2),
    50: (4.2, 14.8, 5.4, 24.4),
}


@dataclass
class Table1Row:
    """Measured per-task times for one node count."""

    num_nodes: int
    lin_independence_ms: float
    approximation_ms: float
    optimization_ms: float

    @property
    def overall_ms(self) -> float:
        """Sum over the three tasks, as in the paper's last row."""
        return (
            self.lin_independence_ms
            + self.approximation_ms
            + self.optimization_ms
        )


def synthetic_points(
    num_nodes: int, count: Optional[int] = None, seed: int = 0,
    node_size: float = 2 * 1024 * 1024,
):
    """Random (allocation, rt_goal, rt_nogoal) tuples for benchmarking.

    Response times come from a known plane plus noise, allocations are
    random within the node bounds — shaped exactly like the points a
    coordinator accumulates.
    """
    rng = np.random.default_rng(seed)
    count = count if count is not None else num_nodes + 1
    kappa = -rng.uniform(0.5, 1.5, num_nodes) * 1e-6
    eta = rng.uniform(0.5, 1.5, num_nodes) * 1e-6
    points = []
    for _ in range(count):
        alloc = rng.uniform(0, node_size, num_nodes)
        rt_goal = 20.0 + kappa @ alloc + rng.normal(0, 0.05)
        rt_nogoal = 2.0 + eta @ alloc + rng.normal(0, 0.05)
        points.append((alloc, max(rt_goal, 0.1), max(rt_nogoal, 0.1)))
    return points


def build_window(num_nodes: int, seed: int = 0) -> MeasureWindow:
    """A measure window pre-filled with N + 1 independent points."""
    window = MeasureWindow(num_nodes)
    for i, (alloc, rt_g, rt_n) in enumerate(
        synthetic_points(num_nodes, num_nodes + 2, seed)
    ):
        window.observe(alloc, rt_g, rt_n, time=float(i))
    return window


def task_lin_independence(window: MeasureWindow, point) -> None:
    """One phase-(b) update: fold in a point, re-select the window."""
    alloc, rt_g, rt_n = point
    window.observe(alloc, rt_g, rt_n, time=window.newest.time + 1.0)
    window.selected_points()


def task_approximation(window: MeasureWindow):
    """One phase-(d) plane fit from the retained points."""
    points = window.selected_points()
    fit_hyperplane([(p.allocation, p.rt_goal) for p in points])
    return fit_hyperplane([(p.allocation, p.rt_nogoal) for p in points])


def task_optimization(problem: PartitioningProblem):
    """One phase-(d) simplex solve."""
    return solve_partitioning(problem)


def build_problem(num_nodes: int, seed: int = 0) -> PartitioningProblem:
    """A representative partitioning LP for ``num_nodes`` nodes."""
    window = build_window(num_nodes, seed)
    goal_plane, nogoal_plane = window.fit_planes()
    # Pin the goal to a reachable value in the plane's range.
    mid_alloc = np.full(num_nodes, 1 * 1024 * 1024)
    rt_goal = max(goal_plane.predict(mid_alloc), 0.5)
    return PartitioningProblem(
        goal_plane=goal_plane,
        nogoal_plane=nogoal_plane,
        rt_goal=rt_goal,
        upper_bounds=np.full(num_nodes, 2 * 1024 * 1024),
    )


def _time_ms(fn: Callable, repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return (time.perf_counter() - start) / repetitions * 1_000.0


def measure_row(num_nodes: int, repetitions: int = 50,
                seed: int = 0) -> Table1Row:
    """Measure all three coordinator tasks for one node count."""
    window = build_window(num_nodes, seed)
    extra_points = synthetic_points(num_nodes, repetitions + 1, seed + 1)
    state = {"i": 0}

    def lin_independence():
        point = extra_points[state["i"] % len(extra_points)]
        state["i"] += 1
        task_lin_independence(window, point)

    lin_ms = _time_ms(lin_independence, repetitions)
    approx_ms = _time_ms(lambda: task_approximation(window), repetitions)
    problem = build_problem(num_nodes, seed)
    opt_ms = _time_ms(lambda: task_optimization(problem), repetitions)
    return Table1Row(
        num_nodes=num_nodes,
        lin_independence_ms=lin_ms,
        approximation_ms=approx_ms,
        optimization_ms=opt_ms,
    )


def run_table1(
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    repetitions: int = 50,
) -> List[Table1Row]:
    """Measure the full Table 1."""
    return [measure_row(n, repetitions) for n in node_counts]


def to_text(rows: List[Table1Row]) -> str:
    """Render measured rows next to the paper's values."""
    body = []
    for row in rows:
        paper = PAPER_TABLE1.get(row.num_nodes)
        body.append(
            [
                row.num_nodes,
                row.lin_independence_ms,
                row.approximation_ms,
                row.optimization_ms,
                row.overall_ms,
                paper[3] if paper else "-",
            ]
        )
    return format_table(
        ["N", "lin.indep (ms)", "approx (ms)", "optimize (ms)",
         "overall (ms)", "paper overall (ms)"],
        body,
        title="Table 1: coordinator CPU time per task",
    )


def main() -> None:
    """CLI entry point: print the measured Table 1."""
    emit(to_text(run_table1()))


if __name__ == "__main__":
    main()
