"""Workload-dependent goal tolerance (after Brown et al. [5]).

Due to stochastic noise a goal is only considered violated if the
observed response time differs from the goal by more than a tolerance
delta (§5 phase (c)).  Following the fragment-fencing method the paper
adopts, the tolerance is derived from the observed variation of the
per-interval response times while goal and partitioning stay constant:
a confidence band around the interval means, floored at a small
relative fraction of the goal.

When goals change in quick succession there are never enough constant
intervals to calibrate the band — the paper explicitly observes this in
the base experiment (the oscillation in Figure 2) — and the tolerance
degrades to the relative floor.
"""

from __future__ import annotations

import math
from typing import List


class GoalTolerance:
    """Adaptive tolerance band for one goal class."""

    def __init__(
        self,
        relative_floor: float = 0.10,
        low_side_slack: float = 0.30,
        min_samples: int = 3,
        max_samples: int = 20,
        critical: float = 2.576,  # ~99 % normal quantile
    ):
        if relative_floor < 0:
            raise ValueError("relative floor must be non-negative")
        if low_side_slack < 0:
            raise ValueError("low-side slack must be non-negative")
        if min_samples < 2:
            raise ValueError("need at least two samples to estimate spread")
        self.relative_floor = relative_floor
        #: Extra slack below the goal.  Exceeding the goal breaks the
        #: SLA (hard); merely being faster than the goal only means the
        #: no-goal class could profit from freed memory (soft), so the
        #: band is asymmetric to avoid give-back/take-back oscillation.
        self.low_side_slack = low_side_slack
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.critical = critical
        self._samples: List[float] = []

    def record_stable_interval(self, mean_rt: float) -> None:
        """Record an interval mean observed under unchanged conditions."""
        self._samples.append(mean_rt)
        if len(self._samples) > self.max_samples:
            self._samples.pop(0)

    def reset(self) -> None:
        """Forget calibration (goal changed or buffers repartitioned)."""
        self._samples.clear()

    @property
    def calibrated(self) -> bool:
        """True once enough stable intervals back the estimate."""
        return len(self._samples) >= self.min_samples

    def tolerance(self, goal_ms: float) -> float:
        """Current tolerance delta in ms for a goal of ``goal_ms``."""
        floor = self.relative_floor * goal_ms
        if not self.calibrated:
            return floor
        n = len(self._samples)
        mean = sum(self._samples) / n
        variance = sum((x - mean) ** 2 for x in self._samples) / (n - 1)
        band = self.critical * math.sqrt(variance / n)
        return max(floor, band)

    def violated(self, observed_ms: float, goal_ms: float) -> bool:
        """True if ``observed`` deviates from the goal beyond tolerance.

        Deviation in *either* direction triggers reoptimization: above
        the goal the class needs more buffer; below it, dedicated
        memory should be freed for the no-goal class (the LP's equality
        constraint handles both cases).  The band below the goal is
        wider by ``low_side_slack`` (see __init__).
        """
        tol = self.tolerance(goal_ms)
        if observed_ms > goal_ms:
            return observed_ms - goal_ms > tol
        return goal_ms - observed_ms > max(
            tol, self.low_side_slack * goal_ms
        )
