"""The buffer-partitioning linear program (Section 4).

Given the fitted hyperplanes for the goal class k and the no-goal
class, the coordinator solves::

    minimize    sum_i eta_i * LM_i   + eta_0           (no-goal RT, eq. 9)
    subject to  sum_i kappa_i * LM_i + kappa = RT_goal  (eq. 5)
                0 <= LM_i <= SIZE_i - sum_{l != k} LM_l,i   (eq. 6)

If the equality cannot be met inside the box (the goal is out of reach
of the current approximation), the solver falls back to minimizing the
distance ``|predicted - goal|`` — the feedback loop then refines the
approximation on the next iteration.  The paper notes such states are
transient and irrelevant once goals are satisfiable [16].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.hyperplane import Hyperplane
from repro.core.simplex import OPTIMAL, solve_lp


@dataclass(frozen=True)
class PartitioningProblem:
    """One optimization instance for a goal class."""

    #: Plane for the goal class's weighted mean RT over LM (eq. 4).
    goal_plane: Hyperplane
    #: Plane for the no-goal class's weighted mean RT over LM (eq. 9).
    nogoal_plane: Hyperplane
    #: The class's response time goal (ms).
    rt_goal: float
    #: Per-node upper bounds: reserved memory minus other classes'
    #: dedicated pools (eq. 6), in bytes.
    upper_bounds: np.ndarray

    def __post_init__(self):
        if self.rt_goal <= 0:
            raise ValueError("response time goal must be positive")
        ub = np.asarray(self.upper_bounds, dtype=float)
        if ub.shape != (self.goal_plane.dim,):
            raise ValueError("one upper bound per node required")
        if np.any(ub < 0):
            raise ValueError("upper bounds must be non-negative")


@dataclass(frozen=True)
class PartitioningSolution:
    """The new per-node allocation for the goal class."""

    allocation: np.ndarray
    #: Predicted goal-class RT at the allocation.
    predicted_goal_rt: float
    #: Predicted no-goal RT at the allocation.
    predicted_nogoal_rt: float
    #: True if the exact equality LP was infeasible and the relaxed
    #: minimum-deviation problem was solved instead.
    relaxed: bool


def solve_partitioning(
    problem: PartitioningProblem,
) -> Optional[PartitioningSolution]:
    """Solve the Section-4 LP; None only if even the relaxation fails.

    Variables are scaled to the box ``[0, 1]`` before solving to keep
    the tableau well conditioned (allocations are ~10^6 bytes while the
    plane gradients are ~10^-6 ms/byte).
    """
    ub = np.asarray(problem.upper_bounds, dtype=float)
    n = ub.shape[0]
    scale = np.where(ub > 0, ub, 1.0)  # x = scale * z with z in [0, 1]

    eta = problem.nogoal_plane.coefficients * scale
    kappa = problem.goal_plane.coefficients * scale
    rhs = problem.rt_goal - problem.goal_plane.intercept

    box_a = np.eye(n)
    box_b = np.where(ub > 0, 1.0, 0.0)

    result = solve_lp(
        c=eta,
        a_ub=box_a,
        b_ub=box_b,
        a_eq=kappa.reshape(1, -1),
        b_eq=np.array([rhs]),
    )
    relaxed = False
    if result.status == OPTIMAL:
        z = result.x
    else:
        # Relaxation: minimize t with |kappa . z - rhs| <= t, breaking
        # ties slightly toward a low no-goal response time.
        z = _solve_relaxed(eta, kappa, rhs, box_b, n)
        relaxed = True
        if z is None:
            return None
    allocation = np.clip(z, 0.0, box_b) * scale
    return PartitioningSolution(
        allocation=allocation,
        predicted_goal_rt=problem.goal_plane.predict(allocation),
        predicted_nogoal_rt=problem.nogoal_plane.predict(allocation),
        relaxed=relaxed,
    )


@dataclass(frozen=True)
class VarianceProblem:
    """The §8 future-work objective: even response times across nodes.

    Instead of minimizing the no-goal class's mean response time, pick
    the allocation that minimizes the *maximum deviation* of any node's
    goal-class response time from the goal, while the weighted mean
    still meets the goal exactly.  Applications with per-node fairness
    requirements (a goal plus a bounded coefficient of variation, as §8
    sketches) need this objective — the default one would happily leave
    one node far slower than the rest.
    """

    #: One plane per node: RT_{k,i} as a function of the LM vector.
    node_planes: tuple
    #: Arrival-rate weights per node (need not be normalized).
    weights: np.ndarray
    rt_goal: float
    upper_bounds: np.ndarray

    def __post_init__(self):
        if self.rt_goal <= 0:
            raise ValueError("response time goal must be positive")
        n = len(self.node_planes)
        if np.asarray(self.weights).shape != (n,):
            raise ValueError("one weight per node required")
        if np.asarray(self.upper_bounds).shape != (n,):
            raise ValueError("one upper bound per node required")


def solve_variance_partitioning(
    problem: VarianceProblem,
) -> Optional[PartitioningSolution]:
    """Minimize ``max_i |RT_i(LM) - goal|`` subject to eqs. 5/6.

    Linear program in ``(z_1..z_n, t)`` with the allocation scaled to
    the unit box: minimize t subject to ``|plane_i(z) - goal| <= t``
    for every node, the weighted-mean equality, and the box bounds.
    Falls back to dropping the equality when it is unreachable.
    """
    ub = np.asarray(problem.upper_bounds, dtype=float)
    n = ub.shape[0]
    scale = np.where(ub > 0, ub, 1.0)
    box_b = np.where(ub > 0, 1.0, 0.0)

    weights = np.asarray(problem.weights, dtype=float)
    total_weight = float(weights.sum())
    if total_weight <= 0:
        return None
    weights = weights / total_weight

    coeffs = np.array(
        [plane.coefficients * scale for plane in problem.node_planes]
    )
    intercepts = np.array(
        [plane.intercept for plane in problem.node_planes]
    )
    mean_coeffs = weights @ coeffs
    mean_intercept = float(weights @ intercepts)

    # Variables: z_1..z_n, t.
    c = np.zeros(n + 1)
    c[n] = 1.0
    rows_ub = []
    rhs_ub = []
    for i in range(n):
        # plane_i(z) - goal <= t
        rows_ub.append(np.concatenate([coeffs[i], [-1.0]]))
        rhs_ub.append(problem.rt_goal - intercepts[i])
        # goal - plane_i(z) <= t
        rows_ub.append(np.concatenate([-coeffs[i], [-1.0]]))
        rhs_ub.append(intercepts[i] - problem.rt_goal)
    for i in range(n):
        row = np.zeros(n + 1)
        row[i] = 1.0
        rows_ub.append(row)
        rhs_ub.append(box_b[i])
    a_eq = np.concatenate([mean_coeffs, [0.0]]).reshape(1, -1)
    b_eq = np.array([problem.rt_goal - mean_intercept])

    result = solve_lp(
        c=c, a_ub=np.array(rows_ub), b_ub=np.array(rhs_ub),
        a_eq=a_eq, b_eq=b_eq,
    )
    if result.status != OPTIMAL:
        # Unreachable goal: just minimize the spread inside the box.
        result = solve_lp(
            c=c, a_ub=np.array(rows_ub), b_ub=np.array(rhs_ub)
        )
        if result.status != OPTIMAL:
            return None
        relaxed = True
    else:
        relaxed = False
    z = np.clip(result.x[:n], 0.0, box_b)
    allocation = z * scale
    predicted_mean = float(mean_coeffs @ z + mean_intercept)
    return PartitioningSolution(
        allocation=allocation,
        predicted_goal_rt=predicted_mean,
        predicted_nogoal_rt=float("nan"),
        relaxed=relaxed,
    )


def _solve_relaxed(eta, kappa, rhs, box_b, n):
    """min t + eps*eta.z  s.t.  |kappa.z - rhs| <= t, 0 <= z <= box."""
    eta_norm = float(np.abs(eta).max())
    eps = 1e-6 / eta_norm if eta_norm > 0 else 0.0
    c = np.concatenate([eps * eta, [1.0]])
    a_ub = np.zeros((2 + n, n + 1))
    b_ub = np.zeros(2 + n)
    a_ub[0, :n] = kappa
    a_ub[0, n] = -1.0
    b_ub[0] = rhs
    a_ub[1, :n] = -kappa
    a_ub[1, n] = -1.0
    b_ub[1] = -rhs
    a_ub[2:, :n] = np.eye(n)
    b_ub[2:] = box_b
    result = solve_lp(c=c, a_ub=a_ub, b_ub=b_ub)
    if result.status != OPTIMAL:
        return None
    return result.x[:n]
