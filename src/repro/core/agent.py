"""Local agents: the collect phase (a) of the feedback loop.

One agent exists per class per node (goal classes *and* the no-goal
class, §5).  Each agent records the inter-arrival rate and the mean
response time of its class's operations on its node over the current
observation interval.  To keep message traffic low, an agent only
reports to the coordinator when the observed values changed
significantly since its last report; the coordinator remembers the most
recently received information from every agent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.stats import P2Quantile, WindowStats


@dataclass(frozen=True)
class AgentReport:
    """One agent's measurements for one observation interval."""

    node_id: int
    class_id: int
    #: Operations that arrived during the interval.
    arrivals: int
    #: Operations that completed during the interval.
    completions: int
    #: Mean response time of the completed operations (ms).
    mean_response_ms: float
    #: Arrival rate lambda_{k,i} in operations per ms.
    arrival_rate: float
    #: End time of the interval.
    time: float


class ClassAgent:
    """Collects per-interval statistics for one (class, node) pair."""

    def __init__(
        self,
        node_id: int,
        class_id: int,
        report_threshold: float = 0.05,
    ):
        self.node_id = node_id
        self.class_id = class_id
        #: Relative change in mean RT or arrival rate that counts as
        #: "significant" and triggers a report.
        self.report_threshold = report_threshold
        self._arrivals = 0
        self._window = WindowStats()
        #: Streaming tail-latency estimate over the whole run.
        self._p95 = P2Quantile(0.95)
        self._last_reported: Optional[AgentReport] = None
        self.reports_sent = 0

    # -- collect phase ---------------------------------------------------

    def on_arrival(self, now: float) -> None:
        """An operation of this agent's class arrived on its node."""
        self._arrivals += 1

    def on_complete(self, response_ms: float, now: float) -> None:
        """An operation completed with the given response time."""
        self._window.add(response_ms)
        self._p95.add(response_ms)

    # -- interval boundary -------------------------------------------------

    def snapshot(self, interval_ms: float, now: float) -> AgentReport:
        """Close the current interval and return its measurements."""
        window = self._window.roll()
        arrivals = self._arrivals
        self._arrivals = 0
        return AgentReport(
            node_id=self.node_id,
            class_id=self.class_id,
            arrivals=arrivals,
            completions=window.count,
            mean_response_ms=window.mean,
            arrival_rate=arrivals / interval_ms if interval_ms > 0 else 0.0,
            time=now,
        )

    def significant_change(self, report: AgentReport) -> bool:
        """Does ``report`` differ enough from the last one sent?"""
        last = self._last_reported
        if last is None:
            return True
        if report.completions == 0 and last.completions == 0:
            return False
        return (
            _rel_change(report.mean_response_ms, last.mean_response_ms)
            > self.report_threshold
            or _rel_change(report.arrival_rate, last.arrival_rate)
            > self.report_threshold
        )

    def mark_reported(self, report: AgentReport) -> None:
        """Remember ``report`` as the coordinator's view of this agent."""
        self._last_reported = report
        self.reports_sent += 1

    def force_report(self) -> None:
        """Forget what the coordinator knows; the next snapshot is
        always significant.

        Anti-entropy hook: after a coordinator restart (its remembered
        reports are gone) or a partition heal (reports sent into the
        partition never arrived), the significant-change filter would
        otherwise suppress exactly the re-reports the coordinator needs
        to rebuild its view.
        """
        self._last_reported = None

    @property
    def lifetime_mean_response_ms(self) -> float:
        """Mean response time over the whole run."""
        return self._window.lifetime.mean

    @property
    def lifetime_completions(self) -> int:
        """Operations completed over the whole run."""
        return self._window.lifetime.count

    @property
    def lifetime_p95_response_ms(self) -> float:
        """Streaming 95th-percentile response time over the whole run."""
        return self._p95.value


def _rel_change(new: float, old: float) -> float:
    base = max(abs(new), abs(old))
    if base == 0.0:
        return 0.0
    return abs(new - old) / base
