"""A two-phase dense simplex solver.

The paper's coordinator solves its buffer-partitioning optimization
with the simplex method (using the lp_solve library [3]); this module
provides that substrate from scratch.  The implementation is a
textbook two-phase tableau simplex with Bland's anti-cycling rule —
exponential in the worst case but, as the paper notes citing [25],
linear in variables and constraints on average, which is all the
(small) partitioning LPs need.

Problem form::

    minimize    c @ x
    subject to  a_ub @ x <= b_ub
                a_eq @ x == b_eq
                x >= 0

Upper bounds on variables are expressed by the caller as ``a_ub`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Result status codes.
OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
ITERATION_LIMIT = "iteration_limit"


@dataclass
class SimplexResult:
    """Outcome of a simplex run."""

    status: str
    x: Optional[np.ndarray]
    objective: Optional[float]
    iterations: int

    @property
    def ok(self) -> bool:
        """True when an optimal solution was found."""
        return self.status == OPTIMAL


def solve_lp(
    c,
    a_ub=None,
    b_ub=None,
    a_eq=None,
    b_eq=None,
    maxiter: int = 10_000,
    tol: float = 1e-9,
) -> SimplexResult:
    """Solve the LP; see module docstring for the problem form."""
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    rows = []
    rhs = []
    kinds = []  # 'ub' or 'eq'
    if a_ub is not None:
        a_ub = np.atleast_2d(np.asarray(a_ub, dtype=float))
        b_ub = np.atleast_1d(np.asarray(b_ub, dtype=float))
        if a_ub.shape != (b_ub.shape[0], n):
            raise ValueError("inconsistent a_ub/b_ub shapes")
        for row, b in zip(a_ub, b_ub):
            rows.append(row)
            rhs.append(b)
            kinds.append("ub")
    if a_eq is not None:
        a_eq = np.atleast_2d(np.asarray(a_eq, dtype=float))
        b_eq = np.atleast_1d(np.asarray(b_eq, dtype=float))
        if a_eq.shape != (b_eq.shape[0], n):
            raise ValueError("inconsistent a_eq/b_eq shapes")
        for row, b in zip(a_eq, b_eq):
            rows.append(row)
            rhs.append(b)
            kinds.append("eq")
    m = len(rows)
    if m == 0:
        # Unconstrained over x >= 0: bounded iff c >= 0, optimum at 0.
        if np.all(c >= -tol):
            return SimplexResult(OPTIMAL, np.zeros(n), 0.0, 0)
        return SimplexResult(UNBOUNDED, None, None, 0)

    # Standard form: slacks for <= rows, then artificials where needed.
    n_slack = sum(1 for kind in kinds if kind == "ub")
    a = np.zeros((m, n + n_slack))
    b = np.zeros(m)
    slack_col = n
    slack_of_row = {}
    for i, (row, bi, kind) in enumerate(zip(rows, rhs, kinds)):
        a[i, :n] = row
        b[i] = bi
        if kind == "ub":
            a[i, slack_col] = 1.0
            slack_of_row[i] = slack_col
            slack_col += 1
    # Make rhs non-negative.
    for i in range(m):
        if b[i] < 0:
            a[i] *= -1.0
            b[i] *= -1.0

    # Choose an initial basis: a row's slack if its coefficient is
    # still +1 (rhs was non-negative), otherwise an artificial.
    n_total = a.shape[1]
    basis = [-1] * m
    artificial_cols = []
    for i in range(m):
        slack = slack_of_row.get(i)
        if slack is not None and a[i, slack] == 1.0:
            basis[i] = slack
    n_art = sum(1 for bi in basis if bi == -1)
    if n_art:
        a = np.hstack([a, np.zeros((m, n_art))])
        col = n_total
        for i in range(m):
            if basis[i] == -1:
                a[i, col] = 1.0
                basis[i] = col
                artificial_cols.append(col)
                col += 1
        n_total = a.shape[1]

    tableau = np.zeros((m + 1, n_total + 1))
    tableau[:m, :n_total] = a
    tableau[:m, -1] = b
    iterations = 0

    if artificial_cols:
        # Phase 1: minimize the sum of artificials.
        phase1_cost = np.zeros(n_total)
        phase1_cost[artificial_cols] = 1.0
        _set_objective(tableau, basis, phase1_cost)
        status, it = _iterate(tableau, basis, maxiter, tol)
        iterations += it
        if status != OPTIMAL:
            return SimplexResult(status, None, None, iterations)
        if tableau[-1, -1] < -tol * max(1.0, float(np.abs(b).max())):
            # Objective row stores -value; phase-1 optimum > 0 means no
            # feasible point exists.
            return SimplexResult(INFEASIBLE, None, None, iterations)
        _drive_out_artificials(tableau, basis, artificial_cols, tol)
        artificial_set = set(artificial_cols)
        if any(bi in artificial_set for bi in basis):
            # Redundant row with an artificial stuck at zero: drop it by
            # zeroing; keeping it basic at level 0 is harmless for
            # phase 2 as long as its column cost is +inf-like. We pin
            # the artificial columns to never re-enter by removing them
            # from pricing below.
            pass
        blocked = artificial_set
    else:
        blocked = set()

    # Phase 2: original objective (artificials excluded from pricing).
    full_cost = np.zeros(n_total)
    full_cost[:n] = c
    _set_objective(tableau, basis, full_cost)
    status, it = _iterate(tableau, basis, maxiter, tol, blocked=blocked)
    iterations += it
    if status != OPTIMAL:
        return SimplexResult(status, None, None, iterations)

    x = np.zeros(n_total)
    for i, col in enumerate(basis):
        x[col] = tableau[i, -1]
    solution = x[:n]
    return SimplexResult(
        OPTIMAL, solution, float(c @ solution), iterations
    )


def _set_objective(tableau, basis, cost) -> None:
    """Install ``cost`` as the objective row in reduced form."""
    m = tableau.shape[0] - 1
    tableau[-1, :-1] = cost
    tableau[-1, -1] = 0.0
    for i in range(m):
        coeff = tableau[-1, basis[i]]
        if coeff != 0.0:
            tableau[-1] -= coeff * tableau[i]


def _iterate(tableau, basis, maxiter, tol, blocked=frozenset()):
    """Run simplex pivots until optimal/unbounded/limit."""
    m = tableau.shape[0] - 1
    for iteration in range(maxiter):
        objective = tableau[-1, :-1]
        entering = -1
        for j in range(objective.shape[0]):  # Bland: smallest index
            if j in blocked:
                continue
            if objective[j] < -tol:
                entering = j
                break
        if entering < 0:
            return OPTIMAL, iteration
        column = tableau[:m, entering]
        best_ratio = None
        leaving = -1
        for i in range(m):
            if column[i] > tol:
                ratio = tableau[i, -1] / column[i]
                if (
                    best_ratio is None
                    or ratio < best_ratio - tol
                    or (
                        abs(ratio - best_ratio) <= tol
                        and basis[i] < basis[leaving]
                    )
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return UNBOUNDED, iteration
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
    return ITERATION_LIMIT, maxiter


def _pivot(tableau, row, col) -> None:
    tableau[row] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and tableau[i, col] != 0.0:
            tableau[i] -= tableau[i, col] * tableau[row]


def _drive_out_artificials(tableau, basis, artificial_cols, tol) -> None:
    """Pivot basic artificials (at level 0) out where possible."""
    artificial_set = set(artificial_cols)
    m = tableau.shape[0] - 1
    for i in range(m):
        if basis[i] in artificial_set:
            for j in range(tableau.shape[1] - 1):
                if j not in artificial_set and abs(tableau[i, j]) > tol:
                    _pivot(tableau, i, j)
                    basis[i] = j
                    break
