"""Incremental Gaussian elimination for linear-independence maintenance.

Phase (b) of the algorithm must guarantee that the ``N + 1`` retained
measure points admit a *unique* hyperplane approximation, i.e. that the
difference vectors between the newest point and the ``N`` older ones
are linearly independent.  Testing a candidate vector against an
existing independent set is done by incremental Gaussian elimination:
the set is kept in eliminated (row echelon) form, so checking and
adding one vector costs O(N²) instead of re-running a full O(N³)
elimination (§5, "incremental Gauss algorithm" after [14]).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class IndependenceTracker:
    """A growing set of linearly independent vectors in R^dim."""

    def __init__(self, dim: int, rtol: float = 1e-9):
        if dim < 1:
            raise ValueError("dimension must be >= 1")
        self.dim = dim
        self.rtol = rtol
        #: Eliminated rows; ``_pivots[i]`` is the pivot column of row i.
        self._rows: List[np.ndarray] = []
        self._pivots: List[int] = []

    @property
    def rank(self) -> int:
        """Number of independent vectors stored."""
        return len(self._rows)

    @property
    def full(self) -> bool:
        """True once dim vectors are stored (the set spans R^dim)."""
        return self.rank >= self.dim

    def residual(self, vector) -> np.ndarray:
        """``vector`` after elimination against the stored rows."""
        v = np.asarray(vector, dtype=float)
        if v.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {v.shape}")
        v = v.copy()
        for row, pivot in zip(self._rows, self._pivots):
            if v[pivot] != 0.0:
                v = v - (v[pivot] / row[pivot]) * row
        return v

    def is_independent(self, vector) -> bool:
        """Would adding ``vector`` keep the set linearly independent?"""
        if self.full:
            return False
        v = np.asarray(vector, dtype=float)
        norm = float(np.linalg.norm(v))
        if norm == 0.0:
            return False
        residual = self.residual(v)
        return float(np.abs(residual).max()) > self.rtol * norm

    def add(self, vector) -> bool:
        """Add ``vector`` if it is independent; return success."""
        if self.full:
            return False
        v = np.asarray(vector, dtype=float)
        norm = float(np.linalg.norm(v))
        if norm == 0.0:
            return False
        residual = self.residual(v)
        pivot = int(np.abs(residual).argmax())
        if abs(residual[pivot]) <= self.rtol * norm:
            return False
        self._rows.append(residual)
        self._pivots.append(pivot)
        return True

    def copy(self) -> "IndependenceTracker":
        """Deep copy (used when tentatively re-selecting points)."""
        clone = IndependenceTracker(self.dim, self.rtol)
        clone._rows = [row.copy() for row in self._rows]
        clone._pivots = list(self._pivots)
        return clone


def select_independent(
    reference: np.ndarray,
    candidates: List[np.ndarray],
    limit: Optional[int] = None,
    rtol: float = 1e-9,
) -> List[int]:
    """Greedy selection of candidates with independent differences.

    Scans ``candidates`` in order (callers pass newest first) and keeps
    index ``i`` iff ``candidates[i] - reference`` is linearly
    independent of the differences already kept.  At most ``limit``
    (default: the dimension) indices are returned.  This implements the
    paper's rule of retaining the most recent measure points whose
    difference vectors to the newest point stay independent.
    """
    reference = np.asarray(reference, dtype=float)
    dim = reference.shape[0]
    limit = dim if limit is None else min(limit, dim)
    tracker = IndependenceTracker(dim, rtol)
    chosen: List[int] = []
    for index, candidate in enumerate(candidates):
        if len(chosen) >= limit:
            break
        diff = np.asarray(candidate, dtype=float) - reference
        if tracker.add(diff):
            chosen.append(index)
    return chosen
