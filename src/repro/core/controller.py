"""The distributed feedback loop wired into the simulation.

:class:`GoalOrientedController` instantiates one agent per (class,
node) — including no-goal agents — and one coordinator per goal class,
placed round-robin across the nodes (§5 allows any placement; spreading
them balances load).  Every observation interval it runs the five
phases: agents snapshot their windows (a), reports travel to the
coordinators (b) — as network messages when agent and coordinator live
on different nodes, significant-change-filtered as in the paper —
goals are checked (c), violated classes are re-optimized (d), and new
allocations are shipped to the node buffer managers (e), with conflicts
reported back via acknowledgements.

The controller doubles as the workload sink: the generator feeds
arrivals and completions straight into the right agent.

The control plane is itself a fault domain.  When a ``coordcrash`` is
scheduled, the coordinators lose their in-memory state and are dark
until the outage expires; on restart they open a new allocation
*epoch*, re-learn the granted allocations from (reliable, accounted)
agent re-reports, and an anti-entropy sweep reconciles the page
directory.  A ``partition`` cuts nodes off the control network: their
reports fail fast, allocations addressed to them are deferred (stamped
with the epoch they were computed under, rejected at delivery if that
epoch died in the meantime), and a node that misses coordinator
contact for ``degraded_after`` consecutive intervals enters *degraded
mode* — frozen at its last-acked allocation, running purely local
cost-based replacement — until ``rejoin_after`` consecutive intervals
of restored contact rejoin it.  All of this is polled from the fault
layer once per interval and costs nothing when no fault layer is
attached (or no control-plane fault ever fires), so no-fault runs stay
bit-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.bufmgr.manager import NO_GOAL_CLASS
from repro.cluster.cluster import Cluster
from repro.cluster.messages import MessageKind
from repro.core.agent import AgentReport, ClassAgent
from repro.core.coordinator import Coordinator, CoordinatorDecision
from repro.core.tolerance import GoalTolerance
from repro.sim.stats import P2Quantile, TimeSeries

#: Quantiles tracked per goal class when telemetry is attached (see
#: :meth:`GoalOrientedController.track_extended_quantiles`), exported
#: as Prometheus ``quantile=`` labels and surfaced in result tables.
EXTENDED_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.95, 0.99)


class ClassSeries:
    """Recorded per-interval series for one goal class."""

    def __init__(self, class_id: int):
        self.class_id = class_id
        self.observed_rt = TimeSeries("observed_rt")
        self.goal = TimeSeries("goal")
        self.dedicated_bytes = TimeSeries("dedicated_bytes")
        self.nogoal_rt = TimeSeries("nogoal_rt")
        self.satisfied: List[bool] = []


class GoalOrientedController:
    """Drives the goal-oriented partitioning inside a cluster simulation."""

    def __init__(
        self,
        cluster: Cluster,
        goals: Dict[int, float],
        interval_ms: Optional[float] = None,
        tolerance_factory: Callable[[], GoalTolerance] = GoalTolerance,
        warmup_fraction: float = 0.25,
        warmup_step: float = 0.125,
        max_point_age_intervals: Optional[int] = 40,
        auto_balance: bool = False,
        degraded_after: int = 3,
        rejoin_after: int = 2,
    ):
        if degraded_after < 1:
            raise ValueError("degraded_after must be >= 1")
        if rejoin_after < 1:
            raise ValueError("rejoin_after must be >= 1")
        self.cluster = cluster
        self.interval_ms = (
            interval_ms
            if interval_ms is not None
            else cluster.config.observation_interval_ms
        )
        n = cluster.num_nodes
        node_sizes = [cluster.config.node.buffer_bytes] * n
        max_age = (
            max_point_age_intervals * self.interval_ms
            if max_point_age_intervals is not None
            else None
        )
        self.coordinators: Dict[int, Coordinator] = {}
        self.coordinator_home: Dict[int, int] = {}
        for class_id, goal_ms in sorted(goals.items()):
            self.coordinators[class_id] = Coordinator(
                class_id=class_id,
                node_sizes=node_sizes,
                goal_ms=goal_ms,
                page_size=cluster.config.page_size,
                tolerance=tolerance_factory(),
                warmup_fraction=warmup_fraction,
                warmup_step=warmup_step,
                max_point_age=max_age,
            )
            self.coordinator_home[class_id] = class_id % n
        self.agents: Dict[Tuple[int, int], ClassAgent] = {}
        for class_id in list(goals) + [NO_GOAL_CLASS]:
            for node_id in range(n):
                self.agents[(class_id, node_id)] = ClassAgent(
                    node_id, class_id
                )
        self.series: Dict[int, ClassSeries] = {
            class_id: ClassSeries(class_id) for class_id in goals
        }
        self.interval_index = 0
        self._interval_hooks: List[Callable[["GoalOrientedController", int], None]] = []
        self._started = False
        self._hit_counts: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: §5 load balancing: when True, at most one coordinator per
        #: interval is moved from the busiest CPU node to the idlest.
        self.auto_balance = auto_balance
        self.migrations = 0
        #: Failure-aware loop bookkeeping: agent reports lost on the
        #: wire, allocation exchanges retried, exchanges that stayed
        #: unconfirmed after the retry (their conflicts fold into the
        #: next interval, §5), and node restarts observed.
        self.reports_dropped = 0
        self.allocation_retries = 0
        self.allocation_unconfirmed = 0
        self.restarts_observed = 0
        #: Control-plane fault domain (degraded-mode state machine).
        #: A node that misses coordinator contact for ``degraded_after``
        #: consecutive intervals freezes at its last-acked allocation;
        #: ``rejoin_after`` consecutive contact intervals rejoin it.
        self.degraded_after = degraded_after
        self.rejoin_after = rejoin_after
        self.degraded: List[bool] = [False] * n
        self._missed = [0] * n
        self._streak = [0] * n
        self._coord_down = False
        self._coord_crashes_seen = 0
        self._cut_prev: frozenset = frozenset()
        #: Allocations addressed to unreachable/degraded nodes, keyed
        #: node -> class -> (epoch, requested bytes); delivered when
        #: the node re-syncs, rejected there if the epoch died.
        self._pending: Dict[int, Dict[int, Tuple[int, int]]] = {}
        #: Control-plane fault counters: coordinator outages observed,
        #: reports that failed fast against an unreachable control
        #: plane, allocations deferred for later delivery, deferred
        #: allocations rejected as stale at delivery, and degraded-mode
        #: transitions.
        self.coordinator_crashes = 0
        self.reports_unreachable = 0
        self.allocations_deferred = 0
        self.stale_allocations_rejected = 0
        self.degraded_entries = 0
        self.degraded_exits = 0
        #: Run-wide streaming p95 per goal class, across all nodes
        #: (the per-node agent estimates cannot be merged after the
        #: fact, so the tail is tracked class-globally as well).
        self.class_p95: Dict[int, P2Quantile] = {
            class_id: P2Quantile(0.95) for class_id in goals
        }
        #: Extended quantile tracking (p50/p90/p95/p99), None until
        #: :meth:`track_extended_quantiles` — telemetry attachment —
        #: arms it, so untracked runs pay one ``is None`` check per
        #: completion.  class -> quantile -> P2Quantile.
        self.class_quantiles: Optional[
            Dict[int, Dict[float, P2Quantile]]
        ] = None
        #: Telemetry pipeline or None (off by default, one attribute
        #: check per interval phase when disabled).
        self.telemetry = None
        cluster.add_restart_listener(self._on_node_restart)

    # -- workload sink ------------------------------------------------

    def on_arrival(self, node_id: int, class_id: int, now: float) -> None:
        """Route an arrival to the right local agent."""
        agent = self._agent(class_id, node_id)
        agent.on_arrival(now)

    def on_complete(
        self, node_id: int, class_id: int, response_ms: float, now: float
    ) -> None:
        """Route a completion to the right local agent."""
        agent = self._agent(class_id, node_id)
        agent.on_complete(response_ms, now)
        quantile = self.class_p95.get(class_id)
        if quantile is not None:
            quantile.add(response_ms)
        if self.class_quantiles is not None:
            tracked = self.class_quantiles.get(class_id)
            if tracked is not None:
                for estimator in tracked.values():
                    estimator.add(response_ms)

    def p95_response_ms(self, class_id: int) -> float:
        """Run-wide 95th-percentile response time of a goal class."""
        return self.class_p95[class_id].value

    def track_extended_quantiles(self) -> None:
        """Arm per-class p50/p90/p95/p99 tracking (idempotent).

        Called at telemetry attachment; completions observed from then
        on feed fresh P2 estimators per goal class.  Mutates attributes
        only — no events, no RNG — so a warmed simulation's fingerprint
        is unchanged.
        """
        if self.class_quantiles is None:
            self.class_quantiles = {
                class_id: {q: P2Quantile(q) for q in EXTENDED_QUANTILES}
                for class_id in self.class_p95
            }

    def response_quantiles(
        self, class_id: int
    ) -> Optional[Dict[float, float]]:
        """Extended quantiles for a class, or None when untracked.

        Returns ``{quantile: response_ms}`` for the quantiles in
        :data:`EXTENDED_QUANTILES` once at least one completion has
        been observed since tracking was armed.
        """
        if self.class_quantiles is None:
            return None
        tracked = self.class_quantiles.get(class_id)
        if tracked is None or next(iter(tracked.values())).count == 0:
            return None
        return {q: est.value for q, est in tracked.items()}

    def _agent(self, class_id: int, node_id: int) -> ClassAgent:
        agent = self.agents.get((class_id, node_id))
        if agent is None:
            agent = ClassAgent(node_id, class_id)
            self.agents[(class_id, node_id)] = agent
        return agent

    # -- control -----------------------------------------------------

    def start(self) -> None:
        """Begin the periodic feedback loop (call before env.run)."""
        if self._started:
            raise RuntimeError("controller already started")
        self._started = True
        self.cluster.env.process(self._loop())

    def set_goal(self, class_id: int, goal_ms: float) -> None:
        """Dynamically adjust a class's response time goal."""
        self.coordinators[class_id].set_goal(goal_ms)

    def on_interval(
        self, hook: Callable[["GoalOrientedController", int], None]
    ) -> None:
        """Register a callback run at the end of every interval."""
        self._interval_hooks.append(hook)

    def goal_of(self, class_id: int) -> float:
        """Current goal of ``class_id`` in ms."""
        return self.coordinators[class_id].goal_ms

    # -- failure awareness ----------------------------------------------

    def _on_node_restart(self, node_id: int, now: float) -> None:
        """Cluster callback: a node restarted (cache and counters lost).

        The restarted node's hit/miss counters restart from zero, so
        the delta baselines re-anchor there; every coordinator
        invalidates measure points and remembered reports that predate
        the crash (stale hyperplane fits are the main re-convergence
        killer).
        """
        self.restarts_observed += 1
        for key in self._hit_counts:
            if key[1] == node_id:
                self._hit_counts[key] = (0, 0)
        for coordinator in self.coordinators.values():
            coordinator.on_node_restart(node_id, now)
        # Anti-entropy after any crash: verify (and, were it ever
        # inconsistent, repair) the directory against the actual pools.
        self.cluster.reconcile_directory("node_restart")

    # -- control-plane fault domain -------------------------------------

    def _control_fault_tick(self, now: float) -> Tuple[bool, frozenset]:
        """Poll the fault layer's control-plane state, once per interval.

        Returns ``(coordinator down?, partitioned node set)`` and runs
        the edge transitions: coordinator crash (state wipe) and
        recovery (new epoch, re-reports, reconciliation), partition
        heals (forced re-reports, reconciliation), and the per-node
        degraded-mode state machine.
        """
        faults = self.cluster.faults
        crashes = faults.coord_crashes
        if crashes > self._coord_crashes_seen:
            # One or more crashes since the last tick (possibly shorter
            # than an interval): coordinator memory died at the first.
            self._coord_crashes_seen = crashes
            if not self._coord_down:
                self._coord_down = True
                self.coordinator_crashes += 1
                for coordinator in self.coordinators.values():
                    coordinator.on_coordinator_crash(now)
        coord_down = faults.coordinator_down(now)
        if self._coord_down and not coord_down:
            self._recover_coordinators(now)

        cut = frozenset(faults.partitioned_nodes(now))
        healed = self._cut_prev - cut
        if healed:
            # Reports sent toward the partition never arrived; the
            # healed nodes' agents must re-report, and the directory
            # gets an anti-entropy sweep.
            for node_id in sorted(healed):
                self._force_reports(node_id)
            self.cluster.reconcile_directory("partition_heal")
        self._cut_prev = cut

        # Degraded-mode state machine: enter after ``degraded_after``
        # consecutive intervals without contact, rejoin (hysteresis)
        # after ``rejoin_after`` consecutive intervals with contact.
        telemetry = self.telemetry
        for node_id in range(self.cluster.num_nodes):
            if not coord_down and node_id not in cut:
                self._missed[node_id] = 0
                if self.degraded[node_id]:
                    self._streak[node_id] += 1
                    if self._streak[node_id] >= self.rejoin_after:
                        self.degraded[node_id] = False
                        self._streak[node_id] = 0
                        self.degraded_exits += 1
                        if telemetry is not None:
                            telemetry.emit(
                                "degraded_exit", now, node=node_id,
                                contact_streak=self.rejoin_after,
                            )
            else:
                self._streak[node_id] = 0
                self._missed[node_id] += 1
                if (
                    not self.degraded[node_id]
                    and self._missed[node_id] >= self.degraded_after
                ):
                    self.degraded[node_id] = True
                    self.degraded_entries += 1
                    if telemetry is not None:
                        telemetry.emit(
                            "degraded_enter", now, node=node_id,
                            missed_intervals=self._missed[node_id],
                        )
        return coord_down, cut

    def _recover_coordinators(self, now: float) -> None:
        """Coordinator restart protocol: the outage has expired.

        Every node re-reports its granted allocation to the restarted
        coordinator — modelled as a reliable, retransmitting state
        transfer and accounted as one AGENT_REPORT per remote node —
        which adopts it under a fresh epoch.  All agents are forced to
        re-report (the remembered reports died with the old process),
        and an anti-entropy sweep repairs the directory.
        """
        self._coord_down = False
        network = self.cluster.network
        n = self.cluster.num_nodes
        for class_id, coordinator in self.coordinators.items():
            if n > 1:
                network.account_many(MessageKind.AGENT_REPORT, n - 1)
            coordinator.on_coordinator_restart(
                now, self.cluster.dedicated_bytes(class_id)
            )
        for agent in self.agents.values():
            agent.force_report()
        self.cluster.reconcile_directory("coordcrash")
        if self.telemetry is not None:
            epochs = [c.epoch for c in self.coordinators.values()]
            self.telemetry.emit(
                "coord_restart", now, epoch=max(epochs, default=0),
            )

    def _force_reports(self, node_id: int) -> None:
        """Make every agent on ``node_id`` re-report next interval."""
        for (_, nid), agent in self.agents.items():
            if nid == node_id:
                agent.force_report()

    def _drain_pending(self, node_id: int, now: float) -> None:
        """Deliver ALLOCATIONs queued for a node that re-synced.

        Each entry finally traverses the control network; the node's
        agent compares the stamped epoch against the current one (it
        learned the current epoch while re-syncing) and rejects
        dead-epoch messages with a nack — the stale-allocation
        guarantee the chaos harness asserts.
        """
        entries = self._pending.pop(node_id, None)
        if not entries:
            return
        network = self.cluster.network
        telemetry = self.telemetry
        buffers = self.cluster.nodes[node_id].buffers
        for class_id in sorted(entries):
            epoch, req = entries[class_id]
            coordinator = self.coordinators.get(class_id)
            if coordinator is None:
                continue
            if not network.send_control(MessageKind.ALLOCATION):
                continue  # lost on the wire; folds into the next interval
            old = buffers.dedicated_bytes(class_id)
            stale = epoch != coordinator.epoch
            applied = False
            acked = False
            if stale:
                # Dead-epoch message: rejected by the agent, nacked.
                self.stale_allocations_rejected += 1
                network.send_control(MessageKind.ALLOCATION_ACK)
            else:
                granted = self.cluster.apply_node_allocation(
                    class_id, node_id, req
                )
                applied = True
                acked = network.send_control(MessageKind.ALLOCATION_ACK)
                if acked:
                    coordinator.current_allocation[node_id] = float(granted)
                else:
                    self.allocation_unconfirmed += 1
            if telemetry is not None:
                telemetry.emit(
                    "allocation_ship", now, class_id=class_id,
                    node=node_id, requested_bytes=req, previous_bytes=old,
                    local=False, applied=applied, acked=acked,
                    retried=False, deferred=True, stale=stale,
                    epoch=epoch,
                )

    # -- coordinator placement (§5) -----------------------------------

    def migrate_coordinator(self, class_id: int, new_home: int) -> None:
        """Move a class's coordinator to ``new_home``.

        §5: a coordinator can be placed on any node and even migrate,
        as long as all corresponding agents are informed — every other
        node receives a MIGRATION announcement, and the coordinator's
        state (measure points and remembered reports) crosses the
        network once.
        """
        if class_id not in self.coordinators:
            raise KeyError(class_id)
        if not 0 <= new_home < self.cluster.num_nodes:
            raise ValueError(f"no node {new_home}")
        old_home = self.coordinator_home[class_id]
        if new_home == old_home:
            return
        network = self.cluster.network
        for node_id in range(self.cluster.num_nodes):
            if node_id != new_home:
                network.account_only(MessageKind.MIGRATION)
        network.account_only(MessageKind.MIGRATION_STATE)
        self.coordinator_home[class_id] = new_home
        self.migrations += 1

    def _rebalance(self) -> None:
        """Move one coordinator off the busiest CPU, if clearly busier."""
        utilizations = [
            node.cpu.utilization() for node in self.cluster.nodes
        ]
        busiest = max(range(len(utilizations)), key=utilizations.__getitem__)
        idlest = min(range(len(utilizations)), key=utilizations.__getitem__)
        if utilizations[busiest] - utilizations[idlest] < 0.10:
            return
        for class_id, home in self.coordinator_home.items():
            if home == busiest:
                self.migrate_coordinator(class_id, idlest)
                return

    # -- the feedback loop ---------------------------------------------

    def _loop(self):
        env = self.cluster.env
        network = self.cluster.network
        while True:
            yield env.timeout(self.interval_ms)
            self.interval_index += 1
            now = env.now
            telemetry = self.telemetry

            # Control-plane fault domain: poll coordinator/partition
            # state once per interval.  Without a fault layer this is
            # one attribute check; with one but no control-plane fault
            # scheduled it reads two always-zero fields and draws no
            # randomness, so behavior is unchanged either way.
            coord_down = False
            cut: frozenset = frozenset()
            if self.cluster.faults is not None:
                coord_down, cut = self._control_fault_tick(now)
                if self._pending and not coord_down:
                    # Deliver allocations queued for nodes that have
                    # re-synced (reachable again and not degraded).
                    for node_id in sorted(self._pending):
                        if node_id not in cut and not self.degraded[node_id]:
                            self._drain_pending(node_id, now)

            # Phase (a): every agent closes its observation window.
            reports: Dict[Tuple[int, int], AgentReport] = {}
            for key, agent in self.agents.items():
                reports[key] = agent.snapshot(self.interval_ms, now)

            # Phase (b): ship significant reports to the coordinators.
            # Remote reports ride the (lossy, under faults) control
            # channel; a dropped report simply never arrives and the
            # coordinator evaluates with the reports it has — the agent
            # still considers it sent (it cannot know), so only a
            # further significant change triggers a resend.
            for (class_id, node_id), report in reports.items():
                agent = self.agents[(class_id, node_id)]
                if not agent.significant_change(report):
                    continue
                if coord_down or node_id in cut:
                    # The control plane is unreachable from this node
                    # (coordinator dark, or the node is partitioned):
                    # the send fails fast and the agent knows it, so
                    # nothing is marked reported — contact restoration
                    # forces a re-report anyway.
                    self.reports_unreachable += 1
                    continue
                agent.mark_reported(report)
                if class_id == NO_GOAL_CLASS:
                    for goal_id, coordinator in self.coordinators.items():
                        delivered = True
                        if self.coordinator_home[goal_id] != node_id:
                            delivered = network.send_control(
                                MessageKind.AGENT_REPORT
                            )
                        if telemetry is not None:
                            telemetry.emit(
                                "agent_report", now, class_id=class_id,
                                node=node_id, coordinator_class=goal_id,
                                delivered=delivered,
                                completions=report.completions,
                                mean_response_ms=report.mean_response_ms,
                                arrival_rate=report.arrival_rate,
                            )
                        if not delivered:
                            self.reports_dropped += 1
                            continue
                        coordinator.receive_nogoal_report(report)
                else:
                    coordinator = self.coordinators.get(class_id)
                    if coordinator is None:
                        continue
                    delivered = True
                    if self.coordinator_home[class_id] != node_id:
                        delivered = network.send_control(
                            MessageKind.AGENT_REPORT
                        )
                    if telemetry is not None:
                        telemetry.emit(
                            "agent_report", now, class_id=class_id,
                            node=node_id, coordinator_class=class_id,
                            delivered=delivered,
                            completions=report.completions,
                            mean_response_ms=report.mean_response_ms,
                            arrival_rate=report.arrival_rate,
                        )
                    if not delivered:
                        self.reports_dropped += 1
                        continue
                    coordinator.receive_goal_report(report)

            # Local hit/miss deltas for estimators that need them
            # (e.g. the class-fencing baseline).
            for class_id, coordinator in self.coordinators.items():
                for node in self.cluster.nodes:
                    hits = node.buffers.hits_by_class.get(class_id, 0)
                    misses = node.buffers.misses_by_class.get(class_id, 0)
                    key = (class_id, node.node_id)
                    last_h, last_m = self._hit_counts.get(key, (0, 0))
                    self._hit_counts[key] = (hits, misses)
                    if not coord_down:
                        coordinator.receive_hit_info(
                            node.node_id, hits - last_h, misses - last_m
                        )

            # Phases (c)-(e) per goal class.  A dark coordinator can
            # evaluate nothing; it still logs an outage record so the
            # decision log stays interval-aligned for recovery metrics.
            for class_id, coordinator in self.coordinators.items():
                if coord_down:
                    decision = coordinator.record_outage(now)
                else:
                    other = self._other_dedicated(class_id)
                    decision = coordinator.evaluate(now, other)
                    self._apply(class_id, coordinator, decision, cut)
                self._record(class_id, coordinator, decision, now)

            if self.auto_balance:
                self._rebalance()

            for hook in self._interval_hooks:
                hook(self, self.interval_index)

            if telemetry is not None:
                telemetry.emit(
                    "interval", now, index=self.interval_index,
                    duration_ms=self.interval_ms,
                )

    def _other_dedicated(self, class_id: int) -> List[int]:
        """Per node: bytes dedicated to goal classes other than this one."""
        return [
            node.buffers.total_dedicated_bytes()
            - node.buffers.dedicated_bytes(class_id)
            for node in self.cluster.nodes
        ]

    def _apply(
        self,
        class_id: int,
        coordinator: Coordinator,
        decision: CoordinatorDecision,
        cut: frozenset = frozenset(),
    ) -> None:
        """Phase (e): ship the allocation with ack/timeout/one-retry.

        Each remote node whose target changed receives an ALLOCATION
        and answers with an ALLOCATION_ACK carrying the granted size
        (which may fall short when another class holds the memory).
        Under an active loss episode either message can vanish; a
        missing ack makes the coordinator resend the ALLOCATION once
        (the node applies idempotently and re-acks).  An exchange that
        stays unconfirmed is left unresolved: the node keeps whatever
        it last applied, the coordinator keeps its previous belief, and
        the discrepancy folds into the next observation interval
        exactly as §5 prescribes — the next measure point simply
        describes the system as it actually is.
        """
        if decision.new_allocation is None:
            return
        requested = [int(b) for b in decision.new_allocation]
        previous = self.cluster.dedicated_bytes(class_id)
        home = self.coordinator_home[class_id]
        network = self.cluster.network
        n = self.cluster.num_nodes
        telemetry = self.telemetry
        now = self.cluster.env.now if telemetry is not None else 0.0

        # One exchange per node: decide what actually reaches each
        # node's local agent, and whether the coordinator hears back.
        effective = list(previous)
        confirmed = [True] * n
        epoch = coordinator.epoch
        for node_id, (req, old) in enumerate(zip(requested, previous)):
            if req == old:
                continue  # nothing to ship, nothing to confirm
            if node_id in cut or self.degraded[node_id]:
                # Partitioned or degraded (frozen at its last-acked
                # allocation): defer delivery, stamped with the epoch
                # the proposal was computed under.  The agent rejects
                # it at delivery if that epoch died in the meantime.
                self._pending.setdefault(node_id, {})[class_id] = (
                    epoch, req
                )
                self.allocations_deferred += 1
                confirmed[node_id] = False
                if telemetry is not None:
                    telemetry.emit(
                        "allocation_ship", now, class_id=class_id,
                        node=node_id, requested_bytes=req,
                        previous_bytes=old, local=False, applied=False,
                        acked=False, retried=False, deferred=True,
                        epoch=epoch,
                    )
                continue
            # A fresh direct ship supersedes anything still queued for
            # this (node, class) from an earlier outage.
            queued = self._pending.get(node_id)
            if queued is not None:
                queued.pop(class_id, None)
                if not queued:
                    del self._pending[node_id]
            if node_id == home:
                effective[node_id] = req  # local, reliable
                if telemetry is not None:
                    telemetry.emit(
                        "allocation_ship", now, class_id=class_id,
                        node=node_id, requested_bytes=req,
                        previous_bytes=old, local=True, applied=True,
                        acked=True, retried=False, deferred=False,
                        epoch=epoch,
                    )
                continue
            retries_before = self.allocation_retries
            applied, acked = self._allocation_exchange(network)
            if applied:
                effective[node_id] = req
            confirmed[node_id] = acked
            if not acked:
                self.allocation_unconfirmed += 1
            if telemetry is not None:
                telemetry.emit(
                    "allocation_ship", now, class_id=class_id,
                    node=node_id, requested_bytes=req, previous_bytes=old,
                    local=False, applied=applied, acked=acked,
                    retried=self.allocation_retries > retries_before,
                    deferred=False, epoch=epoch,
                )

        granted = self.cluster.apply_allocation(class_id, effective)

        # The coordinator's belief: granted sizes where the exchange
        # completed (or nothing was shipped), its previous belief where
        # delivery stayed unconfirmed.
        believed = [
            got if confirmed[node_id]
            else float(coordinator.current_allocation[node_id])
            for node_id, got in enumerate(granted)
        ]
        coordinator.receive_granted(believed)
        if telemetry is not None:
            telemetry.emit(
                "allocation_result", now, class_id=class_id,
                requested=requested,
                granted=[float(g) for g in granted],
                believed=[float(b) for b in believed],
                confirmed=confirmed,
                epoch=epoch,
            )

    def _allocation_exchange(self, network) -> Tuple[bool, bool]:
        """Run one ALLOCATION/ACK exchange; returns (applied, acked)."""
        if network.send_control(MessageKind.ALLOCATION):
            if network.send_control(MessageKind.ALLOCATION_ACK):
                return True, True
            # Ack lost: the coordinator times out and retries; the node
            # re-applies idempotently and re-acks.
            self.allocation_retries += 1
            if network.send_control(MessageKind.ALLOCATION):
                return True, network.send_control(MessageKind.ALLOCATION_ACK)
            return True, False  # first copy applied, never confirmed
        self.allocation_retries += 1
        if network.send_control(MessageKind.ALLOCATION):
            return True, network.send_control(MessageKind.ALLOCATION_ACK)
        return False, False

    def _record(
        self,
        class_id: int,
        coordinator: Coordinator,
        decision: CoordinatorDecision,
        now: float,
    ) -> None:
        series = self.series[class_id]
        if decision.observed_rt is not None:
            series.observed_rt.append(now, decision.observed_rt)
        if decision.observed_nogoal_rt is not None:
            series.nogoal_rt.append(now, decision.observed_nogoal_rt)
        series.goal.append(now, coordinator.goal_ms)
        series.dedicated_bytes.append(
            now, float(np.sum(coordinator.current_allocation))
        )
        series.satisfied.append(decision.satisfied)
