"""Service level agreements and per-class performance goals.

Users express requirements as response time constraints per class
(§1, [20]): each goal class carries a mean response time goal; the
*performance index* of a class is the ratio of observed to goal
response time (used by the dynamic-tuning baseline of [8] and by the
reporting code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bufmgr.manager import NO_GOAL_CLASS


@dataclass
class ClassGoal:
    """Mutable response time goal of one goal class."""

    class_id: int
    goal_ms: float

    def __post_init__(self):
        if self.class_id == NO_GOAL_CLASS:
            raise ValueError("the no-goal class has no goal")
        if self.goal_ms <= 0:
            raise ValueError("response time goals must be positive")

    def performance_index(self, observed_ms: float) -> float:
        """observed / goal; > 1 means the goal is violated."""
        return observed_ms / self.goal_ms

    def satisfied(self, observed_ms: float, tolerance_ms: float = 0.0) -> bool:
        """True if the observed RT is within the goal (+ tolerance)."""
        return observed_ms <= self.goal_ms + tolerance_ms


@dataclass
class ServiceLevelAgreement:
    """The set of all class goals in force."""

    goals: Dict[int, ClassGoal] = field(default_factory=dict)

    @classmethod
    def from_pairs(cls, pairs) -> "ServiceLevelAgreement":
        """Build from an iterable of (class_id, goal_ms)."""
        sla = cls()
        for class_id, goal_ms in pairs:
            sla.set_goal(class_id, goal_ms)
        return sla

    def set_goal(self, class_id: int, goal_ms: float) -> None:
        """Install or change the goal of ``class_id``."""
        self.goals[class_id] = ClassGoal(class_id, goal_ms)

    def goal_of(self, class_id: int) -> Optional[float]:
        """Goal of the class in ms, or None for the no-goal class."""
        goal = self.goals.get(class_id)
        return goal.goal_ms if goal else None

    @property
    def goal_class_ids(self) -> List[int]:
        """All goal class ids, sorted."""
        return sorted(self.goals)

    def max_performance_index(self, observed: Dict[int, float]) -> float:
        """max over classes of observed/goal (dynamic tuning's metric)."""
        indices = [
            self.goals[cid].performance_index(rt)
            for cid, rt in observed.items()
            if cid in self.goals
        ]
        return max(indices) if indices else 0.0
