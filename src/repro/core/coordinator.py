"""Per-class coordinator: phases (b), (c), (d) of the feedback loop.

The coordinator of a goal class k

* remembers the most recent report of every class-k agent and every
  no-goal agent (phase (b)), folding them into measure points,
* checks the weighted mean response time against the goal within the
  adaptive tolerance (phase (c)),
* on a violation, computes a new partitioning of class k's local
  buffers (phase (d)) — by hyperplane approximation and linear
  programming once N + 1 independent measure points exist, and by the
  warm-up heuristic before that.

The warm-up heuristic starts from a fixed fraction of each node's
unclaimed memory and then perturbs one node per iteration (in rotation)
so that every new partitioning yields a new linearly independent
measure point, exactly as §5(b) requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.agent import AgentReport
from repro.core.hyperplane import (
    Hyperplane,
    SingularFitError,
    regularize_plane,
    weighted_mean_response_time,
)
from repro.core.lp import PartitioningProblem, solve_partitioning
from repro.core.measure import MeasureWindow
from repro.core.tolerance import GoalTolerance
from repro.telemetry.ring import RingLog


@dataclass
class CoordinatorDecision:
    """Outcome of one feedback-loop iteration for one class."""

    #: Weighted mean RT observed this interval (None: no completions).
    observed_rt: Optional[float]
    #: Observed no-goal weighted mean RT (None: no completions).
    observed_nogoal_rt: Optional[float]
    #: True when the goal was met within tolerance (no action taken).
    satisfied: bool
    #: Requested new per-node allocation in bytes, or None.
    new_allocation: Optional[np.ndarray] = None
    #: Which mechanism produced the allocation: 'lp', 'warmup', or None.
    mechanism: Optional[str] = None
    #: True if the LP needed the relaxed (minimum-deviation) fallback.
    relaxed: bool = False


@dataclass(frozen=True)
class DecisionRecord:
    """One entry of a coordinator's decision log (for debugging)."""

    time: float
    observed_rt: Optional[float]
    goal_ms: float
    satisfied: bool
    mechanism: Optional[str]
    allocation_total: float


@dataclass
class _WarmupState:
    started: bool = False
    axis: int = 0


class Coordinator:
    """Coordinator process state for one goal class."""

    def __init__(
        self,
        class_id: int,
        node_sizes: List[int],
        goal_ms: float,
        page_size: int = 4096,
        tolerance: Optional[GoalTolerance] = None,
        warmup_fraction: float = 0.25,
        warmup_step: float = 0.125,
        max_point_age: Optional[float] = None,
        settle_intervals: int = 1,
        shrink_damping: float = 0.5,
        objective: str = "nogoal",
    ):
        if not 0.0 < shrink_damping <= 1.0:
            raise ValueError("shrink damping must lie in (0, 1]")
        if objective not in ("nogoal", "variance"):
            raise ValueError(f"unknown objective {objective!r}")
        if class_id <= 0:
            raise ValueError("coordinators exist for goal classes only")
        self.class_id = class_id
        self.node_sizes = np.asarray(node_sizes, dtype=float)
        self.num_nodes = len(node_sizes)
        self.goal_ms = goal_ms
        self.page_size = page_size
        self.tolerance = tolerance if tolerance is not None else GoalTolerance()
        self.warmup_fraction = warmup_fraction
        self.warmup_step = warmup_step
        self.window = MeasureWindow(self.num_nodes, max_age=max_point_age)
        #: Most recent report per class-k agent (phase (b) memory).
        self.goal_reports: Dict[int, AgentReport] = {}
        #: Most recent report per no-goal agent.
        self.nogoal_reports: Dict[int, AgentReport] = {}
        #: Granted allocation currently in force (bytes per node).
        self.current_allocation = np.zeros(self.num_nodes)
        #: Per-node (hits, misses) of the last interval (for baselines).
        self.hit_info: Dict[int, tuple] = {}
        self._warmup = _WarmupState()
        #: Intervals to wait after a repartitioning before trusting
        #: measurements again (the caches need to adapt to the new
        #: pool sizes before the response times are meaningful).
        self.settle_intervals = settle_intervals
        self._settle = 0
        #: 'nogoal' (the paper's objective, eq. 9) or 'variance' (the
        #: §8 future-work objective: even per-node response times).
        self.objective = objective
        #: Fraction of a proposed *reduction* applied per iteration.
        #: The response surface is convex, so linear extrapolation
        #: overshoots when giving memory back; damping the shrink keeps
        #: the feedback loop stable (growth stays undamped).
        self.shrink_damping = shrink_damping
        self.optimizations = 0
        self.lp_solves = 0
        #: Measure points invalidated by topology events, and how many
        #: node restarts this coordinator has been told about.
        self.invalidated_points = 0
        self.restarts_seen = 0
        #: Allocation epoch: bumped on every coordinator restart.  Every
        #: shipped ALLOCATION is stamped with the epoch it was computed
        #: under; agents reject messages from a dead epoch, so a
        #: restarted coordinator's stale in-flight proposals can never
        #: be applied (see docs/faults.md, "Allocation epochs").
        self.epoch = 0
        #: Coordinator process crashes survived (epoch bumps).
        self.crashes = 0
        #: Bounded audit of every evaluate() outcome: a true ring that
        #: evicts its oldest entry once the cap is reached.
        self.decision_log = RingLog(512)
        #: Telemetry pipeline or None (off by default); every decision,
        #: measure point, plane fit, and LP solve is mirrored into its
        #: structured trace when attached.
        self.telemetry = None

    @property
    def decision_log_limit(self) -> int:
        """Cap of :attr:`decision_log` (assignable, evicts on shrink)."""
        return self.decision_log.limit

    @decision_log_limit.setter
    def decision_log_limit(self, value: int) -> None:
        self.decision_log.limit = value

    def _log_decision(
        self, now: float, decision: "CoordinatorDecision"
    ) -> "CoordinatorDecision":
        allocation = (
            decision.new_allocation
            if decision.new_allocation is not None
            else self.current_allocation
        )
        allocation_total = float(np.sum(allocation))
        self.decision_log.append(
            DecisionRecord(
                time=now,
                observed_rt=decision.observed_rt,
                goal_ms=self.goal_ms,
                satisfied=decision.satisfied,
                mechanism=decision.mechanism,
                allocation_total=allocation_total,
            )
        )
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                "decision", now,
                class_id=self.class_id,
                observed_rt=decision.observed_rt,
                observed_nogoal_rt=decision.observed_nogoal_rt,
                goal_ms=self.goal_ms,
                satisfied=decision.satisfied,
                mechanism=decision.mechanism,
                relaxed=decision.relaxed,
                allocation_total=allocation_total,
                new_allocation=(
                    [float(b) for b in decision.new_allocation]
                    if decision.new_allocation is not None else None
                ),
            )
        return decision

    # -- phase (b): collect ------------------------------------------------

    def receive_goal_report(self, report: AgentReport) -> None:
        """Fold in a class-k agent report (coordinator remembers it)."""
        self.goal_reports[report.node_id] = report

    def receive_nogoal_report(self, report: AgentReport) -> None:
        """Fold in a no-goal agent report."""
        self.nogoal_reports[report.node_id] = report

    def receive_granted(self, granted: List[int]) -> None:
        """Record the allocation actually granted by the node agents.

        Granted sizes may fall short of the request when another class
        already reserved the memory (phase (e)); the coordinator simply
        updates its information and lets the next feedback iteration
        react.
        """
        self.current_allocation = np.asarray(granted, dtype=float)

    def set_goal(self, goal_ms: float) -> None:
        """Install a new response time goal (dynamic goal adjustment)."""
        if goal_ms <= 0:
            raise ValueError("goal must be positive")
        self.goal_ms = goal_ms
        self.tolerance.reset()

    def on_node_restart(self, node_id: int, now: float) -> None:
        """React to a node crash/restart (topology event).

        Measure points recorded before the event describe a cache state
        that no longer exists — a hyperplane fitted through them points
        the LP at a stale response surface, which is the main
        re-convergence killer.  The window is invalidated, the crashed
        node's remembered reports and hit info are forgotten, and the
        tolerance recalibrates; everything rebuilds from post-crash
        observations, exactly as the §5 feedback story prescribes.
        """
        self.invalidated_points += self.window.invalidate_before(now)
        self.goal_reports.pop(node_id, None)
        self.nogoal_reports.pop(node_id, None)
        self.hit_info.pop(node_id, None)
        self.tolerance.reset()
        self._settle = 0
        self.restarts_seen += 1

    def on_coordinator_crash(self, now: float) -> None:
        """The coordinator process itself died: wipe in-memory state.

        Everything phase (b) accumulated lives in coordinator memory —
        the measure window, the remembered agent reports, hit info, and
        the warm-up cursor — so a crash loses all of it.  Lifetime
        experiment counters (optimizations, lp_solves, the decision
        log) survive: they are experimenter bookkeeping, not
        coordinator state.
        """
        self.invalidated_points += self.window.clear()
        self.goal_reports.clear()
        self.nogoal_reports.clear()
        self.hit_info.clear()
        self._warmup = _WarmupState()
        self._settle = 0
        self.tolerance.reset()
        self.crashes += 1

    def on_coordinator_restart(self, now: float, granted: List[int]) -> None:
        """The coordinator came back: open a new epoch and re-learn.

        ``granted`` is the allocation actually in force on the node
        agents (re-reported after the restart); the restarted
        coordinator adopts it as its belief instead of trusting
        anything written before the crash.  The epoch bump makes every
        pre-crash ALLOCATION message permanently rejectable.
        """
        self.epoch += 1
        self.current_allocation = np.asarray(granted, dtype=float)

    def record_outage(self, now: float) -> CoordinatorDecision:
        """Log a coordinator-dark interval.

        Recovery metrics index the decision log per interval, so
        intervals during which the coordinator was down must still
        produce a record — observed nothing, satisfied nothing.
        """
        return self._log_decision(now, CoordinatorDecision(
            observed_rt=None,
            observed_nogoal_rt=None,
            satisfied=False,
            mechanism="coord_down",
        ))

    # -- phases (c) + (d): check and optimize --------------------------------

    def evaluate(
        self, now: float, other_dedicated: List[int]
    ) -> CoordinatorDecision:
        """Run one check/optimize iteration.

        ``other_dedicated[i]`` is the memory on node i currently held by
        *other* goal classes, defining the upper bounds of eq. 6.
        """
        rt_goal = self._weighted_rt(self.goal_reports)
        rt_nogoal = self._weighted_rt(self.nogoal_reports)
        if rt_goal is None:
            # No class-k operation finished anywhere: nothing to check.
            return self._log_decision(now, CoordinatorDecision(
                observed_rt=None,
                observed_nogoal_rt=rt_nogoal,
                satisfied=True,
            ))
        if self._settle > 0:
            # Caches are still adapting to the previous repartitioning:
            # report satisfaction but neither record a measure point
            # nor trigger another optimization.
            self._settle -= 1
            return self._log_decision(now, CoordinatorDecision(
                observed_rt=rt_goal,
                observed_nogoal_rt=rt_nogoal,
                satisfied=not self.tolerance.violated(rt_goal, self.goal_ms),
            ))
        points_before = len(self.window)
        self.window.observe(
            self.current_allocation,
            rt_goal,
            rt_nogoal if rt_nogoal is not None else 0.0,
            now,
            per_node_rt=self._per_node_rts(rt_goal),
        )
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                "measure_point", now,
                class_id=self.class_id,
                action=(
                    "new" if len(self.window) > points_before else "update"
                ),
                allocation=[float(b) for b in self.current_allocation],
                rt_goal=rt_goal,
                rt_nogoal=rt_nogoal,
                points_retained=len(self.window),
            )
        if not self.tolerance.violated(rt_goal, self.goal_ms):
            self.tolerance.record_stable_interval(rt_goal)
            return self._log_decision(now, CoordinatorDecision(
                observed_rt=rt_goal,
                observed_nogoal_rt=rt_nogoal,
                satisfied=True,
            ))

        self.optimizations += 1
        upper = np.maximum(
            self.node_sizes - np.asarray(other_dedicated, dtype=float), 0.0
        )
        allocation, mechanism, relaxed = self._propose(rt_goal, upper, now)
        if allocation is None:
            mechanism = "warmup"
            allocation = self._warmup_proposal(rt_goal, upper)
        allocation = self._round_to_pages(np.clip(allocation, 0.0, upper))
        if np.allclose(allocation, self.current_allocation, atol=0.5):
            # Proposal equals the current state: nudge along the warm-up
            # axis so the next interval still yields a new, linearly
            # independent measure point.
            allocation = self._round_to_pages(
                np.clip(self._warmup_proposal(rt_goal, upper), 0.0, upper)
            )
            mechanism = "warmup"
            if np.allclose(allocation, self.current_allocation, atol=0.5):
                return self._log_decision(now, CoordinatorDecision(
                    observed_rt=rt_goal,
                    observed_nogoal_rt=rt_nogoal,
                    satisfied=False,
                ))
        self.tolerance.reset()
        if mechanism == "lp" and float(np.sum(allocation)) > float(
            np.sum(self.current_allocation)
        ):
            # Growth needs cache refill time before measurements mean
            # anything; a pure shrink takes effect immediately (pages
            # are dropped synchronously), so no settling is required.
            # Warm-up exploration also skips settling: its points are
            # rough by design and cold-start speed matters more.
            self._settle = self.settle_intervals
        return self._log_decision(now, CoordinatorDecision(
            observed_rt=rt_goal,
            observed_nogoal_rt=rt_nogoal,
            satisfied=False,
            new_allocation=allocation,
            mechanism=mechanism,
            relaxed=relaxed,
        ))

    # -- helpers ---------------------------------------------------------

    def _weighted_rt(self, reports: Dict[int, AgentReport]) -> Optional[float]:
        """Arrival-rate-weighted mean RT over nodes (eq. 4).

        Returns None when the retained reports carry no usable signal:
        no completions anywhere, or completions whose interval saw zero
        arrivals (an idle class during a fault window).  The zero-rate
        guard matters: eq. 4 would otherwise degenerate to an observed
        RT of 0.0 ms and trigger a bogus below-goal repartitioning.
        """
        with_data = [
            r for r in reports.values() if r.completions > 0
        ]
        if not with_data:
            return None
        if not any(r.arrival_rate > 0.0 for r in with_data):
            return None
        return weighted_mean_response_time(
            [r.mean_response_ms for r in with_data],
            [r.arrival_rate for r in with_data],
        )

    def _propose(self, rt_goal, upper, now):
        """Produce (allocation | None, mechanism, relaxed).

        The goal-oriented method fits hyperplanes and solves the LP;
        baseline subclasses override this with their own estimators.
        """
        if not self.window.ready(now):
            return None, "warmup", False
        allocation, relaxed = self._optimize(rt_goal, upper, now)
        if allocation is None:
            return None, "warmup", False
        return self._damp_shrink(allocation), "lp", relaxed

    def receive_hit_info(self, node_id: int, hits: int, misses: int) -> None:
        """Per-interval local hit/miss counts (used by baselines)."""
        self.hit_info[node_id] = (hits, misses)

    def _per_node_rts(self, fallback: float) -> np.ndarray:
        """Per-node mean RTs from the latest reports (fallback fills)."""
        rts = np.full(self.num_nodes, fallback)
        for node_id, report in self.goal_reports.items():
            if report.completions > 0:
                rts[node_id] = report.mean_response_ms
        return rts

    def _optimize(self, rt_goal, upper, now):
        """Phase (d): fit hyperplanes and solve the LP."""
        if self.objective == "variance":
            return self._optimize_variance(upper, now)
        telemetry = self.telemetry
        try:
            goal_plane, nogoal_plane = self.window.fit_planes(now)
        except (SingularFitError, ValueError) as exc:
            if telemetry is not None:
                telemetry.emit(
                    "plane_fit", now, class_id=self.class_id,
                    status="singular", detail=str(exc),
                    points_retained=len(self.window),
                )
            return None, False
        if telemetry is not None:
            # The Gauss elimination verdict: which retained points made
            # it into the fit as linearly independent.
            selected = self.window.selected_points(now)
            telemetry.emit(
                "plane_fit", now, class_id=self.class_id, status="ok",
                points_retained=len(self.window),
                points_selected=len(selected),
                selected_times=[float(p.time) for p in selected],
                goal_coefficients=[
                    float(c) for c in goal_plane.coefficients
                ],
                goal_intercept=float(goal_plane.intercept),
                nogoal_coefficients=[
                    float(c) for c in nogoal_plane.coefficients
                ],
                nogoal_intercept=float(nogoal_plane.intercept),
            )
        newest = self.window.newest
        goal_plane = regularize_plane(
            goal_plane, sign=-1, anchor=(newest.allocation, newest.rt_goal)
        )
        if goal_plane is None:
            # Every fitted slope says "more buffer slows the class
            # down" — the fit is noise; explore instead.
            if telemetry is not None:
                telemetry.emit(
                    "plane_reject", now, class_id=self.class_id,
                    plane="goal", reason="all slopes non-improving",
                )
            return None, False
        nogoal_plane = regularize_plane(
            nogoal_plane, sign=1,
            anchor=(newest.allocation, newest.rt_nogoal),
        )
        if nogoal_plane is None:
            # Degenerate no-goal fit: minimize total dedicated memory
            # instead (frees as much as possible for the no-goal class).
            scale = float(np.abs(goal_plane.coefficients).mean())
            nogoal_plane = Hyperplane(
                coefficients=np.full(self.num_nodes, scale),
                intercept=0.0,
            )
        problem = PartitioningProblem(
            goal_plane=goal_plane,
            nogoal_plane=nogoal_plane,
            rt_goal=self.goal_ms,
            upper_bounds=upper,
        )
        solution = solve_partitioning(problem)
        if solution is None:
            if telemetry is not None:
                telemetry.emit(
                    "lp_solve", now, class_id=self.class_id,
                    status="infeasible",
                )
            return None, False
        self.lp_solves += 1
        if telemetry is not None:
            telemetry.emit(
                "lp_solve", now, class_id=self.class_id,
                status="relaxed" if solution.relaxed else "optimal",
                objective=float(solution.predicted_nogoal_rt),
                predicted_goal_rt=float(solution.predicted_goal_rt),
                allocation=[float(b) for b in solution.allocation],
            )
        return solution.allocation, solution.relaxed

    def _optimize_variance(self, upper, now):
        """Phase (d), §8 extension: minimize cross-node RT deviation."""
        from repro.core.lp import VarianceProblem, solve_variance_partitioning

        try:
            node_planes = self.window.fit_node_planes(now)
        except (SingularFitError, ValueError):
            return None, False
        newest = self.window.newest
        regularized = []
        for i, plane in enumerate(node_planes):
            anchor_rt = (
                float(newest.per_node_rt[i])
                if newest.per_node_rt is not None else newest.rt_goal
            )
            fixed = regularize_plane(
                plane, sign=-1, anchor=(newest.allocation, anchor_rt)
            )
            if fixed is None:
                return None, False
            regularized.append(fixed)
        weights = np.array([
            self.goal_reports[i].arrival_rate
            if i in self.goal_reports else 0.0
            for i in range(self.num_nodes)
        ])
        if weights.sum() <= 0:
            weights = np.ones(self.num_nodes)
        problem = VarianceProblem(
            node_planes=tuple(regularized),
            weights=weights,
            rt_goal=self.goal_ms,
            upper_bounds=upper,
        )
        solution = solve_variance_partitioning(problem)
        if solution is None:
            return None, False
        self.lp_solves += 1
        return solution.allocation, solution.relaxed

    def _warmup_proposal(self, rt_goal: float, upper: np.ndarray) -> np.ndarray:
        """Exploratory allocations until N + 1 measure points exist."""
        if not self._warmup.started:
            self._warmup.started = True
            return self.warmup_fraction * upper
        proposal = self.current_allocation.copy()
        too_slow = rt_goal > self.goal_ms
        for _ in range(self.num_nodes):
            axis = self._warmup.axis % self.num_nodes
            self._warmup.axis += 1
            step = self.warmup_step * max(upper[axis], float(self.node_sizes[axis]))
            delta = step if too_slow else -step
            candidate = min(max(proposal[axis] + delta, 0.0), upper[axis])
            if abs(candidate - proposal[axis]) >= self.page_size:
                proposal[axis] = candidate
                return proposal
            # Clamped to no movement: try the opposite direction.
            candidate = min(max(proposal[axis] - delta, 0.0), upper[axis])
            if abs(candidate - proposal[axis]) >= self.page_size:
                proposal[axis] = candidate
                return proposal
        return proposal

    def _damp_shrink(self, proposal: np.ndarray) -> np.ndarray:
        """Apply only part of a proposed reduction (see shrink_damping)."""
        if float(np.sum(proposal)) >= float(np.sum(self.current_allocation)):
            return proposal
        return (
            self.current_allocation
            + self.shrink_damping * (proposal - self.current_allocation)
        )

    def _round_to_pages(self, allocation: np.ndarray) -> np.ndarray:
        return np.round(allocation / self.page_size) * self.page_size
