"""Measure points and the coordinator's point window (phase (b)).

A *measure point* couples one buffer partitioning (the per-node
dedicated sizes of the goal class) with the response times observed
under it.  The coordinator keeps the ``N + 1`` most recent points whose
difference vectors from the newest point are linearly independent, so
that the hyperplane approximation of phase (d) is always unique.

If a report arrives for an unchanged partitioning, the newest point is
*updated* instead of creating a new one (the paper's distinction
between "creation of a new" and "update of the last measure point").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.core.gauss import select_independent
from repro.core.hyperplane import Hyperplane, fit_hyperplane


@dataclass(frozen=True)
class MeasurePoint:
    """One (partitioning, observation) pair."""

    #: Per-node dedicated buffer bytes of the goal class (as granted).
    allocation: np.ndarray
    #: Weighted mean response time of the goal class (eq. 4).
    rt_goal: float
    #: Weighted mean response time of the no-goal class.
    rt_nogoal: float
    #: Simulation time of the observation.
    time: float
    #: Per-node goal-class response times (only needed by the §8
    #: variance-objective extension; None otherwise).
    per_node_rt: Optional[np.ndarray] = None

    def same_allocation(self, other_alloc, atol: float = 0.5) -> bool:
        """True if ``other_alloc`` equals this point's allocation."""
        return bool(
            np.allclose(self.allocation, np.asarray(other_alloc, float),
                        atol=atol)
        )


class MeasureWindow:
    """The retained measure points of one coordinator."""

    def __init__(self, num_nodes: int, history_limit: Optional[int] = None,
                 max_age: Optional[float] = None, smoothing: float = 0.5):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must lie in (0, 1]")
        self.num_nodes = num_nodes
        #: Weight of the latest observation when updating the newest
        #: point (exponential smoothing damps per-interval noise).
        self.smoothing = smoothing
        #: Raw history, newest first; bounded so stale workload regimes
        #: eventually age out even without allocation changes.
        self.history_limit = (
            history_limit if history_limit is not None else 4 * (num_nodes + 1)
        )
        #: Optional absolute age bound (simulation time units).
        self.max_age = max_age
        self._history: List[MeasurePoint] = []

    # -- recording ----------------------------------------------------

    def observe(
        self,
        allocation,
        rt_goal: float,
        rt_nogoal: float,
        time: float,
        per_node_rt=None,
    ) -> None:
        """Fold one observation in (new point or update of the newest)."""
        allocation = np.asarray(allocation, dtype=float)
        if allocation.shape != (self.num_nodes,):
            raise ValueError("one allocation entry per node required")
        if per_node_rt is not None:
            per_node_rt = np.asarray(per_node_rt, dtype=float)
            if per_node_rt.shape != (self.num_nodes,):
                raise ValueError("one per-node RT per node required")
        if self._history and self._history[0].same_allocation(allocation):
            newest = self._history[0]
            alpha = self.smoothing
            smoothed_nodes = newest.per_node_rt
            if per_node_rt is not None:
                if smoothed_nodes is None:
                    smoothed_nodes = per_node_rt.copy()
                else:
                    smoothed_nodes = (
                        (1 - alpha) * smoothed_nodes + alpha * per_node_rt
                    )
            self._history[0] = replace(
                newest,
                rt_goal=(1 - alpha) * newest.rt_goal + alpha * rt_goal,
                rt_nogoal=(1 - alpha) * newest.rt_nogoal + alpha * rt_nogoal,
                time=time,
                per_node_rt=smoothed_nodes,
            )
        else:
            self._history.insert(
                0,
                MeasurePoint(
                    allocation=allocation.copy(),
                    rt_goal=rt_goal,
                    rt_nogoal=rt_nogoal,
                    time=time,
                    per_node_rt=(
                        per_node_rt.copy() if per_node_rt is not None
                        else None
                    ),
                ),
            )
            del self._history[self.history_limit:]

    def invalidate_before(self, time: float) -> int:
        """Drop every point observed before ``time``; return the count.

        Used after a topology event (node crash/restart): points
        recorded under the pre-crash cache state no longer describe the
        system, and a hyperplane fitted through them is the main
        re-convergence killer.  The next intervals rebuild the window
        from post-event observations, exactly as the §5 feedback story
        prescribes.
        """
        before = len(self._history)
        self._history = [p for p in self._history if p.time >= time]
        return before - len(self._history)

    def clear(self) -> int:
        """Drop every point; return the count.

        Used when the coordinator process itself crashes: the window
        lives in coordinator memory, so nothing survives — the restarted
        coordinator rebuilds it from post-restart agent re-reports.
        """
        count = len(self._history)
        self._history = []
        return count

    def _fresh_history(self, now: Optional[float]) -> List[MeasurePoint]:
        if self.max_age is None or now is None:
            return self._history
        return [p for p in self._history if now - p.time <= self.max_age]

    # -- selection (phase (b)) -----------------------------------------

    def selected_points(self, now: Optional[float] = None) -> List[MeasurePoint]:
        """Newest point plus up to N older, independent-difference points."""
        history = self._fresh_history(now)
        if not history:
            return []
        newest = history[0]
        chosen = select_independent(
            newest.allocation,
            [p.allocation for p in history[1:]],
            limit=self.num_nodes,
        )
        return [newest] + [history[1 + i] for i in chosen]

    def ready(self, now: Optional[float] = None) -> bool:
        """True once N + 1 usable points exist (unique plane fit)."""
        return len(self.selected_points(now)) >= self.num_nodes + 1

    # -- fitting (phase (d)) ---------------------------------------------

    def fit_planes(
        self, now: Optional[float] = None
    ) -> Tuple[Hyperplane, Hyperplane]:
        """Fit (goal-class plane, no-goal plane) from the selected points."""
        points = self.selected_points(now)
        if len(points) < self.num_nodes + 1:
            raise ValueError("not enough independent measure points")
        goal_plane = fit_hyperplane(
            [(p.allocation, p.rt_goal) for p in points]
        )
        nogoal_plane = fit_hyperplane(
            [(p.allocation, p.rt_nogoal) for p in points]
        )
        return goal_plane, nogoal_plane

    def fit_node_planes(self, now: Optional[float] = None):
        """Fit one plane per node's goal-class response time.

        Needed by the §8 variance-objective extension.  Requires every
        selected point to carry per-node response times; raises
        ``ValueError`` otherwise.
        """
        points = self.selected_points(now)
        if len(points) < self.num_nodes + 1:
            raise ValueError("not enough independent measure points")
        if any(p.per_node_rt is None for p in points):
            raise ValueError("points lack per-node response times")
        return [
            fit_hyperplane(
                [(p.allocation, float(p.per_node_rt[i])) for p in points]
            )
            for i in range(self.num_nodes)
        ]

    # -- introspection -----------------------------------------------------

    @property
    def newest(self) -> Optional[MeasurePoint]:
        """Most recent point, if any."""
        return self._history[0] if self._history else None

    def __len__(self) -> int:
        return len(self._history)
