"""Goal-oriented distributed buffer partitioning — the paper's core
contribution: measure points, hyperplane approximation, the simplex LP,
and the distributed feedback loop of agents and coordinators."""

from repro.core.agent import AgentReport, ClassAgent
from repro.core.controller import ClassSeries, GoalOrientedController
from repro.core.coordinator import Coordinator, CoordinatorDecision
from repro.core.gauss import IndependenceTracker, select_independent
from repro.core.goals import ClassGoal, ServiceLevelAgreement
from repro.core.hyperplane import (
    Hyperplane,
    SingularFitError,
    fit_hyperplane,
    regularize_plane,
    weighted_mean_response_time,
)
from repro.core.lp import (
    PartitioningProblem,
    PartitioningSolution,
    VarianceProblem,
    solve_partitioning,
    solve_variance_partitioning,
)
from repro.core.measure import MeasurePoint, MeasureWindow
from repro.core.simplex import (
    INFEASIBLE,
    ITERATION_LIMIT,
    OPTIMAL,
    UNBOUNDED,
    SimplexResult,
    solve_lp,
)
from repro.core.tolerance import GoalTolerance

__all__ = [
    "AgentReport",
    "ClassAgent",
    "ClassGoal",
    "ClassSeries",
    "Coordinator",
    "CoordinatorDecision",
    "GoalOrientedController",
    "GoalTolerance",
    "Hyperplane",
    "INFEASIBLE",
    "ITERATION_LIMIT",
    "IndependenceTracker",
    "MeasurePoint",
    "MeasureWindow",
    "OPTIMAL",
    "PartitioningProblem",
    "PartitioningSolution",
    "ServiceLevelAgreement",
    "SimplexResult",
    "SingularFitError",
    "UNBOUNDED",
    "VarianceProblem",
    "fit_hyperplane",
    "regularize_plane",
    "select_independent",
    "solve_lp",
    "solve_partitioning",
    "solve_variance_partitioning",
    "weighted_mean_response_time",
]
