"""Hyperplane approximation of response time curves.

Equation 4 of the paper approximates the weighted mean response time of
a class as an N-dimensional hyperplane over the per-node dedicated
buffer sizes ``(LM_1, ..., LM_N)``:

    RT(LM) = sum_i kappa_i * LM_i + kappa

The coefficients are determined from ``N + 1`` measure points whose
difference vectors are linearly independent (exact interpolation); with
more points a least-squares fit is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


class SingularFitError(Exception):
    """The measure points do not determine a unique hyperplane."""


@dataclass(frozen=True)
class Hyperplane:
    """``predict(x) = coefficients . x + intercept``."""

    coefficients: np.ndarray
    intercept: float

    @property
    def dim(self) -> int:
        """Number of input dimensions (nodes)."""
        return self.coefficients.shape[0]

    def predict(self, x) -> float:
        """Evaluate the plane at allocation vector ``x``."""
        x = np.asarray(x, dtype=float)
        return float(self.coefficients @ x + self.intercept)

    def gradient(self) -> np.ndarray:
        """The per-node slopes (response time per byte)."""
        return self.coefficients.copy()


def fit_hyperplane(
    points: Sequence[Tuple[np.ndarray, float]],
    rcond: float = 1e-12,
) -> Hyperplane:
    """Fit a hyperplane through ``(allocation, response_time)`` points.

    With exactly ``dim + 1`` points the plane interpolates them (this is
    the paper's case: phase (b) guarantees a unique solution); with more
    points the least-squares plane is returned.  Raises
    :class:`SingularFitError` when the system is rank-deficient.
    """
    if not points:
        raise ValueError("need at least one point")
    xs = np.asarray([np.asarray(x, dtype=float) for x, _ in points])
    ys = np.asarray([float(y) for _, y in points])
    n_points, dim = xs.shape
    if n_points < dim + 1:
        raise SingularFitError(
            f"{n_points} points cannot determine a {dim}-dim plane"
        )
    design = np.hstack([xs, np.ones((n_points, 1))])
    if n_points == dim + 1:
        try:
            solution = np.linalg.solve(design, ys)
        except np.linalg.LinAlgError as exc:
            raise SingularFitError(str(exc)) from None
    else:
        solution, _, rank, _ = np.linalg.lstsq(design, ys, rcond=rcond)
        if rank < dim + 1:
            raise SingularFitError(
                f"design matrix rank {rank} < {dim + 1}"
            )
    return Hyperplane(coefficients=solution[:dim], intercept=float(solution[dim]))


def weighted_mean_response_time(
    response_times: Sequence[float], arrival_rates: Sequence[float]
) -> float:
    """Arrival-rate weighted mean of per-node response times (eq. 4).

    Nodes with zero arrivals carry zero weight; if no node saw
    arrivals, 0.0 is returned (the caller skips the interval).
    """
    if len(response_times) != len(arrival_rates):
        raise ValueError("need one rate per response time")
    total_rate = float(sum(arrival_rates))
    if total_rate <= 0.0:
        return 0.0
    return float(
        sum(rt * rate for rt, rate in zip(response_times, arrival_rates))
        / total_rate
    )


def regularize_plane(
    plane: Hyperplane,
    sign: int,
    anchor: Tuple[np.ndarray, float],
    min_ratio: float = 0.05,
) -> Optional[Hyperplane]:
    """Clamp a fitted plane's gradients to the theoretically valid sign.

    Section 3 assumes that more buffer never increases a class's
    response time, so the goal-class plane (eq. 4) must have
    non-positive gradients, and the paper notes that the no-goal plane
    (eq. 9) has strictly positive ones.  Measurement noise can flip
    individual fitted slopes; feeding a wrong-signed slope into the LP
    makes it *shrink* the buffer of a violated class.  This guard
    clamps wrong-signed components to a small correct-signed magnitude
    (``min_ratio`` of the mean correct-signed magnitude) and re-anchors
    the intercept so the plane still passes through the newest measure
    point.

    Returns None when *every* gradient has the wrong sign — the fit is
    useless and the caller should fall back to warm-up exploration.
    """
    if sign not in (-1, 1):
        raise ValueError("sign must be -1 or +1")
    coeffs = plane.coefficients.copy()
    correct = coeffs[sign * coeffs > 0]
    if correct.shape[0] == 0:
        return None
    magnitude = float(np.abs(correct).mean()) * min_ratio
    clamped = np.where(
        sign * coeffs > 0, coeffs, sign * magnitude
    )
    anchor_x, anchor_y = anchor
    intercept = float(anchor_y) - float(
        clamped @ np.asarray(anchor_x, dtype=float)
    )
    return Hyperplane(coefficients=clamped, intercept=intercept)


def perturbation_directions(dim: int) -> List[np.ndarray]:
    """Unit vectors cycling through the axes (warm-up exploration).

    The warm-up phase must make every new partitioning linearly
    independent from the previous ones (§5 phase (b)); stepping along
    the coordinate axes in rotation achieves this deterministically.
    """
    return [np.eye(dim)[i] for i in range(dim)]
