"""Feasibility-frontier extraction for analytic goal-space pre-screening.

A goal sweep asks, for each candidate response-time goal, how the
feedback loop settles: how much memory it dedicates and whether the
goal is attainable at all.  Analytically those questions reduce to the
*allocation curve* ``R(f)`` — the predicted response time of the goal
class when ``f`` frames per node are dedicated to it — which is
monotone non-increasing in ``f``.  One pass of MVA solves over a frames
grid therefore answers **every** goal in the sweep range:

* ``goal < R(f_max)``  — infeasible: even all the memory is not enough;
* ``goal > R(0)``      — slack: satisfied with no dedicated memory;
* otherwise            — binding: the interesting regime, where the
  controller must find ``f*(goal) = min{f : R(f) <= goal}``.

:func:`prescreen_goals` evaluates a dense goal grid this way in
milliseconds and selects the small subset worth simulating: the grid
endpoints, both sides of every regime boundary, and evenly spaced
representatives of the binding regime, within a budget of ~5% of the
grid (never more than 10%).  :func:`prescreen_goal_pairs` is the
two-class analogue over (goal k1, goal k2) grids, classifying pairs by
whether *any* split of the memory satisfies both goals at once and
selecting the cells where feasibility flips.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analytic.bridge import predict_response
from repro.cluster.config import SystemConfig
from repro.workload.spec import WorkloadSpec

INFEASIBLE = "infeasible"
BINDING = "binding"
SLACK = "slack"


@dataclass
class GoalScreenPoint:
    """Analytic verdict for one candidate goal."""

    goal_ms: float
    regime: str
    #: Predicted steady-state RT at the minimal satisfying allocation
    #: (the full-allocation RT for infeasible goals).
    predicted_rt_ms: float
    #: Minimal dedicated bytes per node that satisfies the goal
    #: (None for infeasible goals).
    dedicated_bytes_per_node: Optional[int]


@dataclass
class PrescreenReport:
    """Result of one analytic pre-screening pass."""

    points: List[GoalScreenPoint]
    #: Indices (into ``points``) selected for simulation.
    selected: List[int]
    solver_ms: float
    solver_iterations: int
    #: MVA solves performed (the allocation-curve evaluations).
    solves: int
    budget: int

    @property
    def grid_size(self) -> int:
        """Number of goals classified."""
        return len(self.points)

    @property
    def frontier_size(self) -> int:
        """Number of goals selected for simulation."""
        return len(self.selected)

    def selected_goals(self) -> List[float]:
        """The selected goals (ms), in grid order."""
        return [self.points[i].goal_ms for i in self.selected]

    def regime_counts(self) -> Dict[str, int]:
        """Histogram of regimes over the classified grid."""
        counts: Dict[str, int] = {}
        for p in self.points:
            counts[p.regime] = counts.get(p.regime, 0) + 1
        return counts

    def trace_fields(self) -> Dict:
        """The record body for the ``prescreen`` telemetry kind."""
        return dict(
            grid=self.grid_size,
            frontier=self.frontier_size,
            solver_iterations=self.solver_iterations,
            solves=self.solves,
            ms=round(self.solver_ms, 3),
            budget=self.budget,
            regimes=self.regime_counts(),
        )


def _default_budget(grid: int, budget: Optional[int]) -> int:
    """Simulation budget: ~5% of the grid, hard-capped at 10%."""
    if budget is None:
        budget = max(4, grid // 20)
    return max(1, min(budget, max(grid // 10, 1)))


def allocation_curve(
    config: SystemConfig,
    workload: WorkloadSpec,
    class_id: int,
    frames_grid: Optional[Sequence[int]] = None,
    curve_points: int = 129,
    method: str = "schweitzer",
) -> Tuple[List[int], List[float], int, int]:
    """Evaluate ``R(frames)`` for the goal class over a frames grid.

    Returns ``(frames, response_ms, solver_iterations, solves)``.  The
    grid spans 0..buffer_pages_per_node inclusive; ``curve_points``
    caps its resolution (the curve is interpolated between grid frames
    by conservative step lookup, not linearly).
    """
    cap = config.buffer_pages_per_node
    if frames_grid is None:
        count = min(cap + 1, max(curve_points, 2))
        frames_grid = sorted({
            round(i * cap / (count - 1)) for i in range(count)
        })
    page = config.page_size
    responses: List[float] = []
    iterations = 0
    for f in frames_grid:
        prediction = predict_response(
            config, workload, allocation={class_id: f * page},
            method=method,
        )
        responses.append(prediction.response_of(class_id))
        iterations += prediction.iterations
    return list(frames_grid), responses, iterations, len(frames_grid)


def _minimal_frames(
    frames: Sequence[int], responses: Sequence[float], goal_ms: float
) -> Optional[Tuple[int, float]]:
    """Smallest gridded allocation with ``R(f) <= goal``.

    A linear scan, not bisection: ``R(f)`` is *mostly* monotone
    non-increasing, but dedicating memory also starves the no-goal
    class and raises shared-station congestion, which can bend the
    curve locally.  Returns None when no allocation reaches the goal.
    """
    for f, rt in zip(frames, responses):
        if rt <= goal_ms:
            return f, rt
    return None


def prescreen_goals(
    config: SystemConfig,
    workload: WorkloadSpec,
    goals: Sequence[float],
    class_id: int = 1,
    budget: Optional[int] = None,
    curve_points: int = 129,
    method: str = "schweitzer",
) -> PrescreenReport:
    """Screen a dense goal grid analytically; pick points to simulate.

    One allocation-curve evaluation (``curve_points`` MVA solves)
    answers every goal: each is classified into its regime and given
    its minimal satisfying allocation.  The selection covers the full
    feasibility frontier — grid endpoints, both sides of every regime
    boundary — and fills the remaining budget with evenly spaced
    binding-regime representatives.
    """
    if not goals:
        raise ValueError("need at least one goal to screen")
    t0 = time.perf_counter()
    frames, responses, iterations, solves = allocation_curve(
        config, workload, class_id,
        curve_points=curve_points, method=method,
    )
    best_rt = min(responses)  # the most memory can achieve
    points: List[GoalScreenPoint] = []
    for goal_ms in goals:
        found = _minimal_frames(frames, responses, goal_ms)
        if found is None:
            points.append(GoalScreenPoint(
                goal_ms=goal_ms, regime=INFEASIBLE,
                predicted_rt_ms=best_rt, dedicated_bytes_per_node=None,
            ))
            continue
        f_star, rt = found
        regime = SLACK if f_star == 0 else BINDING
        points.append(GoalScreenPoint(
            goal_ms=goal_ms, regime=regime, predicted_rt_ms=rt,
            dedicated_bytes_per_node=f_star * config.page_size,
        ))
    solver_ms = (time.perf_counter() - t0) * 1000.0

    budget = _default_budget(len(points), budget)
    mandatory: List[int] = [0, len(points) - 1]
    for i in range(1, len(points)):
        if points[i].regime != points[i - 1].regime:
            mandatory.extend((i - 1, i))
    mandatory = sorted(set(mandatory))

    binding = [
        i for i, p in enumerate(points)
        if p.regime == BINDING and i not in set(mandatory)
    ]
    remaining = budget - len(mandatory)
    fill: List[int] = []
    if remaining > 0 and binding:
        take = min(remaining, len(binding))
        stride = len(binding) / take
        fill = [binding[int(k * stride)] for k in range(take)]
    selected = sorted(set(mandatory + fill))

    return PrescreenReport(
        points=points, selected=selected, solver_ms=solver_ms,
        solver_iterations=iterations, solves=solves, budget=budget,
    )


# -- two-class goal pairs ---------------------------------------------


@dataclass
class GoalPairScreenPoint:
    """Analytic verdict for one (goal k1, goal k2) pair."""

    goal1_ms: float
    goal2_ms: float
    feasible: bool
    #: Predicted (R1, R2) at the least-memory feasible split, or at the
    #: closest split for infeasible pairs.
    predicted_rt_ms: Tuple[float, float]
    #: (class-1 bytes, class-2 bytes) per node of that split.
    dedicated_bytes_per_node: Optional[Tuple[int, int]]


@dataclass
class PairPrescreenReport:
    """Result of one two-class pre-screening pass."""

    points: List[GoalPairScreenPoint]
    selected: List[int]
    solver_ms: float
    solver_iterations: int
    solves: int
    budget: int
    #: Grid shape (goals along k1, goals along k2).
    shape: Tuple[int, int] = (0, 0)

    @property
    def grid_size(self) -> int:
        """Number of goal pairs classified."""
        return len(self.points)

    @property
    def frontier_size(self) -> int:
        """Number of goal pairs selected for simulation."""
        return len(self.selected)

    def selected_pairs(self) -> List[Tuple[float, float]]:
        """The selected ``(goal1, goal2)`` pairs, in grid order."""
        return [
            (self.points[i].goal1_ms, self.points[i].goal2_ms)
            for i in self.selected
        ]

    def trace_fields(self) -> Dict:
        """The record body for the ``prescreen`` telemetry kind."""
        feasible = sum(1 for p in self.points if p.feasible)
        return dict(
            grid=self.grid_size,
            frontier=self.frontier_size,
            solver_iterations=self.solver_iterations,
            solves=self.solves,
            ms=round(self.solver_ms, 3),
            budget=self.budget,
            feasible=feasible,
            infeasible=self.grid_size - feasible,
        )


def _split_grid(cap: int, splits: int) -> List[Tuple[int, int]]:
    """Candidate (f1, f2) dedicated-frame splits with f1 + f2 <= cap."""
    steps = sorted({round(i * cap / (splits - 1)) for i in range(splits)})
    return [
        (f1, f2) for f1 in steps for f2 in steps if f1 + f2 <= cap
    ]


def prescreen_goal_pairs(
    config: SystemConfig,
    workload: WorkloadSpec,
    goal_pairs: Sequence[Tuple[float, float]],
    class_ids: Tuple[int, int] = (1, 2),
    budget: Optional[int] = None,
    splits: int = 9,
    method: str = "schweitzer",
) -> PairPrescreenReport:
    """Screen (goal k1, goal k2) pairs against the allocation-split grid.

    The goal-independent part — (R1, R2) at every (f1, f2) split of the
    per-node memory — is computed once (``O(splits^2)`` MVA solves);
    each pair is then classified by table lookup: feasible iff *some*
    split satisfies both goals.  Selected for simulation: every pair
    adjacent (in the pair grid) to a feasibility flip, budget-capped,
    which is exactly the feasibility frontier of the goal plane.
    """
    if not goal_pairs:
        raise ValueError("need at least one goal pair to screen")
    c1, c2 = class_ids
    t0 = time.perf_counter()
    cap = config.buffer_pages_per_node
    page = config.page_size
    table: List[Tuple[int, int, float, float]] = []
    iterations = 0
    splits_list = _split_grid(cap, splits)
    for f1, f2 in splits_list:
        prediction = predict_response(
            config, workload,
            allocation={c1: f1 * page, c2: f2 * page},
            method=method,
        )
        iterations += prediction.iterations
        table.append((
            f1, f2,
            prediction.response_of(c1), prediction.response_of(c2),
        ))

    points: List[GoalPairScreenPoint] = []
    for g1, g2 in goal_pairs:
        feasible = [
            row for row in table if row[2] <= g1 and row[3] <= g2
        ]
        if feasible:
            # Least total memory among satisfying splits.
            f1, f2, r1, r2 = min(feasible, key=lambda r: r[0] + r[1])
            points.append(GoalPairScreenPoint(
                goal1_ms=g1, goal2_ms=g2, feasible=True,
                predicted_rt_ms=(r1, r2),
                dedicated_bytes_per_node=(f1 * page, f2 * page),
            ))
        else:
            # Closest miss: smallest combined goal overshoot.
            f1, f2, r1, r2 = min(
                table,
                key=lambda r: max(r[2] - g1, 0.0) + max(r[3] - g2, 0.0),
            )
            points.append(GoalPairScreenPoint(
                goal1_ms=g1, goal2_ms=g2, feasible=False,
                predicted_rt_ms=(r1, r2),
                dedicated_bytes_per_node=None,
            ))
    solver_ms = (time.perf_counter() - t0) * 1000.0

    # Frontier: pairs whose feasibility differs from a neighbor in
    # either goal dimension (the pair list is a row-major grid when
    # produced by pair_grid(); for arbitrary lists, fall back to
    # index adjacency).
    n1 = len({p.goal1_ms for p in points})
    n2 = len({p.goal2_ms for p in points})
    grid_shaped = n1 * n2 == len(points)
    flips: List[int] = []
    if grid_shaped:
        for i, p in enumerate(points):
            row, col = divmod(i, n2)
            for j in (i - n2, i + n2, i - 1, i + 1):
                if j < 0 or j >= len(points):
                    continue
                jr, jc = divmod(j, n2)
                if abs(jr - row) + abs(jc - col) != 1:
                    continue
                if points[j].feasible != p.feasible:
                    flips.append(i)
                    break
    else:
        for i in range(1, len(points)):
            if points[i].feasible != points[i - 1].feasible:
                flips.extend((i - 1, i))
    budget = _default_budget(len(points), budget)
    mandatory = sorted(set(flips + [0, len(points) - 1]))
    if len(mandatory) > budget:
        stride = len(mandatory) / budget
        mandatory = [mandatory[int(k * stride)] for k in range(budget)]
    selected = sorted(set(mandatory))

    return PairPrescreenReport(
        points=points, selected=selected, solver_ms=solver_ms,
        solver_iterations=iterations, solves=len(splits_list),
        budget=budget, shape=(n1, n2),
    )


def pair_grid(
    range1: Tuple[float, float],
    range2: Tuple[float, float],
    points: int,
) -> List[Tuple[float, float]]:
    """A ~sqrt(points) x sqrt(points) row-major (goal1, goal2) grid.

    Pairs violating the §7.4 ordering constraint (``goal1 < goal2``)
    are kept in the grid for frontier geometry but marked by callers
    as unsimulatable; this helper simply enumerates the box.
    """
    if points < 1:
        raise ValueError("need at least one grid point")
    side = max(2, round(points ** 0.5))

    def axis(lo: float, hi: float) -> List[float]:
        if side == 1:
            return [0.5 * (lo + hi)]
        return [lo + i * (hi - lo) / (side - 1) for i in range(side)]

    return [(g1, g2) for g1 in axis(*range1) for g2 in axis(*range2)]
