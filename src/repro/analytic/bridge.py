"""Bridge from simulator configuration to the analytic queueing model.

Maps a :class:`~repro.cluster.config.SystemConfig`, a
:class:`~repro.workload.spec.WorkloadSpec`, and a buffer-allocation
vector to a :class:`~repro.analytic.mva.ClosedNetwork`, in three steps:

1. **allocation → hit profile** — how often a page access is served
   from the local cache, a remote cache, or the home disk, given the
   frames the class can hold (dedicated pool plus its share of the
   no-goal pool) and its access skew;
2. **hit profile → service demands** — per-operation service demand at
   the CPUs, the disks, and the shared network medium, mirroring the
   charges of :meth:`repro.cluster.cluster.Cluster.access_run` term by
   term (buffer lookup, remote-request CPU, page handling, request and
   ship wire times, disk reads);
3. **open → closed mapping** — the simulator is an open system
   (Poisson arrivals per node per class); MVA solves closed networks.
   Each class becomes ``N_c`` customers with think time
   ``Z_c = N_c / lambda_c``, with ``N_c`` scaled (``slack`` times the
   expected number in system) so throughput approaches the open
   arrival rate and the closed response time converges to the open
   one.

Where the simulator deliberately breaks the product-form assumptions —
deterministic service times, cache-state dependence — the model is a
principled approximation; see docs/analytic.md for the error budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analytic.mva import (
    DELAY,
    QUEUE,
    ClosedNetwork,
    MvaSolution,
    Station,
    solve,
)
from repro.bufmgr.manager import NO_GOAL_CLASS
from repro.cluster.config import SystemConfig
from repro.cluster.messages import MessageKind, message_size
from repro.workload.spec import ClassSpec, WorkloadSpec

#: Default closed-population slack: N_c = slack * (expected number of
#: class-c operations in system).  Larger = closer to the open system
#: but a bigger exact-MVA state space.
DEFAULT_SLACK = 64.0
#: Smallest per-class closed population.
MIN_POPULATION = 8


@dataclass(frozen=True)
class HitProfile:
    """Where a page access of one class is served from."""

    local: float
    remote: float
    disk: float

    def __post_init__(self):
        for p in (self.local, self.remote, self.disk):
            if p < -1e-12 or p > 1.0 + 1e-12:
                raise ValueError("hit probabilities must lie in [0, 1]")
        if abs(self.local + self.remote + self.disk - 1.0) > 1e-9:
            raise ValueError("hit probabilities must sum to 1")


@dataclass(frozen=True)
class AnalyticPrediction:
    """Analytic steady-state prediction for one cluster configuration.

    ``response_ms`` maps class id → predicted mean operation response
    time; ``saturated`` marks configurations whose open-system
    utilization reaches 1 at some station (response times are
    ``inf`` there and no closed network is solved).
    """

    response_ms: Dict[int, float]
    throughput_per_ms: Dict[int, float]
    utilization: Dict[str, float]
    hit: Dict[int, HitProfile]
    population: Dict[int, int]
    method: str
    iterations: int
    saturated: bool = False

    def response_of(self, class_id: int) -> float:
        """Predicted mean response time (ms) for one workload class."""
        return self.response_ms[class_id]


# -- step 1: allocation -> hit profile --------------------------------


def _zipf_prefix(num_pages: int, theta: float, prefix: int) -> float:
    """Total access probability of the ``prefix`` hottest pages."""
    if prefix <= 0:
        return 0.0
    if prefix >= num_pages:
        return 1.0
    weights = [rank ** (-theta) for rank in range(1, num_pages + 1)]
    return math.fsum(weights[:prefix]) / math.fsum(weights)


def class_frames(
    config: SystemConfig,
    workload: WorkloadSpec,
    allocation: Mapping[int, int],
) -> Dict[int, float]:
    """Frames per node each class can effectively cache its pages in.

    A class with a dedicated pool holds exactly its granted frames (§6:
    its fetches go to its own pool).  Classes without one share the
    no-goal pool; their shares are split proportionally to page-access
    rate, which is how an unbiased replacement policy fills the pool in
    steady state.
    """
    total = config.buffer_pages_per_node
    frames: Dict[int, float] = {}
    dedicated_total = 0
    undedicated: List[ClassSpec] = []
    for spec in workload.classes:
        nbytes = allocation.get(spec.class_id, 0)
        pages = min(nbytes // config.page_size, total)
        if spec.class_id != NO_GOAL_CLASS and pages > 0:
            frames[spec.class_id] = float(pages)
            dedicated_total += pages
        else:
            undedicated.append(spec)
    no_goal_frames = max(total - dedicated_total, 0)
    weights = {
        spec.class_id: _total_rate(config, spec) * spec.pages_per_op
        for spec in undedicated
    }
    weight_sum = sum(weights.values())
    for spec in undedicated:
        share = weights[spec.class_id] / weight_sum if weight_sum else 0.0
        frames[spec.class_id] = no_goal_frames * share
    return frames


def hit_profile(
    config: SystemConfig, spec: ClassSpec, frames_per_node: float
) -> HitProfile:
    """Hit profile of one class given its effective per-node frames.

    * ``skew == 0`` (uniform): each node holds ``b`` of the class's
      ``P`` pages, and the cost-based replacement's last-copy benefit
      term (§6) steers the nodes toward caching *disjoint* subsets —
      duplicating a page that is already cached elsewhere scores lower
      than keeping a sole copy alive.  The cluster therefore holds
      ``min(n*b, P)`` distinct pages: a random access hits locally
      with ``b/P``, hits some remote cache with the rest of the
      distinct mass, and reaches disk only for the uncached remainder.
      (An independent-sampling model — ``disk = (1-b/P)^n`` — badly
      underestimates remote hits once ``n*b`` approaches ``P``.)
    * ``skew > 0``: a heat-ranked pool converges on the ``b`` hottest
      pages at *every* node (heat is a global statistic), so the local
      hit is the Zipf prefix mass of ``b`` and remote hits vanish —
      whatever is cached anywhere is cached locally too.
    """
    P = len(spec.pages)
    n = config.num_nodes
    b = min(frames_per_node, float(P))
    if spec.skew == 0.0:
        distinct = min(n * b, float(P))
        local = b / P
        remote = max(distinct - b, 0.0) / P
        disk = max(1.0 - distinct / P, 0.0)
    else:
        local = _zipf_prefix(P, spec.skew, int(b))
        remote = 0.0
        disk = 1.0 - local
    return HitProfile(local=local, remote=remote, disk=disk)


# -- step 2: hit profile -> service demands ---------------------------


@dataclass(frozen=True)
class OpDemands:
    """Per-operation service demand (ms) of one class, by resource."""

    cpu_total: float   # across all CPUs
    disk_total: float  # across all disks
    network: float     # on the single shared medium


def service_demands(
    config: SystemConfig, spec: ClassSpec, profile: HitProfile
) -> OpDemands:
    """Mirror the ``access_run`` charges for one operation.

    Every access pays the buffer-lookup CPU charge.  A remote hit adds
    a request wire, message+lookup CPU at the holder, a page ship, and
    page-handling CPU.  A disk access adds the disk read and handling,
    plus — when the home is remote, probability ``(n-1)/n`` under
    round-robin placement and uniform access — the request/ship wires
    and the home's message CPU.
    """
    cpu = config.cpu
    lookup = cpu.service_ms(cpu.instructions_buffer_lookup)
    handling = cpu.service_ms(cpu.instructions_page_handling)
    message = cpu.service_ms(cpu.instructions_message)
    req_wire = config.network.transfer_ms(
        message_size(MessageKind.PAGE_REQUEST)
    )
    ship_wire = config.network.transfer_ms(
        message_size(MessageKind.PAGE_SHIP, config.page_size)
    )
    disk_read = config.disk.access_ms(config.page_size)

    n = config.num_nodes
    remote_home = (n - 1) / n if n > 1 else 0.0
    h_r, h_d = profile.remote, profile.disk

    per_access_cpu = (
        lookup
        + h_r * (message + lookup + handling)
        + h_d * (handling + remote_home * message)
    )
    per_access_net = (h_r + h_d * remote_home) * (req_wire + ship_wire)
    per_access_disk = h_d * disk_read

    A = spec.pages_per_op
    return OpDemands(
        cpu_total=A * per_access_cpu,
        disk_total=A * per_access_disk,
        network=A * per_access_net,
    )


# -- step 3: open -> closed mapping -----------------------------------


def _total_rate(config: SystemConfig, spec: ClassSpec) -> float:
    """Class arrival rate summed over all nodes (operations/ms)."""
    return sum(spec.rate_for(i) for i in range(config.num_nodes))


def build_network(
    config: SystemConfig,
    workload: WorkloadSpec,
    allocation: Optional[Mapping[int, int]] = None,
    slack: float = DEFAULT_SLACK,
    max_population: Optional[int] = None,
) -> Tuple[Optional[ClosedNetwork], Dict]:
    """Build the closed network for one cluster configuration.

    ``allocation`` maps class id → dedicated bytes *per node*.  Service
    demands are spread symmetrically: each operation places ``1/n`` of
    its CPU demand on each of the ``n`` CPU stations and ``1/n`` of its
    disk demand on each disk station (round-robin homes and symmetric
    arrivals make every node statistically identical); the network
    medium is one shared queueing station, exactly as in the
    simulator.  Returns ``(network, meta)``; ``network`` is None when
    some station saturates in the open system (``meta['saturated']``).
    """
    allocation = allocation or {}
    classes = sorted(workload.classes, key=lambda c: c.class_id)
    frames = class_frames(config, workload, allocation)
    profiles = {
        spec.class_id: hit_profile(config, spec, frames[spec.class_id])
        for spec in classes
    }
    demands_by_class = {
        spec.class_id: service_demands(
            config, spec, profiles[spec.class_id]
        )
        for spec in classes
    }
    rates = {
        spec.class_id: _total_rate(config, spec) for spec in classes
    }

    n = config.num_nodes
    stations = (
        [Station(f"cpu{i}", QUEUE) for i in range(n)]
        + [Station(f"disk{i}", QUEUE) for i in range(n)]
        + [Station("net", QUEUE)]
    )
    rows = []
    for spec in classes:
        d = demands_by_class[spec.class_id]
        rows.append(
            tuple([d.cpu_total / n] * n + [d.disk_total / n] * n
                  + [d.network])
        )

    # Open-system utilization check + response-time estimate (exact for
    # the M/M/1 product-form open network; an upper-bound anchor for
    # sizing the closed populations).
    utilization = [
        sum(rates[spec.class_id] * rows[c][s]
            for c, spec in enumerate(classes))
        for s in range(len(stations))
    ]
    meta: Dict = {
        "profiles": profiles,
        "frames": frames,
        "rates": rates,
        "open_utilization": {
            stations[s].name: utilization[s]
            for s in range(len(stations))
        },
    }
    if max(utilization) >= 1.0:
        meta["saturated"] = True
        return None, meta
    meta["saturated"] = False

    open_response = {
        spec.class_id: sum(
            rows[c][s] / (1.0 - utilization[s])
            for s in range(len(stations))
        )
        for c, spec in enumerate(classes)
    }
    meta["open_response"] = open_response

    population = []
    think = []
    for c, spec in enumerate(classes):
        lam = rates[spec.class_id]
        in_system = lam * open_response[spec.class_id]
        pop = max(MIN_POPULATION, math.ceil(slack * in_system))
        if max_population is not None:
            pop = min(pop, max_population)
        population.append(pop)
        think.append(pop / lam)

    network = ClosedNetwork(
        stations=tuple(stations),
        class_names=tuple(str(spec.class_id) for spec in classes),
        demands=tuple(rows),
        population=tuple(population),
        think_ms=tuple(think),
    )
    return network, meta


def predict_response(
    config: SystemConfig,
    workload: WorkloadSpec,
    allocation: Optional[Mapping[int, int]] = None,
    method: str = "auto",
    slack: float = DEFAULT_SLACK,
    max_population: Optional[int] = None,
) -> AnalyticPrediction:
    """Predict per-class steady-state response times analytically.

    The public bridge API: a cluster config + workload + allocation
    vector in, per-class mean response times (ms), throughputs, and
    station utilizations out.  Saturated configurations come back with
    ``inf`` response times instead of raising — the frontier extractor
    treats them as infeasible points.
    """
    network, meta = build_network(
        config, workload, allocation,
        slack=slack, max_population=max_population,
    )
    classes = sorted(workload.classes, key=lambda c: c.class_id)
    if network is None:
        return AnalyticPrediction(
            response_ms={c.class_id: float("inf") for c in classes},
            throughput_per_ms={c.class_id: 0.0 for c in classes},
            utilization=meta["open_utilization"],
            hit=meta["profiles"],
            population={c.class_id: 0 for c in classes},
            method="saturated",
            iterations=0,
            saturated=True,
        )
    solution = solve(network, method=method)
    return AnalyticPrediction(
        response_ms={
            spec.class_id: solution.response_ms[c]
            for c, spec in enumerate(classes)
        },
        throughput_per_ms={
            spec.class_id: solution.throughput_per_ms[c]
            for c, spec in enumerate(classes)
        },
        utilization=solution.utilization,
        hit=meta["profiles"],
        population={
            spec.class_id: network.population[c]
            for c, spec in enumerate(classes)
        },
        method=solution.method,
        iterations=solution.iterations,
        saturated=False,
    )
