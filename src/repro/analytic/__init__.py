"""Analytic fast path: multiclass MVA + goal-space pre-screening.

Three layers (see docs/analytic.md):

* :mod:`repro.analytic.mva` — exact and Schweitzer/Bard approximate
  Mean Value Analysis for closed multiclass product-form networks;
* :mod:`repro.analytic.bridge` — the buffer-allocation → hit-rate →
  service-demand bridge mapping a cluster configuration to a network;
* :mod:`repro.analytic.frontier` — feasibility-frontier extraction
  over dense goal grids (the ``--prescreen`` machinery);
* :mod:`repro.analytic.validate` — the sim-vs-theory cross-validation
  harness behind ``repro validate-analytic``.
"""

from repro.analytic.bridge import (
    AnalyticPrediction,
    HitProfile,
    build_network,
    hit_profile,
    predict_response,
    service_demands,
)
from repro.analytic.frontier import (
    PairPrescreenReport,
    PrescreenReport,
    pair_grid,
    prescreen_goal_pairs,
    prescreen_goals,
)
from repro.analytic.mva import (
    ClosedNetwork,
    MvaSolution,
    Station,
    exact_mva,
    machine_repairman,
    schweitzer_mva,
    solve,
)
from repro.analytic.validate import (
    ValidationCase,
    ValidationReport,
    default_cases,
    run_validation,
)

__all__ = [
    "AnalyticPrediction",
    "ClosedNetwork",
    "HitProfile",
    "MvaSolution",
    "PairPrescreenReport",
    "PrescreenReport",
    "Station",
    "ValidationCase",
    "ValidationReport",
    "build_network",
    "default_cases",
    "exact_mva",
    "hit_profile",
    "machine_repairman",
    "pair_grid",
    "predict_response",
    "prescreen_goal_pairs",
    "prescreen_goals",
    "run_validation",
    "schweitzer_mva",
    "service_demands",
    "solve",
]
