"""Cross-validation: simulated steady state vs. exact MVA.

The strongest verification layer the repository has: golden traces pin
the simulator against *itself*; this harness pins it against *queueing
theory*.  On configurations chosen to be product-form-reducible, the
simulated per-class steady-state mean response time must match the
exact-MVA prediction of :mod:`repro.analytic` within tolerance.

"Product-form-reducible" means the two deliberate model breaks are
driven to where their error is bounded and small:

* **Deterministic services.**  The simulator's disk/CPU/wire holds are
  constants; MVA assumes exponential services, whose queueing delay is
  about twice deterministic-service delay (M/D/1 vs. M/M/1).  The
  validation points run at low utilization (~10%), where waiting is a
  small slice of the response time, so the 2x-on-waiting discrepancy
  stays well inside the response-time tolerance.
* **Cache-state dependence.**  Hit probabilities are state-dependent
  in the simulator, independent in the model.  The validation configs
  use near-zero cache (a 2-frame buffer against a 2000-page database),
  making the service demands exact up to a sub-percent hit rate.

A failing case therefore indicates a real accounting discrepancy —
a mispriced service charge, a missing visit, a broken station — and
not tolerance noise.  ``repro validate-analytic`` runs the suite from
the command line; the analytic-smoke CI job runs ``--quick``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.analytic.bridge import predict_response
from repro.cluster.cluster import Cluster
from repro.cluster.config import NodeParameters, SystemConfig
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import ClassSpec, WorkloadSpec, partition_pages

#: Acceptance tolerance on |simulated - MVA| / simulated.
DEFAULT_TOLERANCE = 0.10


def product_form_config() -> SystemConfig:
    """The §7.1 system with the cache shrunk to 2 frames per node.

    Everything else — CPU charges, disk, network — is the paper's
    setup, so the validation exercises the real access-path accounting.
    """
    base = SystemConfig()
    return replace(
        base, node=NodeParameters(buffer_bytes=2 * base.page_size)
    )


@dataclass(frozen=True)
class ValidationCase:
    """One product-form-reducible configuration to cross-validate."""

    name: str
    config: SystemConfig
    workload: WorkloadSpec
    description: str = ""
    warmup_ms: float = 2_000.0
    measure_ms: float = 160_000.0


def default_cases(quick: bool = False) -> List[ValidationCase]:
    """The three asserted configurations of the acceptance criteria.

    Arrival rates keep the busiest station near 10% utilization (see
    the module docstring for why); the asymmetric case differentiates
    the classes in both operation size and arrival rate.
    """
    config = product_form_config()
    measure_ms = 60_000.0 if quick else 160_000.0
    half1, half2 = partition_pages(config.num_pages, 2)

    single = WorkloadSpec(classes=[
        ClassSpec(class_id=1, goal_ms=50.0, pages=tuple(range(config.num_pages)),
                  pages_per_op=4, arrival_rate_per_node=0.004,
                  name="only"),
    ])
    symmetric = WorkloadSpec(classes=[
        ClassSpec(class_id=1, goal_ms=50.0, pages=half1,
                  pages_per_op=4, arrival_rate_per_node=0.002,
                  name="k1"),
        ClassSpec(class_id=2, goal_ms=60.0, pages=half2,
                  pages_per_op=4, arrival_rate_per_node=0.002,
                  name="k2"),
    ])
    asymmetric = WorkloadSpec(classes=[
        ClassSpec(class_id=1, goal_ms=50.0, pages=half1,
                  pages_per_op=2, arrival_rate_per_node=0.003,
                  name="small-ops"),
        ClassSpec(class_id=2, goal_ms=80.0, pages=half2,
                  pages_per_op=8, arrival_rate_per_node=0.001,
                  name="large-ops"),
    ])
    return [
        ValidationCase(
            name="single-class", config=config, workload=single,
            description="one class, uniform access, whole database",
            measure_ms=measure_ms,
        ),
        ValidationCase(
            name="two-class-symmetric", config=config, workload=symmetric,
            description="two identical classes on disjoint halves",
            measure_ms=measure_ms,
        ),
        ValidationCase(
            name="two-class-asymmetric", config=config, workload=asymmetric,
            description="2-page ops at 3x the rate of 8-page ops",
            measure_ms=measure_ms,
        ),
    ]


class _MeanSink:
    """Per-class response-time means (plus counts) from the generator."""

    def __init__(self):
        self.total: Dict[int, float] = {}
        self.count: Dict[int, int] = {}

    def on_arrival(self, node_id, class_id, now):
        pass

    def on_complete(self, node_id, class_id, response_ms, now):
        self.total[class_id] = self.total.get(class_id, 0.0) + response_ms
        self.count[class_id] = self.count.get(class_id, 0) + 1

    def mean(self, class_id: int) -> float:
        count = self.count.get(class_id, 0)
        return self.total.get(class_id, 0.0) / count if count else 0.0


def simulate_case(
    case: ValidationCase, seed: int = 0
) -> Dict[int, Tuple[float, int]]:
    """Simulate one case to steady state under a static (empty) allocation.

    No controller, no dedicated pools — the system the analytic model
    describes.  Returns class id → (mean RT over the measured horizon,
    completed operations).
    """
    cluster = Cluster(case.config, seed=seed)
    generator = WorkloadGenerator(cluster, case.workload)
    generator.start()
    cluster.env.run(until=case.warmup_ms)
    sink = _MeanSink()
    generator.sink = sink
    cluster.env.run(until=case.warmup_ms + case.measure_ms)
    return {
        spec.class_id: (sink.mean(spec.class_id),
                        sink.count.get(spec.class_id, 0))
        for spec in case.workload.classes
    }


def _simulate_case_task(task) -> Dict[int, Tuple[float, int]]:
    """Module-level worker so cases can cross process boundaries."""
    case, seed = task
    return simulate_case(case, seed=seed)


@dataclass
class ClassComparison:
    """Simulated vs. predicted mean RT for one class of one case."""

    case: str
    class_id: int
    simulated_ms: float
    predicted_ms: float
    operations: int
    tolerance: float

    @property
    def relative_error(self) -> float:
        """|simulated - predicted| / simulated (inf when unmeasured)."""
        if self.simulated_ms == 0.0:
            return float("inf")
        return abs(self.simulated_ms - self.predicted_ms) / self.simulated_ms

    @property
    def passed(self) -> bool:
        """True when the error is within the acceptance tolerance."""
        return self.relative_error <= self.tolerance


@dataclass
class ValidationReport:
    """All class comparisons of one validation run."""

    rows: List[ClassComparison] = field(default_factory=list)
    method: str = "exact"

    def all_passed(self) -> bool:
        """True when every class of every case passed."""
        return all(row.passed for row in self.rows)

    def worst_error(self) -> float:
        """Largest relative error across all rows (0 when empty)."""
        return max((row.relative_error for row in self.rows), default=0.0)

    def to_text(self) -> str:
        """The comparison as an aligned text table."""
        from repro.experiments.reporting import format_table

        return format_table(
            ["case", "class", "simulated (ms)", "MVA (ms)",
             "error", "ops", "ok"],
            [
                [
                    row.case, row.class_id,
                    round(row.simulated_ms, 3),
                    round(row.predicted_ms, 3),
                    f"{row.relative_error:.1%}",
                    row.operations,
                    "ok" if row.passed else "FAIL",
                ]
                for row in self.rows
            ],
            title=(
                f"Analytic cross-validation ({self.method} MVA, "
                f"tolerance {self.rows[0].tolerance:.0%})"
                if self.rows else "Analytic cross-validation"
            ),
        )

    def to_dict(self) -> Dict:
        """JSON-serializable form of the report."""
        return {
            "method": self.method,
            "all_passed": self.all_passed(),
            "worst_error": self.worst_error(),
            "rows": [
                {
                    "case": row.case,
                    "class_id": row.class_id,
                    "simulated_ms": row.simulated_ms,
                    "predicted_ms": row.predicted_ms,
                    "relative_error": row.relative_error,
                    "operations": row.operations,
                    "passed": row.passed,
                }
                for row in self.rows
            ],
        }


def run_validation(
    quick: bool = False,
    seed: int = 0,
    jobs: int = 1,
    tolerance: float = DEFAULT_TOLERANCE,
    method: str = "exact",
    cases: Optional[List[ValidationCase]] = None,
) -> ValidationReport:
    """Run the cross-validation suite and compare against exact MVA.

    ``jobs > 1`` farms the independent case simulations to worker
    processes (identical results — each case is a self-contained seeded
    simulation).  ``quick`` shortens the measured horizon for smoke
    runs; the tolerance is unchanged because the cases average
    hundreds of operations per class either way.
    """
    cases = default_cases(quick=quick) if cases is None else cases
    tasks = [(case, seed) for case in cases]
    if jobs > 1:
        from repro.experiments.parallel import run_tasks

        measured = run_tasks(_simulate_case_task, tasks, jobs=jobs)
    else:
        measured = [_simulate_case_task(task) for task in tasks]

    report = ValidationReport(method=method)
    for case, observed in zip(cases, measured):
        prediction = predict_response(
            case.config, case.workload, allocation={}, method=method,
        )
        for spec in sorted(
            case.workload.classes, key=lambda c: c.class_id
        ):
            mean_ms, count = observed[spec.class_id]
            report.rows.append(ClassComparison(
                case=case.name,
                class_id=spec.class_id,
                simulated_ms=mean_ms,
                predicted_ms=prediction.response_of(spec.class_id),
                operations=count,
                tolerance=tolerance,
            ))
    return report
