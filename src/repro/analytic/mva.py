"""Mean Value Analysis for closed multiclass product-form networks.

The solver family behind the analytic fast path (ROADMAP item 3):

* :func:`exact_mva` — the exact multiclass MVA recursion (Reiser &
  Lavenberg).  It walks every population vector ``n <= N`` once, so its
  cost is ``prod(N_c + 1)`` vector evaluations — fine for the small
  populations the open→closed mapping of :mod:`repro.analytic.bridge`
  produces, infeasible for large ones.
* :func:`schweitzer_mva` — the Bard/Schweitzer approximate MVA fixed
  point, whose cost is independent of the population sizes.
* :func:`solve` — picks between them by state-space size.

Stations are *load-independent queueing* stations (one FIFO/PS server;
residence ``D * (1 + Q)``) or pure *delay* stations (residence ``D``,
no queueing).  Per-class think time ``Z_c`` models the closed network's
source of new work; the bridge uses it to emulate the simulator's open
Poisson arrivals.

Everything here is plain-Python and dependency-free: a solve is a few
thousand float operations, fast enough to evaluate 1000-point goal
grids in well under a second (the ``--prescreen`` path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Station kinds: a queueing station (single load-independent server)
#: or a pure delay (infinite-server) station.
QUEUE = "queue"
DELAY = "delay"

#: Above this many population vectors, :func:`solve` switches from the
#: exact recursion to the Schweitzer fixed point.
DEFAULT_EXACT_LIMIT = 20_000


@dataclass(frozen=True)
class Station:
    """One service station of the closed network."""

    name: str
    kind: str = QUEUE

    def __post_init__(self):
        if self.kind not in (QUEUE, DELAY):
            raise ValueError(f"unknown station kind {self.kind!r}")


@dataclass(frozen=True)
class ClosedNetwork:
    """A closed multiclass product-form queueing network.

    ``demands[c][s]`` is class ``c``'s total service demand (ms) at
    station ``s`` per passage through the network (visit count times
    per-visit service time).  ``population[c]`` customers of class
    ``c`` circulate; each spends ``think_ms[c]`` thinking between
    passages (an infinite-server term outside the station set).
    """

    stations: Tuple[Station, ...]
    class_names: Tuple[str, ...]
    demands: Tuple[Tuple[float, ...], ...]
    population: Tuple[int, ...]
    think_ms: Tuple[float, ...] = ()

    def __post_init__(self):
        if not self.stations:
            raise ValueError("need at least one station")
        if not self.class_names:
            raise ValueError("need at least one class")
        if len(self.demands) != len(self.class_names):
            raise ValueError("one demand row per class required")
        for row in self.demands:
            if len(row) != len(self.stations):
                raise ValueError("one demand per station required")
            if any(d < 0 for d in row):
                raise ValueError("demands must be non-negative")
        if len(self.population) != len(self.class_names):
            raise ValueError("one population per class required")
        if any(n < 0 for n in self.population):
            raise ValueError("populations must be non-negative")
        if self.think_ms:
            if len(self.think_ms) != len(self.class_names):
                raise ValueError("one think time per class required")
            if any(z < 0 for z in self.think_ms):
                raise ValueError("think times must be non-negative")

    @property
    def num_classes(self) -> int:
        """Number of workload classes."""
        return len(self.class_names)

    @property
    def num_stations(self) -> int:
        """Number of service stations."""
        return len(self.stations)

    def think(self, c: int) -> float:
        """Think time of class ``c`` (0 when none was given)."""
        return self.think_ms[c] if self.think_ms else 0.0

    def state_space(self) -> int:
        """Population vectors the exact recursion must evaluate."""
        size = 1
        for n in self.population:
            size *= n + 1
        return size


@dataclass
class MvaSolution:
    """Steady-state solution of a :class:`ClosedNetwork`.

    ``response_ms[c]`` is class ``c``'s mean residence time per passage
    summed over all stations (think time excluded);
    ``throughput_per_ms[c]`` its passage completion rate.  Utilizations
    and mean queue lengths are per station, ``queue_by_class[c][s]``
    per class and station.
    """

    method: str
    response_ms: List[float]
    throughput_per_ms: List[float]
    utilization: Dict[str, float]
    queue_length: Dict[str, float]
    queue_by_class: List[List[float]] = field(default_factory=list)
    iterations: int = 1

    def bottleneck(self) -> Tuple[str, float]:
        """The most utilized station and its utilization."""
        name = max(self.utilization, key=self.utilization.get)
        return name, self.utilization[name]


def _finalize(
    network: ClosedNetwork,
    method: str,
    response: Sequence[float],
    throughput: Sequence[float],
    queue_by_class: Sequence[Sequence[float]],
    iterations: int,
) -> MvaSolution:
    """Assemble the solution object from per-class results."""
    utilization: Dict[str, float] = {}
    queue_length: Dict[str, float] = {}
    for s, station in enumerate(network.stations):
        util = sum(
            throughput[c] * network.demands[c][s]
            for c in range(network.num_classes)
        )
        utilization[station.name] = util
        queue_length[station.name] = sum(
            row[s] for row in queue_by_class
        )
    return MvaSolution(
        method=method,
        response_ms=list(response),
        throughput_per_ms=list(throughput),
        utilization=utilization,
        queue_length=queue_length,
        queue_by_class=[list(row) for row in queue_by_class],
        iterations=iterations,
    )


def exact_mva(network: ClosedNetwork) -> MvaSolution:
    """Solve the network with the exact multiclass MVA recursion.

    Walks population vectors in order of total population; for each
    vector ``n`` and class ``c`` with ``n_c > 0`` the arrival theorem
    gives the residence at a queueing station as
    ``D_cs * (1 + Q_s(n - e_c))``.  Exact for product-form networks —
    the theory anchor the property tests and the cross-validation
    harness compare against.
    """
    C = network.num_classes
    S = network.num_stations
    demands = network.demands
    queueing = [s for s in range(S) if network.stations[s].kind == QUEUE]
    delay_ms = [
        sum(
            demands[c][s]
            for s in range(S)
            if network.stations[s].kind == DELAY
        )
        for c in range(C)
    ]
    N = network.population

    # Station queue lengths by population vector, seeded at zero load.
    queues: Dict[Tuple[int, ...], List[float]] = {
        (0,) * C: [0.0] * S
    }
    # Per-class results at the full population.
    response = [0.0] * C
    throughput = [0.0] * C
    queue_by_class = [[0.0] * S for _ in range(C)]

    # Enumerate vectors n <= N in order of total population so every
    # n - e_c is already solved.
    levels: List[List[Tuple[int, ...]]] = [
        [] for _ in range(sum(N) + 1)
    ]

    def vectors(prefix: Tuple[int, ...], c: int) -> None:
        if c == C:
            levels[sum(prefix)].append(prefix)
            return
        for n_c in range(N[c] + 1):
            vectors(prefix + (n_c,), c + 1)

    vectors((), 0)

    for total in range(1, sum(N) + 1):
        for n in levels[total]:
            station_queue = [0.0] * S
            for c in range(C):
                if n[c] == 0:
                    continue
                reduced = n[:c] + (n[c] - 1,) + n[c + 1:]
                prev = queues[reduced]
                resid = [0.0] * S
                for s in queueing:
                    d = demands[c][s]
                    if d:
                        resid[s] = d * (1.0 + prev[s])
                r_total = sum(resid) + delay_ms[c]
                x = n[c] / (network.think(c) + r_total)
                for s in range(S):
                    if network.stations[s].kind == DELAY:
                        resid[s] = demands[c][s]
                    station_queue[s] += x * resid[s]
                if n == N:
                    response[c] = r_total
                    throughput[c] = x
                    queue_by_class[c] = [x * r for r in resid]
            queues[n] = station_queue
        # Vectors below the previous level can no longer be referenced.
        if total >= 2:
            for stale in levels[total - 2]:
                queues.pop(stale, None)

    return _finalize(
        network, "exact", response, throughput, queue_by_class,
        iterations=network.state_space(),
    )


def schweitzer_mva(
    network: ClosedNetwork,
    tol: float = 1e-8,
    max_iterations: int = 10_000,
) -> MvaSolution:
    """Solve the network with the Bard/Schweitzer approximate MVA.

    The arrival-theorem queue ``Q_s(N - e_c)`` is estimated from the
    full-population queue by scaling the tagged class's own share:
    ``Q_s^(c) ≈ Q_s - Q_cs / N_c``.  The fixed point is iterated until
    the largest per-class queue-length change drops below ``tol``.
    Exact at single-class ``N = 1``.  Accuracy is utilization-bound:
    within ~5% of exact below ~0.7 bottleneck utilization, degrading
    toward ~25% at saturation (which the bridge's saturation guard
    never reaches); see ``tests/test_analytic_property.py``.
    """
    C = network.num_classes
    S = network.num_stations
    demands = network.demands
    kinds = [st.kind for st in network.stations]
    N = network.population

    active = [c for c in range(C) if N[c] > 0]
    # Seed: each class's customers spread evenly over its nonzero-demand
    # queueing stations.
    queue = [[0.0] * S for _ in range(C)]
    for c in active:
        spots = [
            s for s in range(S) if kinds[s] == QUEUE and demands[c][s] > 0
        ]
        for s in spots:
            queue[c][s] = N[c] / len(spots)

    response = [0.0] * C
    throughput = [0.0] * C
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        delta = 0.0
        station_total = [
            sum(queue[c][s] for c in active) for s in range(S)
        ]
        new_queue = [[0.0] * S for _ in range(C)]
        for c in active:
            resid = [0.0] * S
            for s in range(S):
                d = demands[c][s]
                if not d:
                    continue
                if kinds[s] == DELAY:
                    resid[s] = d
                else:
                    others = station_total[s] - queue[c][s] / N[c]
                    resid[s] = d * (1.0 + others)
            r_total = sum(resid)
            x = N[c] / (network.think(c) + r_total)
            response[c] = r_total
            throughput[c] = x
            for s in range(S):
                q = x * resid[s]
                new_queue[c][s] = q
                delta = max(delta, abs(q - queue[c][s]))
        queue = new_queue
        if delta < tol:
            break

    return _finalize(
        network, "schweitzer", response, throughput, queue,
        iterations=iterations,
    )


def solve(
    network: ClosedNetwork,
    method: str = "auto",
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> MvaSolution:
    """Solve ``network``, choosing the solver by state-space size.

    ``method`` is ``'auto'`` (exact when the population state space is
    at most ``exact_limit`` vectors, Schweitzer otherwise), ``'exact'``
    or ``'schweitzer'``.
    """
    if method not in ("auto", "exact", "schweitzer"):
        raise ValueError(f"unknown method {method!r}")
    if method == "auto":
        method = (
            "exact" if network.state_space() <= exact_limit
            else "schweitzer"
        )
    if method == "exact":
        return exact_mva(network)
    return schweitzer_mva(network)


def machine_repairman(
    population: int, demand_ms: float, think_ms: float
) -> Tuple[float, float]:
    """Closed-form M/M/1//N ("machine repairman") solution.

    The single-class, single-queueing-station, delay-source special
    case has an independent closed form via the Erlang-like product:
    ``pi_k ∝ N!/(N-k)! * (D/Z)^k``.  Returns ``(response_ms,
    throughput_per_ms)`` — the cross-check for :func:`exact_mva` in the
    property tests.
    """
    if population < 1:
        raise ValueError("need at least one customer")
    if demand_ms <= 0 or think_ms <= 0:
        raise ValueError("demand and think time must be positive")
    rho = demand_ms / think_ms
    # Unnormalized queue-length distribution at the station.
    weights = []
    w = 1.0
    for k in range(population + 1):
        if k:
            w *= (population - k + 1) * rho
        weights.append(w)
    total = math.fsum(weights)
    p0 = weights[0] / total
    throughput = (1.0 - p0) / demand_ms
    response = population / throughput - think_ms
    return response, throughput
