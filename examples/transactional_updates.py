"""Distributed transactions with updates (the §3 extension).

The paper's evaluation is read-only, but §3 describes exactly how
updates fit: distributed two-phase locking for concurrency control,
two-phase commit for distributed atomicity, and write-ahead logging
for durability.  This example runs a transfer-style update workload
(read two pages, write both) concurrently from every node and prints
the transactional outcome: commits, deadlock aborts, 2PC message
traffic, and what the durable logs would recover.

Run::

    python examples/transactional_updates.py
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.cluster.messages import MessageKind
from repro.txn import DeadlockError, TransactionManager

NUM_TRANSFERS = 120
HOT_PAGES = 24  # small hot set -> real lock contention


def transfer(cluster, manager, worker_id):
    """One transfer transaction: read+write two hot pages."""
    rng = cluster.rng.stream(f"transfer/{worker_id}")
    node_id = worker_id % cluster.num_nodes
    source = rng.randrange(HOT_PAGES)
    target = (source + 1 + rng.randrange(HOT_PAGES - 1)) % HOT_PAGES
    txn = manager.begin(node_id)
    try:
        yield from manager.read(txn, source)
        yield from manager.read(txn, target)
        yield from manager.write(txn, source, payload=f"t{txn.txn_id}-out")
        yield from manager.write(txn, target, payload=f"t{txn.txn_id}-in")
        yield from manager.commit(txn)
    except DeadlockError:
        pass  # the victim was rolled back by the manager


def main() -> None:
    cluster = Cluster(SystemConfig(), seed=17)
    manager = TransactionManager(cluster)

    def spawner():
        for worker_id in range(NUM_TRANSFERS):
            delay = cluster.rng.exponential("spawn", 20.0)
            yield cluster.env.timeout(delay)
            cluster.env.process(transfer(cluster, manager, worker_id))

    cluster.env.process(spawner())
    cluster.env.run()

    print(f"transactions committed : {manager.committed}")
    print(f"transactions aborted   : {manager.aborted}")
    deadlocks = sum(
        lm.deadlocks_detected for lm in manager.locks.values()
    )
    print(f"deadlocks detected     : {deadlocks}")
    print(f"2PC rounds             : {manager.two_phase.commits} commit, "
          f"{manager.two_phase.aborts} abort")

    acc = cluster.network.accounting
    for kind in (MessageKind.TXN_PREPARE, MessageKind.TXN_COMMIT,
                 MessageKind.LOCK_REQUEST, MessageKind.INVALIDATE):
        print(f"{kind.value:>22} : "
              f"{acc.messages_by_kind.get(kind, 0)} messages")

    print("\ndurable state after simulated crash (redo from WAL):")
    for node_id, log in sorted(manager.logs.items()):
        state = log.replay_updates()
        sample = dict(sorted(state.items())[:4])
        print(f"  node {node_id}: {len(state)} pages recovered, "
              f"e.g. {sample}")


if __name__ == "__main__":
    main()
