"""The §8 future-work objective: even response times across nodes.

The paper's conclusion sketches applications that want a response time
goal *plus* bounded variation across nodes — the default objective only
constrains the weighted mean, so under asymmetric load one node's users
can be far slower than another's.  This example runs a skewed-arrival
workload (node 0 gets 4x the goal-class traffic) under both objectives
and compares the per-node response time spread.

Run::

    python examples/fairness_variance.py
"""

from dataclasses import replace

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.core.controller import GoalOrientedController
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_workload
from repro.workload.generator import WorkloadGenerator

GOAL_MS = 8.0
INTERVALS = 40


def asymmetric_workload(config: SystemConfig):
    """Goal-class arrivals concentrated on node 0."""
    workload = default_workload(config, goal_ms=GOAL_MS)
    return replace(
        workload,
        classes=[
            replace(c, node_rates=(0.04, 0.01, 0.01))
            if c.class_id == 1 else c
            for c in workload.classes
        ],
    )


def run(objective: str, config: SystemConfig, seed: int = 9):
    cluster = Cluster(config, seed=seed)
    controller = GoalOrientedController(cluster, goals={1: GOAL_MS})
    controller.coordinators[1].objective = objective
    generator = WorkloadGenerator(
        cluster, asymmetric_workload(config), sink=controller
    )
    generator.start()
    cluster.env.run(until=20_000.0)
    controller.start()

    spreads = []
    per_node = []

    def record(ctrl, idx):
        reports = ctrl.coordinators[1].goal_reports
        rts = {
            r.node_id: r.mean_response_ms
            for r in reports.values() if r.completions > 0
        }
        if len(rts) == config.num_nodes:
            values = [rts[n] for n in sorted(rts)]
            spreads.append(max(values) - min(values))
            per_node.append(values)

    controller.on_interval(record)
    cluster.env.run(
        until=cluster.env.now
        + INTERVALS * config.observation_interval_ms + 1e-3
    )
    tail = per_node[len(per_node) // 2:]
    tail_spread = spreads[len(spreads) // 2:]
    mean_by_node = [
        sum(row[i] for row in tail) / len(tail)
        for i in range(config.num_nodes)
    ]
    return {
        "objective": objective,
        "per_node_rt": mean_by_node,
        "spread": sum(tail_spread) / len(tail_spread),
    }


def main() -> None:
    config = SystemConfig()
    results = [run(obj, config) for obj in ("nogoal", "variance")]
    rows = []
    for r in results:
        rows.append(
            [r["objective"]]
            + [f"{v:.2f}" for v in r["per_node_rt"]]
            + [f"{r['spread']:.2f}"]
        )
    print(format_table(
        ["objective", "node0 rt", "node1 rt", "node2 rt",
         "spread (ms)"],
        rows,
        title=(
            f"Asymmetric load (node 0 gets 4x traffic), goal "
            f"{GOAL_MS} ms"
        ),
    ))


if __name__ == "__main__":
    main()
