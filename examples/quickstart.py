"""Quickstart: goal-oriented buffer management in 40 lines.

Builds the paper's base scenario — a 3-node network of workstations
running one goal class (mean response time goal) and one no-goal class
— starts the feedback-controlled partitioner, and prints per-interval
progress: observed response time, the goal, and how much memory the
controller dedicated to the goal class.

Run::

    python examples/quickstart.py
"""

from repro import build_base_experiment


def main() -> None:
    # A paper-standard cluster (3 nodes, 2 MB cache each, 2000 pages)
    # with a 6 ms mean response time goal for class 1.
    sim = build_base_experiment(seed=1, goal_ms=6.0, warmup_ms=20_000.0)

    print(f"{'interval':>8}  {'observed':>9}  {'goal':>6}  "
          f"{'dedicated':>10}  satisfied")
    for interval in range(1, 31):
        sim.run(intervals=1)
        series = sim.controller.series[1]
        observed = (
            f"{series.observed_rt.values[-1]:.2f} ms"
            if series.observed_rt.values else "-"
        )
        dedicated = sim.dedicated_bytes(1) // 1024
        satisfied = "yes" if series.satisfied[-1] else "no"
        print(f"{interval:>8}  {observed:>9}  "
              f"{sim.controller.goal_of(1):>4.1f}  "
              f"{dedicated:>7} KB  {satisfied}")

    satisfied = sim.satisfied(1)
    if any(satisfied):
        first = satisfied.index(True) + 1
        print(f"\ngoal first satisfied in interval {first}")
    else:
        print("\ngoal not yet satisfied — try a looser goal_ms")


if __name__ == "__main__":
    main()
