"""Compare the goal-oriented LP partitioner against the baselines.

Runs the same cold-start scenario under all four partitioning
strategies — the paper's LP-based goal-oriented method, fragment
fencing [5], class fencing [6], and dynamic tuning [8] — and prints
when each first satisfies the goal and how steadily it stays there.

Run::

    python examples/compare_strategies.py
"""

from repro.baselines import COORDINATOR_TYPES, make_controller
from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import default_workload
from repro.workload.generator import WorkloadGenerator

GOAL_MS = 6.0
INTERVALS = 40


def run_strategy(name: str, config: SystemConfig, seed: int = 5):
    cluster = Cluster(config, seed=seed)
    workload = default_workload(config, goal_ms=GOAL_MS)
    controller = make_controller(name, cluster, goals={1: GOAL_MS})
    generator = WorkloadGenerator(cluster, workload, sink=controller)
    generator.start()
    cluster.env.run(until=20_000.0)          # cache warm-up
    controller.start()
    cluster.env.run(
        until=cluster.env.now
        + INTERVALS * config.observation_interval_ms + 1e-3
    )
    satisfied = controller.series[1].satisfied
    rts = controller.series[1].observed_rt.values
    return {
        "strategy": name,
        "first": satisfied.index(True) + 1 if any(satisfied) else None,
        "ratio": sum(satisfied) / len(satisfied),
        "final_rt": rts[-1] if rts else float("nan"),
        "final_dedicated_kb": int(
            controller.series[1].dedicated_bytes.values[-1] // 1024
        ),
    }


def main() -> None:
    config = SystemConfig()
    results = [
        run_strategy(name, config) for name in sorted(COORDINATOR_TYPES)
    ]
    print(format_table(
        ["strategy", "first satisfied", "satisfied ratio",
         "final rt (ms)", "final dedicated (KB)"],
        [
            [r["strategy"],
             r["first"] if r["first"] is not None else "never",
             r["ratio"], r["final_rt"], r["final_dedicated_kb"]]
            for r in results
        ],
        title=f"Cold start with a {GOAL_MS} ms goal, "
              f"{INTERVALS} observation intervals",
    ))


if __name__ == "__main__":
    main()
