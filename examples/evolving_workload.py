"""Dynamic adaptation to an evolving workload and changing SLAs.

The paper's key selling point (§1) is that manual buffer partitioning
breaks down "if the workload evolves over time" — the feedback loop
re-approximates the response time surface and repartitions on its own.
This example demonstrates both kinds of change:

1. at t = 150 s the response time *goal* tightens (SLA renegotiated);
2. at t = 300 s the *workload* shifts: the goal class's arrival rate
   triples (e.g. start of business hours), invalidating the old
   response time surface.

Run::

    python examples/evolving_workload.py
"""

from repro.experiments.runner import build_base_experiment


def main() -> None:
    sim = build_base_experiment(
        seed=5, goal_ms=10.0, warmup_ms=20_000.0
    )
    interval_ms = sim.controller.interval_ms
    events = {
        int(150_000 // interval_ms): "tighten goal to 5 ms",
        int(300_000 // interval_ms): "workload surge (3x arrivals)",
    }

    print(f"{'interval':>8}  {'observed':>9}  {'goal':>6}  "
          f"{'dedicated':>10}  event")
    for interval in range(1, 81):
        sim.run(intervals=1)
        event = ""
        if interval in events:
            event = events[interval]
            if "tighten" in event:
                sim.controller.set_goal(1, 5.0)
            else:
                _surge_arrivals(sim, class_id=1, factor=3.0)
        series = sim.controller.series[1]
        observed = (
            f"{series.observed_rt.values[-1]:6.2f} ms"
            if series.observed_rt.values else "       -"
        )
        print(f"{interval:>8}  {observed:>9}  "
              f"{sim.controller.goal_of(1):>4.1f}  "
              f"{sim.dedicated_bytes(1) // 1024:>7} KB  {event}")

    satisfied = sim.satisfied(1)
    last_20 = satisfied[-20:]
    print(f"\nsatisfied in {sum(last_20)}/{len(last_20)} of the last "
          f"20 intervals after both disturbances")


def _surge_arrivals(sim, class_id: int, factor: float) -> None:
    """Multiply a class's arrival rate mid-run.

    The generator consults the spec's mean inter-arrival time on every
    draw, so replacing the picker-side spec object reshapes the open
    arrival streams from the next operation onward.
    """
    from dataclasses import replace

    spec = sim.workload.spec_for(class_id)
    updated = replace(
        spec,
        arrival_rate_per_node=spec.arrival_rate_per_node * factor,
    )
    sim.workload.classes[:] = [
        updated if c.class_id == class_id else c
        for c in sim.workload.classes
    ]
    # Point the running generator at the updated spec list.
    sim.generator.spec = sim.workload


if __name__ == "__main__":
    main()
