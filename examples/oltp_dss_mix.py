"""OLTP + decision support: the workload mix from the paper's intro.

Section 1 motivates the method with systems that run short OLTP
transactions next to complex decision-support (DSS) queries: without
load control, the resource hunger of DSS slows the OLTP transactions
excessively.  This example models exactly that:

* class 1 "oltp"  — short operations (2 pages), hot skewed access,
  a tight response time goal (the firm SLA);
* class 2 "dss"   — long scans (16 pages per operation), a loose goal;
* class 0         — background/no-goal work.

Watch the controller give the OLTP class a protective dedicated buffer
so its goal holds even while the scans churn through the cache.

Run::

    python examples/oltp_dss_mix.py
"""

from repro.cluster.config import SystemConfig
from repro.experiments.runner import Simulation
from repro.workload.presets import oltp_dss_mix


def main() -> None:
    config = SystemConfig()
    sim = Simulation(
        config=config,
        workload=oltp_dss_mix(config),
        seed=3,
        warmup_ms=25_000.0,
    )
    print(f"{'interval':>8}  {'oltp rt':>9} (goal 2.5)  "
          f"{'dss rt':>9} (goal 40)  {'oltp buf':>9}  {'dss buf':>9}")
    for interval in range(1, 41):
        sim.run(intervals=1)
        oltp = sim.controller.series[1]
        dss = sim.controller.series[2]
        oltp_rt = (
            f"{oltp.observed_rt.values[-1]:7.2f}"
            if oltp.observed_rt.values else "      -"
        )
        dss_rt = (
            f"{dss.observed_rt.values[-1]:7.2f}"
            if dss.observed_rt.values else "      -"
        )
        print(f"{interval:>8}  {oltp_rt:>9} ms        "
              f"{dss_rt:>9} ms       "
              f"{sim.dedicated_bytes(1) // 1024:>6} KB  "
              f"{sim.dedicated_bytes(2) // 1024:>6} KB")

    oltp_sat = sim.satisfied(1)
    tail = oltp_sat[len(oltp_sat) // 2:]
    print(f"\nOLTP goal satisfied in {sum(tail)}/{len(tail)} of the "
          f"later intervals, despite the DSS scans.")


if __name__ == "__main__":
    main()
