"""Section 7.5 — overhead of the goal-oriented machinery.

The paper reports control messages below 0.1 % of total network
traffic, insignificant CPU cost, and very little extra memory.
"""

from repro.experiments.overhead import run_overhead
from repro.experiments.reporting import emit


def test_overhead(benchmark, paper_config):
    result = benchmark.pedantic(
        lambda: run_overhead(
            seed=1, intervals=30, config=paper_config, goal_ms=6.0
        ),
        rounds=1,
        iterations=1,
    )
    emit()
    emit(result.to_text())

    # The paper's headline number: control traffic < 0.1 %.
    assert result.control_fraction < 0.001
    # Coordinator CPU cost is a vanishing fraction of real time
    # (the paper's Table 1 tasks run only on goal violations).
    assert result.coordinator_cpu_ms_per_s < 10.0
    # Memory: a handful of measure points and reports, i.e. < 16 KiB.
    assert result.coordinator_memory_bytes < 16 * 1024
