"""Ablation — cost-based benefit replacement vs. plain LRU (§6).

The paper integrates the Sinnwell-Weikum cost-based policy because
neither purely egoistic nor purely altruistic replacement uses the
aggregate memory optimally.  This ablation replays the *same* recorded
operation trace under both policies and compares the storage-level mix:
the cost-based policy must not lose to LRU on expensive disk accesses.
"""

from repro.bufmgr.costs import AccessLevel
from repro.cluster.cluster import Cluster
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import TraceRecorder, TraceReplayer
from repro.experiments.runner import default_workload
from repro.experiments.reporting import emit, format_table


def record_trace(config, horizon_ms=120_000.0, seed=42):
    cluster = Cluster(config, seed=seed)
    recorder = TraceRecorder()
    workload = default_workload(config, skew=0.5)
    generator = WorkloadGenerator(cluster, workload, recorder=recorder)
    generator.start()
    cluster.env.run(until=horizon_ms)
    return recorder.records


def replay(config, records, policy):
    cluster = Cluster(config, seed=7, policy=policy)
    replayer = TraceReplayer(cluster, records)
    replayer.start()
    cluster.env.run()
    costs = cluster.costs
    counts = {
        level: costs.observations(level) for level in AccessLevel
    }
    total = sum(counts.values())
    return {
        "policy": policy,
        "disk_fraction": counts[AccessLevel.DISK] / total,
        "local_fraction": counts[AccessLevel.LOCAL] / total,
        "remote_fraction": counts[AccessLevel.REMOTE] / total,
        "completed": replayer.operations_completed,
    }


def test_costbased_vs_lru(benchmark, bench_config):
    records = record_trace(bench_config)

    def run():
        return [
            replay(bench_config, records, policy)
            for policy in ("cost", "lru", "lruk", "clock", "2q")
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit()
    emit(format_table(
        ["policy", "disk", "remote", "local", "ops"],
        [
            [r["policy"], r["disk_fraction"], r["remote_fraction"],
             r["local_fraction"], r["completed"]]
            for r in results
        ],
        title="Ablation: replacement policy on an identical trace",
    ))
    by_policy = {r["policy"]: r for r in results}
    # All policies completed the same trace.
    assert len({r["completed"] for r in results}) == 1
    # The cost-based policy must be competitive with LRU on the
    # expensive level (within 15 % relative).
    assert (
        by_policy["cost"]["disk_fraction"]
        <= by_policy["lru"]["disk_fraction"] * 1.15
    )
