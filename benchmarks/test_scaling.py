"""Scaling benches — larger clusters and more complex operations (§7.2).

The paper states the base-experiment behaviour held for "vastly more
complex operations ... or a larger number of nodes"; these benches run
both axes and assert convergence still happens.
"""

from repro.experiments.reporting import emit
from repro.experiments.scaling import (
    run_complexity_scaling,
    run_node_scaling,
    to_text,
)


def test_node_scaling(benchmark, bench_config):
    points = benchmark.pedantic(
        lambda: run_node_scaling(
            node_counts=(3, 5), base_config=bench_config, intervals=45
        ),
        rounds=1,
        iterations=1,
    )
    emit()
    emit(to_text(points, "Scaling: number of nodes"))
    for point in points:
        assert point.first_satisfied is not None, (
            f"{point.label}: goal never satisfied"
        )
    # A larger cluster needs a longer warm-up (N+1 independent
    # points), so satisfaction may come later, but it must come.
    assert points[-1].satisfaction_ratio > 0.05


def test_complexity_scaling(benchmark, bench_config):
    points = benchmark.pedantic(
        lambda: run_complexity_scaling(
            pages_per_op=(4, 16), base_config=bench_config,
            intervals=45,
        ),
        rounds=1,
        iterations=1,
    )
    emit()
    emit(to_text(points, "Scaling: operation complexity"))
    for point in points:
        assert point.first_satisfied is not None, (
            f"{point.label}: goal never satisfied"
        )
    # Complex operations are slower in absolute terms...
    assert points[-1].mean_rt_tail_ms > points[0].mean_rt_tail_ms
