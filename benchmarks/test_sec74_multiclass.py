"""Section 7.4 — multiple goal classes with disjoint and shared pages.

(a) Disjoint page sets: both goal classes converge independently.
(b) Rising data sharing: the dedicated memory of the class with the
    looser goal (k2) shrinks, because it profits from k1's buffers —
    eventually k2 meets its goal without any dedicated buffer at all
    (Example 2 of §3).
"""

from repro.experiments.multiclass import (
    doubled_cache_config,
    multiclass_workload,
    run_sharing_point,
    run_sharing_sweep,
)
from repro.experiments.reporting import emit
from repro.experiments.runner import Simulation

SHARINGS = (0.0, 0.5, 1.0)


def test_sharing_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_sharing_sweep(
            sharings=SHARINGS, intervals=50, tail=15, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    emit()
    emit(result.to_text())
    points = {p.sharing: p for p in result.points}

    # (b) k2's dedicated memory shrinks as sharing rises.
    assert result.k2_dedicated_decreases()
    assert (
        points[1.0].dedicated_k2_bytes
        < 0.7 * points[0.0].dedicated_k2_bytes
        or points[1.0].dedicated_k2_bytes == 0.0
    )
    # And k2 still performs: its observed RT stays in the same range
    # or better despite holding less dedicated memory.
    assert (
        points[1.0].observed_rt_k2
        <= 1.5 * points[0.0].observed_rt_k2
    )


def test_disjoint_classes_both_adapt(benchmark):
    """(a) With disjoint page sets both coordinators operate without
    interfering: both dedicate memory and both reach satisfaction."""
    config = doubled_cache_config()
    workload = multiclass_workload(
        config, goal1_ms=4.0, goal2_ms=10.0, sharing=0.0
    )

    def run():
        sim = Simulation(
            config=config, workload=workload, seed=11,
            warmup_ms=20_000.0,
        )
        sim.run(intervals=45)
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    sat1 = sim.satisfied(1)
    sat2 = sim.satisfied(2)
    assert any(sat1), "class 1 never satisfied its goal"
    assert any(sat2), "class 2 never satisfied its goal"
    assert max(sim.controller.series[1].dedicated_bytes.values) > 0
    assert max(sim.controller.series[2].dedicated_bytes.values) > 0
