"""Extension — transactional update workloads (§3).

Measures throughput and abort behaviour of the 2PL + WAL + 2PC stack
as the write fraction grows: pure reads need no commit protocol, while
update-heavy mixes pay for prepares, log forces, and invalidations.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.experiments.reporting import emit, format_table
from repro.txn import DeadlockError, TransactionManager

WRITE_FRACTIONS = (0.0, 0.2, 0.5)
TRANSACTIONS = 150
PAGES_PER_TXN = 3
HOT_PAGES = 200


def run_mix(write_fraction, seed=3):
    cluster = Cluster(SystemConfig(), seed=seed)
    manager = TransactionManager(cluster)
    latencies = []

    def worker(i):
        rng = cluster.rng.stream(f"txn/{i}")
        txn = manager.begin(i % cluster.num_nodes)
        start = cluster.env.now
        try:
            for _ in range(PAGES_PER_TXN):
                page = rng.randrange(HOT_PAGES)
                if rng.random() < write_fraction:
                    yield from manager.write(txn, page, payload=str(i))
                else:
                    yield from manager.read(txn, page)
            committed = yield from manager.commit(txn)
            if committed:
                latencies.append(cluster.env.now - start)
        except DeadlockError:
            pass

    def spawner():
        for i in range(TRANSACTIONS):
            yield cluster.env.timeout(
                cluster.rng.exponential("spawn", 15.0)
            )
            cluster.env.process(worker(i))

    cluster.env.process(spawner())
    cluster.env.run()
    deadlocks = sum(
        lm.deadlocks_detected for lm in manager.locks.values()
    )
    return {
        "write_fraction": write_fraction,
        "committed": manager.committed,
        "aborted": manager.aborted,
        "deadlocks": deadlocks,
        "mean_latency_ms": (
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        "log_forces": sum(
            log.forces for log in manager.logs.values()
        ),
    }


def test_write_fraction_sweep(benchmark):
    def run():
        return [run_mix(wf) for wf in WRITE_FRACTIONS]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit()
    emit(format_table(
        ["write frac", "committed", "aborted", "deadlocks",
         "mean latency (ms)", "log forces"],
        [
            [r["write_fraction"], r["committed"], r["aborted"],
             r["deadlocks"], r["mean_latency_ms"], r["log_forces"]]
            for r in results
        ],
        title="Extension: transactional mixes (2PL + WAL + 2PC)",
    ))
    by_wf = {r["write_fraction"]: r for r in results}
    # Read-only mixes: no log forces at all, everything commits.
    assert by_wf[0.0]["log_forces"] == 0
    assert by_wf[0.0]["committed"] == TRANSACTIONS
    # Updates cost: write-heavy mixes force logs and run slower.
    assert by_wf[0.5]["log_forces"] > 0
    assert (
        by_wf[0.5]["mean_latency_ms"] > by_wf[0.0]["mean_latency_ms"]
    )
    # Every transaction resolves one way or the other.
    for r in results:
        assert r["committed"] + r["aborted"] + r["deadlocks"] >= 0
        assert r["committed"] > 0
