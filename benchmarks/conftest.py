"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper at
a reduced-but-faithful scale (fewer replications / intervals than the
module mains under ``repro.experiments``, which run the full protocol).
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.cluster.config import NodeParameters, SystemConfig
from repro.experiments.calibration import GoalRange


@pytest.fixture(scope="session")
def paper_config() -> SystemConfig:
    """The exact §7.1 environment."""
    return SystemConfig()


@pytest.fixture(scope="session")
def bench_config() -> SystemConfig:
    """A 2x-reduced environment for the slower closed-loop benches."""
    return SystemConfig(
        num_pages=1000,
        node=NodeParameters(buffer_bytes=1024 * 1024),
        observation_interval_ms=4000.0,
    )


@pytest.fixture(scope="session")
def paper_goal_range(paper_config) -> GoalRange:
    """Calibrated goal band for the §7.1 workload (computed once)."""
    from repro.experiments.calibration import calibrate_goal_range
    from repro.experiments.runner import default_workload

    workload = default_workload(paper_config)
    return calibrate_goal_range(
        workload, class_id=1, config=paper_config, seed=100,
        warmup_ms=40_000, measure_ms=60_000,
    )
