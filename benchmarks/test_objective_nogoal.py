"""The objective function under memory competition.

With a single goal class and ample memory, even crude hoarding ("grab
every free byte once violated") meets the goal — and, by never
repartitioning, enjoys a perfectly stable cache.  The Section-4 LP's
value shows when memory is *contended*: with two goal classes, a
hoarding first class starves the second (its eq. 6 upper bounds drop
to zero), while the LP sizes both pools so that both goals hold and
memory is left for the no-goal class.
"""

import numpy as np

from repro.core.controller import GoalOrientedController
from repro.core.coordinator import Coordinator
from repro.experiments.multiclass import multiclass_workload
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import Simulation
from repro.workload.generator import WorkloadGenerator
from repro.cluster.cluster import Cluster


from repro.core.coordinator import CoordinatorDecision


class GreedyCoordinator(Coordinator):
    """Meets its goal by hoarding: grabs all free memory when violated
    above the goal and never gives anything back."""

    def evaluate(self, now, other_dedicated):
        """One-sided check; grab the eq. 6 upper bound when too slow."""
        rt_goal = self._weighted_rt(self.goal_reports)
        rt_nogoal = self._weighted_rt(self.nogoal_reports)
        if rt_goal is None or rt_goal <= self.goal_ms * 1.1:
            return CoordinatorDecision(
                observed_rt=rt_goal,
                observed_nogoal_rt=rt_nogoal,
                satisfied=rt_goal is not None,
            )
        upper = np.maximum(
            np.asarray(self.node_sizes, dtype=float)
            - np.asarray(other_dedicated, dtype=float),
            0.0,
        )
        if np.allclose(upper, self.current_allocation, atol=0.5):
            return CoordinatorDecision(
                observed_rt=rt_goal,
                observed_nogoal_rt=rt_nogoal,
                satisfied=False,
            )
        return CoordinatorDecision(
            observed_rt=rt_goal,
            observed_nogoal_rt=rt_nogoal,
            satisfied=False,
            new_allocation=upper,
            mechanism="greedy",
        )


def run_strategy(greedy, config, seed=13, intervals=50):
    # Goals reachable under a fair split of the scarce memory, but not
    # with one class holding everything.
    goal1, goal2 = 12.0, 18.0
    workload = multiclass_workload(
        config, goal1_ms=goal1, goal2_ms=goal2, sharing=0.0,
        arrival_rate_per_node=0.008,
    )
    cluster = Cluster(config, seed=seed)
    controller = GoalOrientedController(
        cluster, goals={1: goal1, 2: goal2}
    )
    if greedy:
        for class_id in (1, 2):
            old = controller.coordinators[class_id]
            controller.coordinators[class_id] = GreedyCoordinator(
                class_id=class_id, node_sizes=list(old.node_sizes),
                goal_ms=old.goal_ms, page_size=old.page_size,
            )
    generator = WorkloadGenerator(cluster, workload, sink=controller)
    generator.start()
    cluster.env.run(until=16_000.0)
    controller.start()
    cluster.env.run(
        until=cluster.env.now
        + intervals * config.observation_interval_ms + 1e-3
    )

    def tail_metrics(class_id, goal):
        series = controller.series[class_id]
        half = len(series.observed_rt.values) // 2
        rts = series.observed_rt.values[half:]
        met = [1.0 if rt <= goal * 1.1 else 0.0 for rt in rts]
        return (
            sum(met) / len(met) if met else 0.0,
            float(np.mean(rts)) if rts else float("nan"),
        )

    met1, rt1 = tail_metrics(1, goal1)
    met2, rt2 = tail_metrics(2, goal2)
    return {
        "strategy": "greedy-hoard" if greedy else "goal-oriented-lp",
        "k1_goal_met": met1,
        "k2_goal_met": met2,
        "k2_rt": rt2,
        "dedicated_k1_kb": int(
            controller.series[1].dedicated_bytes.values[-1] // 1024
        ),
        "dedicated_k2_kb": int(
            controller.series[2].dedicated_bytes.values[-1] // 1024
        ),
    }


def test_lp_shares_memory_where_greedy_starves(benchmark, bench_config):
    from dataclasses import replace

    from repro.cluster.config import NodeParameters

    # Halve the buffers: the two goal-class page sets no longer both
    # fit, so memory is genuinely contended.
    scarce = replace(
        bench_config,
        node=NodeParameters(
            buffer_bytes=bench_config.node.buffer_bytes // 2
        ),
    )

    def run():
        return [
            run_strategy(False, scarce),
            run_strategy(True, scarce),
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit()
    emit(format_table(
        ["strategy", "k1 goal met", "k2 goal met", "k2 rt (ms)",
         "k1 dedicated (KB)", "k2 dedicated (KB)"],
        [
            [r["strategy"], r["k1_goal_met"], r["k2_goal_met"],
             r["k2_rt"], r["dedicated_k1_kb"], r["dedicated_k2_kb"]]
            for r in results
        ],
        title="Objective check: two goal classes competing for memory",
    ))
    lp, greedy = results
    # The hoarder's first-served class wins big...
    assert greedy["k1_goal_met"] >= 0.9
    # ...while starving the second class of memory.
    assert greedy["dedicated_k2_kb"] <= lp["dedicated_k2_kb"]
    # The LP balances: class 2 meets its goal at least as often as
    # under hoarding, typically far more.
    assert lp["k2_goal_met"] >= greedy["k2_goal_met"]