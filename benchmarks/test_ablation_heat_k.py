"""Ablation — LRU-K history depth in the heat estimation (§6).

The cost-based replacement approximates heat with the LRU-K statistic;
the paper's implementation uses LRU-K after [21].  K trades stability
(larger K resists correlated reference bursts) against adaptivity.
This ablation replays the same trace with K in {1, 2, 4} and compares
the resulting storage-level mix.
"""

from repro.bufmgr.costs import AccessLevel
from repro.cluster.cluster import Cluster
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import default_workload
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import TraceRecorder, TraceReplayer

K_VALUES = (1, 2, 4)


def record_trace(config, horizon_ms=100_000.0, seed=21):
    cluster = Cluster(config, seed=seed)
    recorder = TraceRecorder()
    workload = default_workload(config, skew=0.8)
    generator = WorkloadGenerator(cluster, workload, recorder=recorder)
    generator.start()
    cluster.env.run(until=horizon_ms)
    return recorder.records


def replay_with_k(config, records, k):
    cluster = Cluster(config, seed=3)
    # Rebuild every node's pools with the requested heat depth.
    for node in cluster.nodes:
        node.buffers.accumulated_heat.k = k
        node.buffers.class_heat.k = k
        cluster.global_heat._tracker.k = k
    replayer = TraceReplayer(cluster, records)
    replayer.start()
    cluster.env.run()
    costs = cluster.costs
    total = sum(costs.observations(level) for level in AccessLevel)
    return {
        "k": k,
        "disk_fraction": costs.observations(AccessLevel.DISK) / total,
        "local_fraction": costs.observations(AccessLevel.LOCAL) / total,
    }


def test_heat_k_sweep(benchmark, bench_config):
    records = record_trace(bench_config)

    def run():
        return [
            replay_with_k(bench_config, records, k) for k in K_VALUES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit()
    emit(format_table(
        ["K", "disk fraction", "local fraction"],
        [
            [r["k"], r["disk_fraction"], r["local_fraction"]]
            for r in results
        ],
        title="Ablation: LRU-K heat depth on an identical trace",
    ))
    # All K values must produce a working cache (not thrash to disk).
    for r in results:
        assert r["disk_fraction"] < 0.9
    # The paper's choice K=2 must not be clearly worse than K=1.
    by_k = {r["k"]: r for r in results}
    assert by_k[2]["disk_fraction"] <= by_k[1]["disk_fraction"] * 1.2