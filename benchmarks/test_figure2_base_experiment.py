"""Figure 2 — the base experiment (§7.2).

Regenerates the three series the paper plots (observed response time,
response time goal, total dedicated cache) and checks the figure's
qualitative content: the observed response time is closely (inversely)
related to the dedicated buffer size, and the controller finds
satisfying partitionings after goal changes within a short number of
observation intervals.
"""

from repro.experiments.figure2 import run_figure2
from repro.experiments.reporting import emit


def test_figure2_series(benchmark, paper_config, paper_goal_range):
    data = benchmark.pedantic(
        lambda: run_figure2(
            seed=1,
            intervals=60,
            config=paper_config,
            goal_range=paper_goal_range,
        ),
        rounds=1,
        iterations=1,
    )
    emit()
    emit(data.to_text())
    emit(f"satisfaction ratio: {data.satisfaction_ratio():.2f}")
    emit(f"corr(RT, dedicated): {data.rt_tracks_memory():.2f}")

    assert len(data.intervals) == 60
    # The response time tracks the dedicated buffer inversely (the
    # figure's dominant visual feature).
    assert data.rt_tracks_memory() < -0.2
    # The controller repeatedly reaches satisfying partitionings.
    assert data.satisfaction_ratio() > 0.15
    # Dedicated memory actually moves (the goal keeps changing).
    assert max(data.dedicated_bytes) > 2 * min(data.dedicated_bytes) or (
        min(data.dedicated_bytes) == 0
    )
