"""Ablation — observation interval length (§7.1 design choice).

The paper sets the observation interval to 5000 ms as a compromise:
shorter intervals adapt faster but are noisier, longer ones smooth
stochastic variation but react slowly.  This ablation runs the same
scenario under several interval lengths and reports satisfaction
behaviour.
"""

from dataclasses import replace

from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import Simulation, default_workload

INTERVALS_MS = (2000.0, 4000.0, 8000.0)
SIM_HORIZON_MS = 200_000.0


def run_interval(config, interval_ms, goal_ms=6.0, seed=9):
    cfg = replace(config, observation_interval_ms=interval_ms)
    workload = default_workload(cfg, goal_ms=goal_ms)
    sim = Simulation(
        config=cfg, workload=workload, seed=seed, warmup_ms=16_000.0
    )
    intervals = int((SIM_HORIZON_MS - 16_000.0) / interval_ms)
    sim.run(intervals=intervals)
    satisfied = sim.satisfied(1)
    first = satisfied.index(True) + 1 if any(satisfied) else None
    return {
        "interval_ms": interval_ms,
        "intervals_run": len(satisfied),
        "first_satisfied_ms": (
            first * interval_ms if first is not None else None
        ),
        "satisfaction_ratio": (
            sum(satisfied) / len(satisfied) if satisfied else 0.0
        ),
    }


def test_interval_sensitivity(benchmark, bench_config):
    def run():
        return [
            run_interval(bench_config, interval)
            for interval in INTERVALS_MS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit()
    emit(format_table(
        ["interval (ms)", "intervals", "first satisfied (ms)",
         "satisfied ratio"],
        [
            [r["interval_ms"], r["intervals_run"],
             r["first_satisfied_ms"] if r["first_satisfied_ms"]
             else "never",
             r["satisfaction_ratio"]]
            for r in results
        ],
        title="Ablation: observation interval length",
    ))
    # Every interval length must eventually satisfy the goal within
    # the same wall-clock horizon.
    assert all(r["first_satisfied_ms"] is not None for r in results)
