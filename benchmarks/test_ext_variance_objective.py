"""Extension — the §8 variance objective in the closed loop.

Compares the paper's default objective (minimize the no-goal class's
mean RT) against the future-work objective (minimize the maximum
per-node deviation from the goal) on a workload with *asymmetric* node
load: one node receives most of the goal-class arrivals, so the default
objective happily leaves the response times uneven across nodes.
"""

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.core.controller import GoalOrientedController
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import default_workload
from repro.workload.generator import WorkloadGenerator


def run_objective(objective, config, goal_ms=8.0, seed=9, intervals=40):
    cluster = Cluster(config, seed=seed)
    workload = default_workload(config, goal_ms=goal_ms)
    controller = GoalOrientedController(cluster, goals={1: goal_ms})
    coordinator = controller.coordinators[1]
    coordinator.objective = objective
    generator = WorkloadGenerator(cluster, workload, sink=controller)
    generator.start()
    cluster.env.run(until=20_000.0)
    controller.start()

    spreads = []

    def record(ctrl, idx):
        reports = ctrl.coordinators[1].goal_reports
        rts = [
            r.mean_response_ms for r in reports.values()
            if r.completions > 0
        ]
        if len(rts) == config.num_nodes:
            spreads.append(max(rts) - min(rts))

    controller.on_interval(record)
    cluster.env.run(
        until=cluster.env.now
        + intervals * config.observation_interval_ms + 1e-3
    )
    tail = spreads[len(spreads) // 2:]
    satisfied = controller.series[1].satisfied
    return {
        "objective": objective,
        "mean_spread_ms": sum(tail) / len(tail) if tail else 0.0,
        "satisfaction_ratio": sum(satisfied) / len(satisfied),
    }


def test_variance_objective(benchmark, bench_config):
    def run():
        return [
            run_objective(objective, bench_config)
            for objective in ("nogoal", "variance")
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit()
    emit(format_table(
        ["objective", "cross-node RT spread (ms)", "satisfied ratio"],
        [
            [r["objective"], r["mean_spread_ms"],
             r["satisfaction_ratio"]]
            for r in results
        ],
        title="Extension: §8 variance objective vs. default",
    ))
    by_objective = {r["objective"]: r for r in results}
    # Both objectives must keep finding satisfying partitions.
    for r in results:
        assert r["satisfaction_ratio"] > 0.05
    # The variance objective must not blow the spread up; typically it
    # tightens it (allow generous noise headroom at bench scale).
    assert (
        by_objective["variance"]["mean_spread_ms"]
        <= 2.0 * by_objective["nogoal"]["mean_spread_ms"] + 0.5
    )
