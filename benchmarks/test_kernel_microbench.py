"""Microbenchmarks of the simulation substrate itself.

These quantify the cost of the building blocks everything else pays
for: raw event throughput of the DES kernel, the resource queue, and
the end-to-end page access path.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.sim.engine import Environment
from repro.sim.resources import Resource


def test_event_throughput(benchmark):
    """Schedule-and-dispatch cost of 10k timeout events."""

    def run():
        env = Environment()

        def proc():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(proc())
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


def test_resource_throughput(benchmark):
    """Acquire/release cycles through a contended FCFS resource."""

    def run():
        env = Environment()
        resource = Resource(env, capacity=2)

        def proc():
            for _ in range(500):
                with resource.request() as req:
                    yield req
                    yield env.timeout(0.1)

        for _ in range(4):
            env.process(proc())
        env.run()
        return env.now

    benchmark(run)


def test_page_access_path(benchmark):
    """End-to-end cost of the data-shipping access path (mixed hits)."""
    config = SystemConfig(num_pages=500)
    cluster = Cluster(config, seed=0)

    def run():
        def proc():
            for i in range(2_000):
                yield from cluster.access_page(
                    i % 3, (i * 7) % 500, class_id=0
                )

        cluster.env.process(proc())
        cluster.env.run()

    benchmark.pedantic(run, rounds=1, iterations=1)
