"""Ablation — the LP-based goal-oriented method vs. the baselines.

Each strategy starts cold with the same violated goal and runs the same
workload; we compare how quickly each reaches a satisfying partitioning
and how often it stays satisfied.  The goal-oriented method should be
at least as good as the single-server heuristics it generalizes.
"""

from repro.baselines import make_controller
from repro.cluster.cluster import Cluster
from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import default_workload
from repro.workload.generator import WorkloadGenerator

STRATEGIES = (
    "goal-oriented", "fragment-fencing", "class-fencing", "dynamic-tuning"
)


def run_strategy(name, config, goal_ms, intervals=40, seed=5):
    cluster = Cluster(config, seed=seed)
    workload = default_workload(config, goal_ms=goal_ms)
    controller = make_controller(name, cluster, goals={1: goal_ms})
    generator = WorkloadGenerator(cluster, workload, sink=controller)
    generator.start()
    cluster.env.run(until=16_000.0)
    controller.start()
    cluster.env.run(
        until=cluster.env.now
        + intervals * config.observation_interval_ms + 1e-3
    )
    satisfied = controller.series[1].satisfied
    first = satisfied.index(True) + 1 if any(satisfied) else None
    return {
        "strategy": name,
        "first_satisfied": first,
        "satisfaction_ratio": sum(satisfied) / len(satisfied),
    }


def test_baseline_comparison(benchmark, bench_config):
    goal_ms = 6.0

    def run():
        return [
            run_strategy(name, bench_config, goal_ms)
            for name in STRATEGIES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit()
    emit(format_table(
        ["strategy", "first satisfied (interval)", "satisfied ratio"],
        [
            [r["strategy"],
             r["first_satisfied"] if r["first_satisfied"] else "never",
             r["satisfaction_ratio"]]
            for r in results
        ],
        title=f"Ablation: partitioning strategies (goal {goal_ms} ms)",
    ))
    by_name = {r["strategy"]: r for r in results}
    ours = by_name["goal-oriented"]
    # The goal-oriented method must reach satisfaction.
    assert ours["first_satisfied"] is not None
    # And be at least as steady as fragment fencing, the crudest
    # estimator (ties allowed).
    assert (
        ours["satisfaction_ratio"]
        >= by_name["fragment-fencing"]["satisfaction_ratio"] * 0.8
    )
