"""Table 1 — CPU execution time of the coordinator tasks.

Benchmarks the three coordinator computations (linear-independence
maintenance, hyperplane approximation, LP optimization) for the paper's
node counts and checks the paper's shape: every task grows with N and
the total stays in the low-millisecond range.
"""

import pytest

from repro.experiments.reporting import emit
from repro.experiments.table1 import (
    PAPER_NODE_COUNTS,
    build_problem,
    build_window,
    run_table1,
    synthetic_points,
    task_approximation,
    task_lin_independence,
    task_optimization,
    to_text,
)


@pytest.mark.parametrize("num_nodes", PAPER_NODE_COUNTS)
def test_lin_independence(benchmark, num_nodes):
    window = build_window(num_nodes, seed=0)
    points = synthetic_points(num_nodes, 64, seed=1)
    state = {"i": 0}

    def run():
        task_lin_independence(window, points[state["i"] % len(points)])
        state["i"] += 1

    benchmark(run)


@pytest.mark.parametrize("num_nodes", PAPER_NODE_COUNTS)
def test_approximation(benchmark, num_nodes):
    window = build_window(num_nodes, seed=0)
    benchmark(lambda: task_approximation(window))


@pytest.mark.parametrize("num_nodes", PAPER_NODE_COUNTS)
def test_optimization(benchmark, num_nodes):
    problem = build_problem(num_nodes, seed=0)
    result = benchmark(lambda: task_optimization(problem))
    assert result is not None


def test_table1_shape_matches_paper(benchmark):
    """Regenerate the whole table and verify the paper's trends."""
    rows = benchmark.pedantic(
        lambda: run_table1(node_counts=PAPER_NODE_COUNTS, repetitions=15),
        rounds=1,
        iterations=1,
    )
    emit()
    emit(to_text(rows))
    overall = [row.overall_ms for row in rows]
    # Shape 1: overall cost grows with N.
    assert overall[-1] > overall[0]
    # Shape 2: the total stays in the low-millisecond range even at
    # N = 50 (the paper reports 24.4 ms on 1997 hardware).
    assert overall[-1] < 50.0
    # Shape 3: per-task costs grow from N=5 to N=50.
    first, last = rows[0], rows[-1]
    assert last.lin_independence_ms > first.lin_independence_ms
    assert last.approximation_ms > first.approximation_ms
