"""Substrate performance report: ``python benchmarks/perf_report.py``.

Times the same workloads as :mod:`benchmarks.test_kernel_microbench`
with a plain ``time.perf_counter`` harness (no pytest needed) plus a
small fixed figure-2 run, and writes ``BENCH_substrate.json`` at the
repository root.  ``--scaling`` instead runs the cluster-scaling bench
(page-access cost vs. node count and database size, plus the heat
bookkeeping memory footprint) and writes ``BENCH_scaling.json``.
``--sweep`` times cold vs. fork-server goal sweeps (see
:mod:`repro.experiments.forkserver`) and writes ``BENCH_sweep.json``;
the recorded speedups are measured in the same run, so they need no
cross-commit baseline constants.

The ``BASELINE_SECONDS`` constants are the best-of-5 times of the same
workloads measured on the pre-optimization substrate (commit
``db4fa24``, CPython 3.11, single core) on the same machine that
produced the committed report — they are the reference the recorded
``speedup`` figures are relative to.  The ``SCALING_BASELINE``
constants follow the same convention against the pre-change tree
(commit ``37b700f``, before the vectorized arrival front-end and the
fetch-chain access path), measured interleaved with the optimized
tree — alternating subprocess runs, best over ~20 alternations spread
across several minutes — so host-level noise windows hit both sides
equally.  Re-run this script after kernel changes and compare against
your own machine's committed numbers, not across machines.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.cluster.cluster import Cluster  # noqa: E402
from repro.cluster.config import SystemConfig  # noqa: E402
from repro.experiments.reporting import emit  # noqa: E402
from repro.sim.engine import Environment  # noqa: E402
from repro.sim.resources import Resource  # noqa: E402

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
SCALING_REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_scaling.json"
)
SWEEP_REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
)
TELEMETRY_REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"
)
FAULTS_REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_faults.json"
)
ANALYTIC_REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_analytic.json"
)
#: The acceptance bar for an attached-but-idle fault layer: at most
#: this fraction of extra wall clock on either measured level.
FAULTS_IDLE_TARGET = 0.02

#: The acceptance bar for live streaming: an installed bus plus one
#: draining subscriber may add at most this fraction of end-to-end
#: wall clock over the same telemetry-enabled run without them.
LIVE_STREAM_TARGET = 0.02

#: Pre-change reference times (seconds, best of 5) for this machine.
BASELINE_SECONDS = {
    "event_throughput": 0.0300,   # 10k timeout events
    "page_access_path": 0.2666,   # 2k data-shipping accesses
}

EVENT_COUNT = 10_000
ACCESS_COUNT = 2_000

#: Pre-columnar (commit ``93909c8``) scaling references for this
#: machine: seconds (best of 6, interleaved with the optimized tree)
#: for the access benches, peak tracemalloc bytes for the heat-memory
#: probes.  Populated by the interleaved baseline session that
#: accompanied the columnar-hot-state change; rows the old tree was
#: never measured on are simply absent.
SCALING_BASELINE = {
    "hot_access_8_nodes": 0.2273,
    "hot_access_16_nodes": 0.2382,
    "hot_access_32_nodes": 0.2476,
    "hot_access_64_nodes": 0.3149,
    "hot_access_128_nodes": 0.3915,
    "hot_access_256_nodes": 0.4632,
    "hot_access_512_nodes": 0.5636,
    "mixed_access_32n_2000_pages": 0.1973,
    "mixed_access_32n_8000_pages": 0.2533,
    "mixed_access_32n_32000_pages": 0.5592,
    "mixed_access_32n_200000_pages": 0.4804,
    "mixed_access_32n_1000000_pages": 0.4466,
    "working_set_32n_8000_pages": 0.1854,
    "working_set_32n_200000_pages": 0.3057,
    "working_set_32n_1000000_pages": 0.2778,
    "heat_memory_200k_pages": 47_915_868,
    "heat_memory_1m_pages": 208_691_088,
}

#: CI regression gate: a quick-subset row may be at most this much
#: slower (relative us_per_access) than the committed scaling report
#: before ``--check-regression`` fails the run — after normalizing by
#: the median measured/committed ratio across the compared rows, so a
#: uniformly slower CI machine (or a noisy host window) cancels out
#: and only *shape* changes fail: one workload regressing while the
#: rest hold is exactly what the gate exists to catch.  25% because
#: the residual per-row spread after normalization measures ±15% on a
#: busy host even with no code change (the shortest rows run ~0.15 s);
#: an algorithmic scaling regression — the 2.7× node-count cliff this
#: gate was built against — clears 25% by an order of magnitude.
REGRESSION_TOLERANCE = 0.25

HOT_ACCESS_COUNT = 30_000   # hit-dominated accesses per hot bench run
MIXED_ACCESS_COUNT = 20_000  # accesses per database-size bench run

#: Node counts of the hot-access rows and database sizes of the mixed
#: and fixed-working-set rows; the ``--quick`` CI subset keeps one
#: small and one large point per family.
HOT_NODE_COUNTS = (8, 16, 32, 64, 128, 256, 512)
MIXED_PAGE_COUNTS = (2_000, 8_000, 32_000, 200_000, 1_000_000)
WORKING_SET_TABLES = (8_000, 200_000, 1_000_000)
WORKING_SET_PAGES = 8_000   # pages actually touched by the sweep rows
QUICK_HOT_NODE_COUNTS = (16, 64)
QUICK_MIXED_PAGE_COUNTS = (8_000, 32_000)
QUICK_WORKING_SET_TABLES = (8_000, 1_000_000)
HEAT_PAGE_COUNTS = (200_000, 1_000_000)  # heat-memory probe sizes
QUICK_HEAT_PAGE_COUNTS = (200_000,)


def best_of(setup, run, repeats: int) -> float:
    """Best wall-clock time of ``run(state)`` over fresh setups."""
    best = float("inf")
    for _ in range(repeats):
        state = setup()
        start = time.perf_counter()
        run(state)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def bench_event_throughput(repeats: int) -> float:
    """Schedule-and-dispatch cost of 10k timeout events."""

    def run(_):
        env = Environment()

        def proc():
            for _ in range(EVENT_COUNT):
                yield env.timeout(1.0)

        env.process(proc())
        env.run()
        assert env.now == float(EVENT_COUNT)

    return best_of(lambda: None, run, repeats)


def bench_resource_throughput(repeats: int) -> float:
    """Acquire/release cycles through a contended FCFS resource."""

    def run(_):
        env = Environment()
        resource = Resource(env, capacity=2)

        def proc():
            for _ in range(500):
                with resource.request() as req:
                    yield req
                    yield env.timeout(0.1)

        for _ in range(4):
            env.process(proc())
        env.run()

    return best_of(lambda: None, run, repeats)


def bench_page_access_path(repeats: int) -> float:
    """End-to-end cost of the data-shipping access path (mixed hits).

    A fresh cold cluster per repeat so every measurement sees the same
    hit/miss mix as the pytest microbenchmark's single round.
    """

    def setup():
        return Cluster(SystemConfig(num_pages=500), seed=0)

    def run(cluster):
        def proc():
            for i in range(ACCESS_COUNT):
                yield from cluster.access_page(
                    i % 3, (i * 7) % 500, class_id=0
                )

        cluster.env.process(proc())
        cluster.env.run()

    return best_of(setup, run, repeats)


def bench_page_access_path_faults_idle(repeats: int) -> float:
    """The access path with an idle fault layer attached.

    An attached layer with an empty schedule adds only attribute
    checks to the hot paths (no RNG draws, no extra processes); this
    number pins that cost next to the plain ``page_access_path``.
    """
    from repro.faults import FaultInjector, FaultSchedule

    def setup():
        cluster = Cluster(SystemConfig(num_pages=500), seed=0)
        FaultInjector(cluster, FaultSchedule([])).start()
        return cluster

    def run(cluster):
        def proc():
            for i in range(ACCESS_COUNT):
                yield from cluster.access_page(
                    i % 3, (i * 7) % 500, class_id=0
                )

        cluster.env.process(proc())
        cluster.env.run()

    return best_of(setup, run, repeats)


def bench_figure2_wallclock() -> float:
    """One short fixed figure-2 run (controller + workload end to end)."""
    from repro.cluster.config import NodeParameters
    from repro.experiments.calibration import GoalRange
    from repro.experiments.figure2 import run_figure2

    config = SystemConfig(
        num_nodes=3,
        num_pages=400,
        node=NodeParameters(buffer_bytes=256 * 1024),
        observation_interval_ms=2_000.0,
    )
    goal_range = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=8.0)
    start = time.perf_counter()
    run_figure2(
        config=config,
        goal_range=goal_range,
        seed=42,
        intervals=4,
        warmup_ms=4_000.0,
    )
    return time.perf_counter() - start


def _hot_access_workload(num_nodes: int):
    """Setup/run pair for the hit-dominated hot-access bench."""
    from repro.cluster.config import NodeParameters

    pages = 4_000
    n = HOT_ACCESS_COUNT

    def setup():
        return Cluster(
            SystemConfig(
                num_nodes=num_nodes,
                num_pages=pages,
                node=NodeParameters(buffer_bytes=2 * 1024 * 1024),
            ),
            seed=0,
        )

    def run(cluster):
        access_run = cluster.access_run

        def proc():
            for i in range(n):
                node = i % num_nodes
                yield from access_run(
                    node, ((node * 117 + i * 13) % pages,), 0
                )

        cluster.env.process(proc())
        cluster.env.run()

    return setup, run


def bench_hot_access(num_nodes: int, repeats: int) -> float:
    """Hit-dominated page accesses on a ``num_nodes``-node cluster.

    2 MB buffers over a 4000-page database keep most accesses local
    once warm, so this isolates the per-access bookkeeping (heat,
    benefit repricing, directory) from disk and network service times.
    """
    setup, run = _hot_access_workload(num_nodes)
    return best_of(setup, run, repeats)


def _mixed_access_workload(num_pages: int):
    """Setup/run pair for the growing-database mixed bench."""
    n = MIXED_ACCESS_COUNT
    nodes = 32

    def setup():
        return Cluster(
            SystemConfig(num_nodes=nodes, num_pages=num_pages), seed=0
        )

    def run(cluster):
        access_run = cluster.access_run

        def proc():
            for i in range(n):
                yield from access_run(
                    i % nodes, ((i * 7) % num_pages,), 0
                )

        cluster.env.process(proc())
        cluster.env.run()

    return setup, run


def bench_mixed_access(num_pages: int, repeats: int) -> float:
    """Default-size buffers over a ``num_pages``-page database (32 nodes).

    Grows the database at fixed cache size, so the miss rate — and
    with it eviction/repricing and directory churn — rises with
    ``num_pages``; past the point where every access misses (32k pages
    and up) the curve isolates how access cost scales with the *size*
    of the hot-state structures.
    """
    setup, run = _mixed_access_workload(num_pages)
    return best_of(setup, run, repeats)


def _working_set_workload(num_pages: int):
    """Setup/run pair for the fixed-working-set sweep.

    Always touches :data:`WORKING_SET_PAGES` distinct pages — strided
    across the id space so they hit every region of the columns — while
    the *database* (and with it the directory, heat, and pool keyspace)
    grows to ``num_pages``.  Hit/miss mix is therefore identical in
    every row, and any µs/access growth measures pure data-structure
    scaling: the property the columnar layout is meant to flatten.
    """
    n = MIXED_ACCESS_COUNT
    nodes = 32
    stride = num_pages // WORKING_SET_PAGES

    def setup():
        return Cluster(
            SystemConfig(num_nodes=nodes, num_pages=num_pages), seed=0
        )

    def run(cluster):
        access_run = cluster.access_run

        def proc():
            for i in range(n):
                yield from access_run(
                    i % nodes,
                    (((i * 7) % WORKING_SET_PAGES) * stride,),
                    0,
                )

        cluster.env.process(proc())
        cluster.env.run()

    return setup, run


def bench_working_set(num_pages: int, repeats: int) -> float:
    """Fixed 8k-page working set over a ``num_pages``-page database."""
    setup, run = _working_set_workload(num_pages)
    return best_of(setup, run, repeats)


def traced_peak(setup, run) -> int:
    """Peak tracemalloc bytes of one fresh ``run(setup())``.

    Runs *after* the timing repeats (tracemalloc instruments every
    allocation, roughly doubling runtime), so the timed numbers stay
    clean while each row still reports its memory high-water mark.
    """
    import tracemalloc

    state = setup()
    tracemalloc.start()
    run(state)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def bench_heat_memory(page_count: int) -> int:
    """Peak bytes to heat-track ``page_count`` pages (two accesses, k=2).

    One local tracker plus the global registry, the per-node pairing
    every big-database simulation carries.  Deterministic, so no
    repeats: allocation sizes do not vary between runs.
    """
    import tracemalloc

    from repro.bufmgr.heat import GlobalHeatRegistry, HeatTracker

    tracemalloc.start()
    tracker = HeatTracker(k=2)
    registry = GlobalHeatRegistry(k=2)
    for page in range(page_count):
        tracker.record(page, 1.0)
        tracker.record(page, 2.0)
        registry.record(page, 1.0)
        registry.record(page, 2.0)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def build_scaling_report(repeats: int, quick: bool = False) -> dict:
    benchmarks = {}

    def record(name, workload, accesses):
        setup, run = workload
        seconds = best_of(setup, run, repeats)
        entry = {
            "seconds": round(seconds, 6),
            "us_per_access": round(seconds / accesses * 1e6, 2),
            "tracemalloc_peak_bytes": traced_peak(setup, run),
        }
        baseline = SCALING_BASELINE.get(name)
        if baseline is not None:
            entry["baseline_seconds"] = baseline
            entry["speedup"] = round(baseline / seconds, 2)
        benchmarks[name] = entry

    hot_nodes = QUICK_HOT_NODE_COUNTS if quick else HOT_NODE_COUNTS
    mixed_pages = (
        QUICK_MIXED_PAGE_COUNTS if quick else MIXED_PAGE_COUNTS
    )
    tables = (
        QUICK_WORKING_SET_TABLES if quick else WORKING_SET_TABLES
    )
    heat_pages = QUICK_HEAT_PAGE_COUNTS if quick else HEAT_PAGE_COUNTS

    for nodes in hot_nodes:
        record(
            f"hot_access_{nodes}_nodes",
            _hot_access_workload(nodes),
            HOT_ACCESS_COUNT,
        )
    for pages in mixed_pages:
        record(
            f"mixed_access_32n_{pages}_pages",
            _mixed_access_workload(pages),
            MIXED_ACCESS_COUNT,
        )
    for pages in tables:
        record(
            f"working_set_32n_{pages}_pages",
            _working_set_workload(pages),
            MIXED_ACCESS_COUNT,
        )

    # Flatness headline: the 1M-page fixed-working-set row against the
    # 8k one (same hit/miss mix, 125x the table), the quantitative pin
    # behind "roughly flat µs/access from 8k to 1M pages".
    small = benchmarks.get("working_set_32n_8000_pages")
    large = benchmarks.get("working_set_32n_1000000_pages")
    if small and large:
        benchmarks["working_set_flatness"] = {
            "ratio_1m_vs_8k": round(
                large["seconds"] / small["seconds"], 3
            ),
        }

    # Node-count flatness: per-access cost at 256 (and 512) nodes
    # against 8.  Not a pure data-structure probe like the working-set
    # ratio — growing the cluster at a fixed database turns the
    # hit-dominated 8-node profile into an all-miss, 4-hop-fetch
    # profile, so events per access rise structurally — but that is
    # exactly why it is the scaling headline: it bounds how much the
    # whole substrate (front-end, fetch chains, event recycling) lets
    # per-access cost grow with cluster size.
    small = benchmarks.get("hot_access_8_nodes")
    large = benchmarks.get("hot_access_256_nodes")
    if small and large:
        entry = {
            "node_flatness": round(
                large["us_per_access"] / small["us_per_access"], 3
            ),
        }
        huge = benchmarks.get("hot_access_512_nodes")
        if huge:
            entry["ratio_512n_vs_8n"] = round(
                huge["us_per_access"] / small["us_per_access"], 3
            )
        benchmarks["hot_access_node_flatness"] = entry

    for pages in heat_pages:
        label = "200k" if pages == 200_000 else "1m"
        name = f"heat_memory_{label}_pages"
        peak = bench_heat_memory(pages)
        entry = {"peak_bytes": peak}
        baseline_peak = SCALING_BASELINE.get(name)
        if baseline_peak is not None:
            entry["baseline_peak_bytes"] = baseline_peak
            entry["reduction"] = round(1.0 - peak / baseline_peak, 3)
        benchmarks[name] = entry

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "quick": quick,
        "benchmarks": benchmarks,
    }


def check_scaling_regression(
    report: dict,
    committed: dict,
    tolerance: float = REGRESSION_TOLERANCE,
) -> list:
    """Compare a scaling report against the committed one.

    Returns ``(name, committed_us, measured_us)`` triples for every
    row whose ``us_per_access`` regressed by more than ``tolerance``
    relative to the ``committed`` report (a parsed
    ``BENCH_scaling.json``).  Rows absent from either side are
    skipped, so the quick CI subset gates only the rows it actually
    ran.

    The comparison is *shape-based*: with three or more comparable
    rows, every measured value is first normalized by the median
    measured/committed ratio across all rows.  A uniformly slower (or
    faster) machine shifts every row by the same factor and cancels
    out of the normalized comparison, while a single workload that
    regressed algorithmically barely moves the median and is caught —
    the gate tests the scaling *surface*, not the machine.  With fewer
    than three comparable rows there is no meaningful median, so the
    comparison falls back to absolute values.
    """
    committed = committed["benchmarks"]
    rows = []
    for name, entry in report["benchmarks"].items():
        measured = entry.get("us_per_access")
        reference = committed.get(name, {}).get("us_per_access")
        if measured is None or reference is None:
            continue
        rows.append((name, reference, measured))
    calibration = 1.0
    if len(rows) >= 3:
        ratios = sorted(m / r for _, r, m in rows)
        mid = len(ratios) // 2
        calibration = (
            ratios[mid] if len(ratios) % 2
            else (ratios[mid - 1] + ratios[mid]) / 2.0
        )
    failures = []
    for name, reference, measured in rows:
        if measured > reference * calibration * (1.0 + tolerance):
            failures.append((name, reference, measured))
    return failures


def bench_goal_sweep(points: int, runner: str) -> float:
    """Wall-clock of one figure-2 goal sweep at ``jobs=1``.

    Short measured horizon against a long warm-up (4 intervals of 2 s
    vs. 20 s), the regime the warm-state fork server targets: cold pays
    ``points`` warm-ups, fork pays one per replicate.  ``jobs=1`` so
    the comparison isolates warm-up amortization from multi-core
    speedup — the two compose.
    """
    from repro.cluster.config import NodeParameters
    from repro.experiments.calibration import GoalRange
    from repro.experiments.figure2 import run_goal_sweep

    config = SystemConfig(
        num_nodes=3,
        num_pages=400,
        node=NodeParameters(buffer_bytes=256 * 1024),
        observation_interval_ms=2_000.0,
    )
    goal_range = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=8.0)
    start = time.perf_counter()
    sweep = run_goal_sweep(
        points=points,
        seed=42,
        intervals=4,
        config=config,
        goal_range=goal_range,
        warmup_ms=20_000.0,
        jobs=1,
        runner=runner,
    )
    elapsed = time.perf_counter() - start
    assert sweep.runner == runner and len(sweep.points) == points
    return elapsed


def build_sweep_report() -> dict:
    """Cold vs. forked wall-clock for figure-2 goal sweeps."""
    benchmarks = {}
    for points in (4, 12):
        cold = bench_goal_sweep(points, "cold")
        forked = bench_goal_sweep(points, "fork")
        benchmarks[f"goal_sweep_{points}_points"] = {
            "points": points,
            "cold_seconds": round(cold, 6),
            "fork_seconds": round(forked, 6),
            "speedup": round(cold / forked, 2),
        }
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "jobs": 1,
        "benchmarks": benchmarks,
    }


def _sweep_bench_config():
    """The quick sweep-bench system shared by --sweep and --analytic."""
    from repro.cluster.config import NodeParameters
    from repro.experiments.calibration import GoalRange

    config = SystemConfig(
        num_nodes=3,
        num_pages=400,
        node=NodeParameters(buffer_bytes=256 * 1024),
        observation_interval_ms=2_000.0,
    )
    goal_range = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=8.0)
    return config, goal_range


def build_analytic_report(grid: int = 1_000) -> dict:
    """Analytic fast-path cost: grid solves + prescreened-sweep speedup.

    Three layers of numbers:

    - ``grid_*``: wall clock of classifying a ``grid``-point goal grid
      with the MVA solver alone (the quick sweep-bench system and the
      paper's default system) — the ms-per-analytic-point headline.
    - ``goal_sweep_brute_12``: a 12-point unscreened forked sweep,
      measured; its per-point rate extrapolates to the
      ``grid``-point brute-force cost (clearly labelled — nobody runs
      a 1000-point brute sweep to benchmark it).
    - ``goal_sweep_prescreened``: the same sweep with
      ``prescreen=grid``, measured end to end: dense analytic grid,
      frontier extraction, simulation of only the selected points.
    """
    from repro.analytic.frontier import prescreen_goals
    from repro.experiments.figure2 import run_goal_sweep, sweep_goals
    from repro.experiments.runner import default_workload

    benchmarks = {}
    quick_config, goal_range = _sweep_bench_config()
    goals = sweep_goals(goal_range, grid)

    for name, config in (
        ("quick_3n_400p", quick_config),
        ("default_3n_2000p", SystemConfig()),
    ):
        workload = default_workload(config)
        start = time.perf_counter()
        report = prescreen_goals(config, workload, goals)
        elapsed = time.perf_counter() - start
        benchmarks[f"grid_{grid}_{name}"] = {
            "grid": report.grid_size,
            "frontier": report.frontier_size,
            "mva_solves": report.solves,
            "seconds": round(elapsed, 6),
            "ms_per_analytic_point": round(
                elapsed * 1000.0 / report.grid_size, 4
            ),
            "regimes": report.regime_counts(),
        }

    brute_points = 12
    start = time.perf_counter()
    brute = run_goal_sweep(
        points=brute_points, seed=42, intervals=4, config=quick_config,
        goal_range=goal_range, warmup_ms=20_000.0, jobs=1, runner="fork",
    )
    brute_seconds = time.perf_counter() - start
    assert len(brute.points) == brute_points

    start = time.perf_counter()
    screened = run_goal_sweep(
        seed=42, intervals=4, config=quick_config,
        goal_range=goal_range, warmup_ms=20_000.0, jobs=1,
        runner="fork", prescreen=grid,
    )
    screened_seconds = time.perf_counter() - start
    simulated = len(screened.points)

    extrapolated = brute_seconds / brute_points * grid
    benchmarks["goal_sweep_brute_12"] = {
        "points": brute_points,
        "seconds": round(brute_seconds, 6),
        f"extrapolated_{grid}_point_seconds": round(extrapolated, 3),
    }
    benchmarks["goal_sweep_prescreened"] = {
        "grid": grid,
        "simulated_points": simulated,
        "simulated_fraction": round(simulated / grid, 4),
        "analytic_seconds": round(
            screened.prescreen.solver_ms / 1000.0, 6
        ),
        "seconds": round(screened_seconds, 6),
        "speedup_vs_extrapolated_brute": round(
            extrapolated / screened_seconds, 2
        ),
    }
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "jobs": 1,
        "benchmarks": benchmarks,
    }


def bench_page_access_telemetry(attached: bool, repeats: int) -> float:
    """The data-shipping access path with telemetry off or attached.

    ``attached=False`` measures the disabled cost: the hot paths pay
    one ``None`` attribute check per access, nothing else.
    ``attached=True`` wires a full metrics/trace pipeline to the
    cluster, so every access records a counter and a latency
    histogram sample.
    """

    def setup():
        cluster = Cluster(SystemConfig(num_pages=500), seed=0)
        if attached:
            from repro.telemetry import attach_cluster

            attach_cluster(cluster)
        return cluster

    def run(cluster):
        def proc():
            for i in range(ACCESS_COUNT):
                yield from cluster.access_page(
                    i % 3, (i * 7) % 500, class_id=0
                )

        cluster.env.process(proc())
        cluster.env.run()

    return best_of(setup, run, repeats)


def bench_figure2_telemetry(enabled: bool) -> float:
    """Best-of-3 wall clock of the short figure-2 run, on or off.

    With ``enabled`` the module-level flag arms the full pipeline
    (metrics + trace, no file exports), the way ``--telemetry``
    instruments a real experiment run.
    """
    import repro.telemetry as telemetry_mod

    best = float("inf")
    for _ in range(3):
        if enabled:
            telemetry_mod.enable()
        try:
            best = min(best, bench_figure2_wallclock())
        finally:
            telemetry_mod.disable()
    return best


def _figure2_live_once(streaming: bool) -> float:
    """One telemetry-enabled figure-2 run, optionally live-streamed.

    The streaming side reproduces what ``--live-port`` arms: a
    :class:`~repro.telemetry.live.TelemetryBus` installed via the
    module hook (so the run wires a snapshot sampler) plus a consumer
    thread draining its subscription, the way the HTTP service pumps
    a connected dashboard.
    """
    import threading

    import repro.telemetry as telemetry_mod
    from repro.telemetry import live as live_mod
    from repro.telemetry.live import TelemetryBus

    drainer = None
    stop = threading.Event()
    if streaming:
        bus = TelemetryBus()
        live_mod.install(bus)
        sub = bus.subscribe()

        def drain():
            while not stop.is_set():
                if sub.get(timeout=0.05) is None and sub.closed:
                    return

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()
    telemetry_mod.enable()
    try:
        return bench_figure2_wallclock()
    finally:
        telemetry_mod.disable()
        if streaming:
            live_mod.uninstall()
            stop.set()
            bus.close()
            drainer.join(timeout=2.0)


def bench_figure2_live(repeats: int):
    """Interleaved best-of pair: (plain telemetry, live-streamed).

    Alternating the two sides within each repeat keeps slow drifts
    (thermal, cache, scheduler) from landing on one side only — the
    run is short enough that sequential best-of-3 swings ±5 %, far
    more than the effect being measured.
    """
    base = streamed = float("inf")
    for _ in range(max(repeats, 3)):
        base = min(base, _figure2_live_once(False))
        streamed = min(streamed, _figure2_live_once(True))
    return base, streamed


def build_live_report(repeats: int) -> dict:
    """Live-streaming overhead: bus + subscriber vs. plain telemetry.

    Both sides run the same telemetry-enabled short figure-2 run
    interleaved in the same process, so the ratio isolates exactly
    what live streaming adds: the trace listener, periodic metric
    snapshots, and the bounded-queue hand-off to a draining
    subscriber thread.  The headline is ``overhead_fraction`` against
    the ≤ 2 % target.
    """
    base, streamed = bench_figure2_live(repeats)
    overhead = streamed / base - 1.0
    benchmarks = {
        "figure2_live_baseline": {
            "seconds": round(base, 6),
        },
        "figure2_live_streaming": {
            "seconds": round(streamed, 6),
            "overhead_fraction": round(overhead, 4),
            "target_fraction": LIVE_STREAM_TARGET,
            "within_target": overhead <= LIVE_STREAM_TARGET,
        },
    }
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "benchmarks": benchmarks,
    }


def build_telemetry_report(repeats: int) -> dict:
    """Telemetry overhead: off must be free, on must stay cheap.

    Off and on are measured interleaved in the same process so machine
    noise hits both sides equally; the headline numbers are the ratios,
    not the absolute seconds.  Three levels:

    - ``event_throughput``: the kernel control.  Telemetry has no
      event-loop hooks, so disabled *and* enabled must both match the
      substrate baseline.
    - ``page_access_*``: the worst-case microcost — a hit-dominated
      access path doing almost no other work, so the per-access
      counter + histogram sample shows at full relative size.
    - ``figure2_short_*``: the end-to-end cost of a fully enabled
      pipeline on a real controller run, the number ``--telemetry``
      users actually pay.
    """
    import repro.telemetry as telemetry_mod

    events_off = bench_event_throughput(repeats)
    telemetry_mod.enable()
    try:
        events_on = bench_event_throughput(repeats)
    finally:
        telemetry_mod.disable()
    off = bench_page_access_telemetry(False, repeats)
    on = bench_page_access_telemetry(True, repeats)
    fig_off = bench_figure2_telemetry(False)
    fig_on = bench_figure2_telemetry(True)
    event_baseline = BASELINE_SECONDS["event_throughput"]
    benchmarks = {
        "event_throughput_disabled": {
            "seconds": round(events_off, 6),
            "ops_per_s": round(EVENT_COUNT / events_off),
            "baseline_seconds": event_baseline,
            "vs_baseline": round(events_off / event_baseline, 3),
        },
        "event_throughput_enabled": {
            "seconds": round(events_on, 6),
            "ops_per_s": round(EVENT_COUNT / events_on),
            "baseline_seconds": event_baseline,
            "vs_baseline": round(events_on / event_baseline, 3),
            "vs_disabled": round(events_on / events_off, 3),
        },
        "page_access_telemetry_off": {
            "seconds": round(off, 6),
            "us_per_access": round(off / ACCESS_COUNT * 1e6, 2),
        },
        "page_access_telemetry_on": {
            "seconds": round(on, 6),
            "us_per_access": round(on / ACCESS_COUNT * 1e6, 2),
            "overhead_fraction": round(on / off - 1.0, 3),
        },
        "figure2_short_off": {"seconds": round(fig_off, 6)},
        "figure2_short_on": {
            "seconds": round(fig_on, 6),
            "overhead_fraction": round(fig_on / fig_off - 1.0, 3),
        },
    }
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "benchmarks": benchmarks,
    }


def bench_control_loop(idle_faults: bool, intervals: int = 12) -> float:
    """Best-of-3 wall clock of a short feedback-loop run.

    With ``idle_faults`` an injector with an *empty* schedule is
    attached, so the controller polls the control-plane fault state
    every interval (always-zero fields, no RNG) and every hot path
    pays its fault-layer attribute check — the full idle cost of the
    control-plane fault domain, end to end.
    """
    from repro.experiments.resilience import quick_config
    from repro.experiments.runner import Simulation, default_workload
    from repro.faults import FaultSchedule

    best = float("inf")
    for _ in range(3):
        config = quick_config()
        sim = Simulation(
            config=config,
            workload=default_workload(config, goal_ms=6.0),
            seed=0,
            warmup_ms=4000.0,
            faults=FaultSchedule([]) if idle_faults else None,
        )
        start = time.perf_counter()
        sim.run(intervals=intervals)
        best = min(best, time.perf_counter() - start)
    return best


def build_faults_report(repeats: int) -> dict:
    """Idle fault-domain overhead: attached but quiet must be ~free.

    The control-plane fault domain promises that merely *having* a
    fault layer (empty schedule, no control fault ever fires) costs
    nothing measurable: hot paths pay one attribute check, the
    controller reads two always-zero fields per interval, and no
    randomness is drawn.  Both sides of each pair are measured in the
    same process run so machine noise hits them equally; the headline
    is ``overhead_fraction`` against the ≤ 2 % target.
    """
    access_off = bench_page_access_path(repeats)
    access_idle = bench_page_access_path_faults_idle(repeats)
    loop_off = bench_control_loop(False)
    loop_idle = bench_control_loop(True)
    access_overhead = access_idle / access_off - 1.0
    loop_overhead = loop_idle / loop_off - 1.0
    benchmarks = {
        "page_access_no_faults": {
            "seconds": round(access_off, 6),
            "us_per_access": round(access_off / ACCESS_COUNT * 1e6, 2),
        },
        "page_access_faults_idle": {
            "seconds": round(access_idle, 6),
            "us_per_access": round(access_idle / ACCESS_COUNT * 1e6, 2),
            "overhead_fraction": round(access_overhead, 4),
            "target_fraction": FAULTS_IDLE_TARGET,
            "within_target": access_overhead <= FAULTS_IDLE_TARGET,
        },
        "control_loop_no_faults": {
            "seconds": round(loop_off, 6),
        },
        "control_loop_faults_idle": {
            "seconds": round(loop_idle, 6),
            "overhead_fraction": round(loop_overhead, 4),
            "target_fraction": FAULTS_IDLE_TARGET,
            "within_target": loop_overhead <= FAULTS_IDLE_TARGET,
        },
    }
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "benchmarks": benchmarks,
    }


def build_report(repeats: int) -> dict:
    benchmarks = {}

    def record(name, seconds, ops=None):
        entry = {"seconds": round(seconds, 6)}
        if ops is not None:
            entry["ops_per_s"] = round(ops / seconds)
        baseline = BASELINE_SECONDS.get(name)
        if baseline is not None:
            entry["baseline_seconds"] = baseline
            entry["speedup"] = round(baseline / seconds, 2)
        benchmarks[name] = entry

    record(
        "event_throughput", bench_event_throughput(repeats), EVENT_COUNT
    )
    record("resource_throughput", bench_resource_throughput(repeats))
    record(
        "page_access_path", bench_page_access_path(repeats), ACCESS_COUNT
    )
    record(
        "page_access_path_faults_idle",
        bench_page_access_path_faults_idle(repeats),
        ACCESS_COUNT,
    )
    record("figure2_short_run", bench_figure2_wallclock())

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "benchmarks": benchmarks,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=20,
        help="best-of repeats per microbenchmark (default 20; "
             "the scaling report defaults to 6)",
    )
    parser.add_argument(
        "--scaling", action="store_true",
        help="run the cluster-scaling bench instead of the substrate "
             f"microbenchmarks (writes {SCALING_REPORT_PATH.name})",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="run the warm-state fork-server sweep bench instead "
             f"(cold vs. forked goal sweeps; writes "
             f"{SWEEP_REPORT_PATH.name})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="with --scaling: run the CI subset (one small and one "
             "large point per row family) instead of the full sweep",
    )
    parser.add_argument(
        "--check-regression", action="store_true",
        help="with --scaling: after measuring, compare us_per_access "
             "against the committed BENCH_scaling.json and exit "
             f"non-zero if any row regressed more than "
             f"{REGRESSION_TOLERANCE:.0%} (the CI scaling gate)",
    )
    parser.add_argument(
        "--telemetry-overhead", action="store_true",
        help="measure the telemetry layer's cost, off vs. attached "
             f"(writes {TELEMETRY_REPORT_PATH.name})",
    )
    parser.add_argument(
        "--live-overhead", action="store_true",
        help="measure live-streaming cost (installed bus + draining "
             "subscriber vs. plain telemetry-enabled run); merges its "
             f"rows into {TELEMETRY_REPORT_PATH.name}",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="measure the idle fault-domain overhead (layer attached, "
             f"empty schedule, vs. none; writes {FAULTS_REPORT_PATH.name})",
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="measure the analytic fast path (ms per MVA grid point, "
             "frontier size, prescreened vs. brute sweep wall clock; "
             f"writes {ANALYTIC_REPORT_PATH.name})",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help=f"output path (default {REPORT_PATH.name}, or "
             f"{SCALING_REPORT_PATH.name} with --scaling, or "
             f"{SWEEP_REPORT_PATH.name} with --sweep, or "
             f"{TELEMETRY_REPORT_PATH.name} with --telemetry-overhead, "
             f"{FAULTS_REPORT_PATH.name} with --faults, or "
             f"{ANALYTIC_REPORT_PATH.name} with --analytic)",
    )
    args = parser.parse_args(argv)
    committed = None
    if args.analytic:
        report = build_analytic_report()
        out = args.out if args.out is not None else ANALYTIC_REPORT_PATH
    elif args.faults:
        report = build_faults_report(args.repeats)
        out = args.out if args.out is not None else FAULTS_REPORT_PATH
    elif args.live_overhead:
        report = build_live_report(args.repeats)
        out = (
            args.out if args.out is not None else TELEMETRY_REPORT_PATH
        )
        # The live rows ride in the telemetry report, so fold them
        # into whatever the --telemetry-overhead pass already wrote.
        if out.exists():
            prior = json.loads(out.read_text())
            merged = dict(prior.get("benchmarks", {}))
            merged.update(report["benchmarks"])
            report["benchmarks"] = merged
    elif args.telemetry_overhead:
        report = build_telemetry_report(args.repeats)
        out = (
            args.out if args.out is not None else TELEMETRY_REPORT_PATH
        )
    elif args.sweep:
        report = build_sweep_report()
        out = args.out if args.out is not None else SWEEP_REPORT_PATH
    elif args.scaling:
        repeats = args.repeats if args.repeats != 20 else 6
        # Read the committed reference before measuring: the default
        # --out overwrites the very file the gate compares against.
        committed = (
            json.loads(SCALING_REPORT_PATH.read_text())
            if args.check_regression else None
        )
        report = build_scaling_report(repeats, quick=args.quick)
        out = args.out if args.out is not None else SCALING_REPORT_PATH
    else:
        report = build_report(args.repeats)
        out = args.out if args.out is not None else REPORT_PATH
    out.write_text(json.dumps(report, indent=2) + "\n")
    emit(json.dumps(report, indent=2))
    emit(f"\nreport written to {out}")
    if args.scaling and committed is not None:
        failures = check_scaling_regression(report, committed)
        if failures:
            emit("\nscaling regression gate FAILED "
                 f"(tolerance {REGRESSION_TOLERANCE:.0%}):")
            for name, reference, measured in failures:
                emit(f"  {name}: {reference} -> {measured} us/access "
                     f"(+{measured / reference - 1.0:.1%})")
            sys.exit(1)
        emit("scaling regression gate passed "
             f"(tolerance {REGRESSION_TOLERANCE:.0%})")


if __name__ == "__main__":
    main()
