"""Extension — resilience: re-convergence after a node restart.

A node restart wipes one node's cache and heat bookkeeping.  The
response time of every class spikes (its pages must be refetched from
disk), and the feedback loop must re-converge without intervention —
the strongest form of the paper's adaptivity claim.
"""

from repro.experiments.reporting import emit, format_table
from repro.experiments.runner import Simulation, default_workload


def test_restart_recovery(benchmark, bench_config):
    goal_ms = 6.0

    def run():
        workload = default_workload(bench_config, goal_ms=goal_ms)
        sim = Simulation(
            config=bench_config, workload=workload, seed=11,
            warmup_ms=16_000.0,
        )
        sim.run(intervals=30)
        before = list(sim.controller.series[1].observed_rt.values)
        dropped = sim.cluster.restart_node(0)
        sim.run(intervals=30)
        after = sim.controller.series[1].observed_rt.values[len(before):]
        satisfied = sim.satisfied(1)
        return {
            "dropped_pages": dropped,
            "rt_before_tail": sum(before[-5:]) / 5,
            "rt_spike": max(after[:5]),
            "rt_after_tail": sum(after[-5:]) / 5,
            "satisfied_before": sum(satisfied[:30]) / 30,
            "satisfied_after_tail": sum(satisfied[-15:]) / 15,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit()
    emit(format_table(
        ["metric", "value"],
        [[k, v] for k, v in result.items()],
        title="Extension: node restart resilience",
    ))
    # The restart dropped a meaningful amount of cache.
    assert result["dropped_pages"] > 0
    # And the loop re-converged: the tail after the restart is
    # satisfied at least part of the time and the RT came back down
    # from the spike.
    assert result["satisfied_after_tail"] > 0.0
    assert result["rt_after_tail"] < result["rt_spike"]
