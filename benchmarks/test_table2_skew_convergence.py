"""Table 2 — convergence speed under varying access skew (§7.3).

Runs the paper's convergence protocol for a subset of skew values at
benchmark scale (fewer replications than the module main) and checks
the paper's two claims:

* convergence takes only a few feedback iterations even at theta = 1;
* higher skew does not converge faster than uniform access (the linear
  approximation fits the uniform surface best).
"""

from dataclasses import replace

from repro.experiments.convergence import (
    ConvergenceSettings,
    convergence_experiment,
)
from repro.experiments.reporting import emit, format_table
from repro.experiments.table2 import PAPER_TABLE2

BENCH_SKEWS = (0.0, 0.5, 1.0)


def test_table2_convergence(benchmark, paper_config, paper_goal_range):
    settings = ConvergenceSettings(
        config=paper_config,
        goal_changes_per_run=4,
        initial_intervals=30,
    )

    def run():
        results = []
        for skew in BENCH_SKEWS:
            results.append(
                convergence_experiment(
                    settings=replace(settings, skew=skew),
                    goal_range=(
                        paper_goal_range if skew == 0.0 else None
                    ),
                    target_half_width=1.5,
                    min_replications=2,
                    max_replications=3,
                    base_seed=100,
                )
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [r.skew, r.mean_iterations, r.half_width, len(r.samples),
         PAPER_TABLE2[r.skew]]
        for r in results
    ]
    emit()
    emit(format_table(
        ["skew", "iterations", "ci", "samples", "paper"], rows,
        title="Table 2 (benchmark scale)",
    ))

    by_skew = {r.skew: r.mean_iterations for r in results}
    # Claim 1: even theta=1 converges within a handful of iterations
    # (paper: < 4; we allow noise headroom at benchmark scale).
    assert by_skew[1.0] < 10.0
    # Claim 2: uniform access is at least as easy as heavy skew.
    assert by_skew[0.0] <= by_skew[1.0] + 1.0
