"""Unit + integration tests for node restarts (cache loss)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.experiments.runner import Simulation


def test_restart_drops_all_cached_pages(fast_config):
    cluster = Cluster(fast_config, seed=0)

    def reader():
        for page in range(0, 30, 3):  # pages homed at node 0
            yield from cluster.access_page(0, page, 0)

    cluster.env.process(reader())
    cluster.env.run()
    assert cluster.nodes[0].buffers.cached_pages()
    dropped = cluster.restart_node(0)
    assert dropped > 0
    assert cluster.nodes[0].buffers.cached_pages() == []
    # Directory no longer lists node 0 anywhere.
    for page in range(fast_config.num_pages):
        assert 0 not in cluster.directory.holders(page)


def test_restart_preserves_allocation_table(fast_config):
    cluster = Cluster(fast_config, seed=0)
    cluster.apply_allocation(1, [8 * 4096] * fast_config.num_nodes)
    cluster.restart_node(1)
    assert cluster.nodes[1].buffers.dedicated_bytes(1) == 8 * 4096


def test_restart_resets_heat(fast_config):
    cluster = Cluster(fast_config, seed=0)

    def reader():
        for _ in range(5):
            yield from cluster.access_page(0, 0, 0)

    cluster.env.process(reader())
    cluster.env.run()
    manager = cluster.nodes[0].buffers
    assert manager.accumulated_heat.tracked(0)
    cluster.restart_node(0)
    assert not manager.accumulated_heat.tracked(0)


def test_node_keeps_working_after_restart(fast_config):
    cluster = Cluster(fast_config, seed=0)

    def reader(result):
        level = yield from cluster.access_page(0, 0, 0)
        result.append(level)

    before, after = [], []
    cluster.env.process(reader(before))
    cluster.env.run()
    cluster.restart_node(0)
    cluster.env.process(reader(after))
    cluster.env.run()
    from repro.bufmgr.costs import AccessLevel

    assert before == [AccessLevel.DISK]
    assert after == [AccessLevel.DISK]  # cold again after restart
    assert cluster.nodes[0].buffers.contains(0)


def test_feedback_loop_recovers_from_restart(fast_config, fast_workload):
    """The §7.2-style adaptivity claim under a node failure: after a
    restart wipes one node's cache, the controller re-converges."""
    sim = Simulation(
        config=fast_config, workload=fast_workload, seed=11,
        warmup_ms=10_000.0,
    )
    sim.run(intervals=25)
    sim.cluster.restart_node(0)
    sim.run(intervals=25)
    satisfied_after = sim.satisfied(1)[-15:]
    assert any(satisfied_after), (
        "controller failed to re-converge after the node restart"
    )


def test_restart_prunes_global_heat_of_fully_cold_pages(fast_config):
    """Discard paths forget global-heat bookkeeping for last copies."""
    cluster = Cluster(fast_config, seed=0)

    def reader():
        for page in range(0, 30, 3):  # pages homed at node 0
            yield from cluster.access_page(0, page, 0)

    cluster.env.process(reader())
    cluster.env.run()
    assert cluster.global_heat.tracked(0)
    cluster.restart_node(0)
    # Only node 0 cached those pages, so their cluster-wide heat
    # bookkeeping is deleted on demand (§6).
    for page in range(0, 30, 3):
        if not cluster.directory.cached_anywhere(page):
            assert not cluster.global_heat.tracked(page)


def test_restart_resets_interval_hit_counters(fast_config):
    cluster = Cluster(fast_config, seed=0)

    def reader():
        for page in range(0, 30, 3):
            yield from cluster.access_page(0, page, 0)
            yield from cluster.access_page(0, page, 0)  # second: a hit

    cluster.env.process(reader())
    cluster.env.run()
    buffers = cluster.nodes[0].buffers
    assert buffers.hits_by_class.get(0, 0) > 0
    cluster.restart_node(0)
    # A restarted node's counting state does not survive: stale counts
    # would otherwise poison the first post-restart hit-info deltas.
    assert buffers.hits_by_class == {}
    assert buffers.misses_by_class == {}


def test_restart_notifies_listeners_with_time(fast_config):
    cluster = Cluster(fast_config, seed=0)
    seen = []
    cluster.add_restart_listener(
        lambda node_id, now: seen.append((node_id, now))
    )

    def clock():
        yield cluster.env.timeout(1234.0)
        cluster.restart_node(2)

    cluster.env.process(clock())
    cluster.env.run()
    assert seen == [(2, 1234.0)]
