"""Meta-tests: public API completeness and documentation.

A library release needs every public module, class, and function to
carry a docstring, and every name exported via ``__all__`` to resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            f"{module_name}.__all__ lists missing name {name!r}"
        )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: undocumented public items {undocumented}"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for cls_name, cls in vars(module).items():
        if cls_name.startswith("_") or not inspect.isclass(cls):
            continue
        if cls.__module__ != module_name:
            continue
        for meth_name, meth in vars(cls).items():
            if meth_name.startswith("_"):
                continue
            if not (
                inspect.isfunction(meth)
                or isinstance(meth, property)
            ):
                continue
            doc = (
                meth.fget.__doc__ if isinstance(meth, property)
                else meth.__doc__
            )
            if doc and doc.strip():
                continue
            # An override inherits the contract documented on a base
            # class (Python does not propagate docstrings itself).
            inherited = any(
                getattr(getattr(base, meth_name, None), "__doc__", None)
                for base in cls.__mro__[1:]
            )
            if not inherited:
                undocumented.append(f"{cls_name}.{meth_name}")
    assert not undocumented, (
        f"{module_name}: undocumented methods {undocumented}"
    )


def test_top_level_api_surface():
    for name in repro.__all__:
        assert hasattr(repro, name)
    assert repro.__version__
