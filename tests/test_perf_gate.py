"""Unit tests for the CI scaling-regression gate in perf_report."""

import sys
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "benchmarks")
)

from perf_report import (  # noqa: E402
    REGRESSION_TOLERANCE,
    check_scaling_regression,
)


def _report(rows):
    return {"benchmarks": rows}


def test_gate_passes_within_tolerance():
    committed = _report({
        "hot_access_16_nodes": {"us_per_access": 10.0},
        "hot_access_64_nodes": {"us_per_access": 12.0},
    })
    measured = _report({
        "hot_access_16_nodes": {
            "us_per_access": 10.0 * (1.0 + REGRESSION_TOLERANCE) - 0.01
        },
        "hot_access_64_nodes": {"us_per_access": 11.0},  # improvement
    })
    assert check_scaling_regression(measured, committed) == []


def test_gate_flags_regressed_rows():
    committed = _report({
        "hot_access_16_nodes": {"us_per_access": 10.0},
        "hot_access_64_nodes": {"us_per_access": 12.0},
    })
    measured = _report({
        "hot_access_16_nodes": {"us_per_access": 13.0},
        "hot_access_64_nodes": {"us_per_access": 12.5},
    })
    failures = check_scaling_regression(measured, committed)
    assert failures == [("hot_access_16_nodes", 10.0, 13.0)]


def test_gate_skips_rows_missing_from_either_side():
    committed = _report({
        "hot_access_256_nodes": {"us_per_access": 20.0},
        "working_set_flatness": {"ratio_1m_vs_8k": 0.95},  # no us row
    })
    measured = _report({
        # 512 row is new — absent from the committed report.
        "hot_access_512_nodes": {"us_per_access": 999.0},
        "working_set_flatness": {"ratio_1m_vs_8k": 2.0},
        "heat_memory_200k_pages": {"peak_bytes": 1},
    })
    assert check_scaling_regression(measured, committed) == []


def test_gate_normalizes_uniform_machine_slowdown():
    # Same shape, uniformly 40% slower (a slower CI machine): the
    # median ratio cancels the speed difference and the gate passes.
    committed = _report({
        "hot_access_16_nodes": {"us_per_access": 5.0},
        "hot_access_64_nodes": {"us_per_access": 7.0},
        "mixed_access_32n_8000_pages": {"us_per_access": 7.0},
        "working_set_32n_8000_pages": {"us_per_access": 8.0},
    })
    measured = _report({
        name: {"us_per_access": row["us_per_access"] * 1.4}
        for name, row in committed["benchmarks"].items()
    })
    assert check_scaling_regression(measured, committed) == []


def test_gate_catches_single_row_regression_on_slow_machine():
    # Four rows 30% slower (machine), one row 80% slower (a real
    # regression): normalization cancels the 30% and flags the spike.
    committed = _report({
        "hot_access_16_nodes": {"us_per_access": 5.0},
        "hot_access_64_nodes": {"us_per_access": 7.0},
        "hot_access_256_nodes": {"us_per_access": 13.0},
        "mixed_access_32n_8000_pages": {"us_per_access": 7.0},
        "working_set_32n_8000_pages": {"us_per_access": 8.0},
    })
    measured = _report({
        name: {"us_per_access": row["us_per_access"] * 1.3}
        for name, row in committed["benchmarks"].items()
    })
    measured["benchmarks"]["hot_access_256_nodes"]["us_per_access"] = (
        13.0 * 1.8
    )
    failures = check_scaling_regression(measured, committed)
    assert failures == [("hot_access_256_nodes", 13.0, 13.0 * 1.8)]


def test_gate_absolute_fallback_below_three_rows():
    # With fewer than three comparable rows there is no meaningful
    # median; the comparison is absolute, so a uniform slowdown fails.
    committed = _report({
        "hot_access_16_nodes": {"us_per_access": 5.0},
        "hot_access_64_nodes": {"us_per_access": 7.0},
    })
    measured = _report({
        "hot_access_16_nodes": {"us_per_access": 7.0},
        "hot_access_64_nodes": {"us_per_access": 9.8},
    })
    failures = check_scaling_regression(measured, committed)
    assert len(failures) == 2


def test_gate_tolerance_parameter():
    committed = _report({"row": {"us_per_access": 10.0}})
    measured = _report({"row": {"us_per_access": 10.5}})
    assert check_scaling_regression(
        measured, committed, tolerance=0.01
    ) == [("row", 10.0, 10.5)]
    assert check_scaling_regression(
        measured, committed, tolerance=0.10
    ) == []
