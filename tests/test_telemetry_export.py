"""End-to-end telemetry tests: exports, determinism, zero overhead.

The non-negotiable invariants of the telemetry layer:

- artifacts (JSONL trace, Prometheus text, Chrome/Perfetto timeline)
  are produced and parse for a short instrumented run;
- telemetry never touches RNG streams or event ordering — the golden
  workload trace is bit-identical with telemetry enabled;
- the fork-server and cold sweep paths produce identical results *and*
  byte-identical telemetry trees, for any ``jobs`` value.
"""

import json
import os

import pytest

import repro.telemetry as telemetry_mod
from repro.telemetry.exporters import (
    METRICS_JSON_FILE,
    METRICS_TEXT_FILE,
    TIMELINE_FILE,
    TRACE_FILE,
)
from repro.experiments.figure2 import run_figure2, run_goal_sweep
from repro.workload.trace import TraceRecorder

from tests.golden_trace import (
    CONFIG,
    GOAL_RANGE,
    GOLDEN_PATH,
    INTERVALS,
    SEED,
    WARMUP_MS,
)


def _short_figure2(telemetry=None, recorder=None):
    return run_figure2(
        seed=SEED,
        intervals=INTERVALS,
        config=CONFIG,
        goal_range=GOAL_RANGE,
        warmup_ms=WARMUP_MS,
        recorder=recorder,
        telemetry=telemetry,
    )


def test_short_figure2_produces_parsing_artifacts(tmp_path):
    outdir = str(tmp_path / "tel")
    _short_figure2(telemetry=outdir)

    # JSONL trace: one JSON object per line, each with kind and time.
    trace_path = os.path.join(outdir, TRACE_FILE)
    with open(trace_path, "r", encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]
    assert records
    kinds = {r["kind"] for r in records}
    assert {"agent_report", "decision", "interval"} <= kinds
    assert all("t" in r for r in records)

    # Prometheus text exposition: TYPE lines plus name{labels} value.
    with open(os.path.join(outdir, METRICS_TEXT_FILE)) as fh:
        prom = fh.read().splitlines()
    assert any(line.startswith("# TYPE repro_") for line in prom)
    for line in prom:
        if line.startswith("#") or not line:
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)  # every sample value must parse
        assert name_part.startswith("repro_")

    # Chrome trace-event timeline (Perfetto-loadable).
    with open(os.path.join(outdir, TIMELINE_FILE)) as fh:
        timeline = json.load(fh)
    assert timeline["displayTimeUnit"] == "ms"
    events = timeline["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    assert "M" in phases  # process/thread metadata
    assert "X" in phases or "i" in phases
    assert all("ts" in e for e in events if e["ph"] != "M")

    # Metrics JSON dump.
    with open(os.path.join(outdir, METRICS_JSON_FILE)) as fh:
        metrics = json.load(fh)
    assert any(
        m["name"] == "repro_page_access_total"
        for m in metrics["metrics"]
    )


def test_golden_trace_bit_identical_with_telemetry(tmp_path):
    """Telemetry must not perturb RNG draws or event ordering."""
    golden = TraceRecorder.load(GOLDEN_PATH).records
    recorder = TraceRecorder()
    _short_figure2(telemetry=str(tmp_path / "tel"), recorder=recorder)
    assert recorder.records == golden


def test_module_flag_attaches_pipeline_without_exports():
    telemetry_mod.enable()
    try:
        data_on = _short_figure2()
    finally:
        telemetry_mod.disable()
    data_off = _short_figure2()
    assert data_on.observed_rt == data_off.observed_rt
    assert data_on.dedicated_bytes == data_off.dedicated_bytes


def _telemetry_tree(root):
    tree = {}
    for dirpath, dirnames, files in os.walk(root):
        dirnames.sort()
        for name in sorted(files):
            path = os.path.join(dirpath, name)
            with open(path, "rb") as fh:
                tree[os.path.relpath(path, root)] = fh.read()
    return tree


def _sweep(tmp_path, label, runner, jobs):
    outdir = str(tmp_path / label)
    data = run_goal_sweep(
        goals=[3.0, 6.0],
        seed=5,
        replicates=1,
        intervals=3,
        config=CONFIG,
        goal_range=GOAL_RANGE,
        warmup_ms=WARMUP_MS,
        jobs=jobs,
        runner=runner,
        telemetry=outdir,
    )
    points = [
        (p.goal_ms, p.observed_rt, p.dedicated_bytes, p.p95_rt_ms)
        for p in data.points
    ]
    return points, _telemetry_tree(outdir)


def test_fork_and_cold_telemetry_trees_identical(tmp_path):
    points_fork, tree_fork = _sweep(tmp_path, "fork", "fork", 1)
    points_cold, tree_cold = _sweep(tmp_path, "cold", "cold", 1)
    assert points_fork == points_cold
    assert tree_fork == tree_cold


def test_jobs_do_not_change_telemetry(tmp_path):
    points_1, tree_1 = _sweep(tmp_path, "j1", "cold", 1)
    points_2, tree_2 = _sweep(tmp_path, "j2", "cold", 2)
    assert points_1 == points_2
    assert tree_1 == tree_2


def test_event_pool_gauges_exported(tmp_path):
    """The engine's timeout free-list shows up as export-time gauges.

    Off by default: the gauges are sampled only when telemetry is
    attached and an exporter collects, so disabled runs pay nothing.
    """
    outdir = str(tmp_path / "tel")
    _short_figure2(telemetry=outdir)
    found = {}
    for dirpath, _, files in os.walk(outdir):
        if METRICS_JSON_FILE not in files:
            continue
        path = os.path.join(dirpath, METRICS_JSON_FILE)
        with open(path, "r", encoding="utf-8") as fh:
            for entry in json.load(fh)["metrics"]:
                if entry["name"].startswith("repro_event_pool"):
                    found[entry["name"]] = entry["value"]
    assert "repro_event_pool_recycled" in found
    # Any real run recycles timeouts, so the high-water mark is live.
    assert found["repro_event_pool_high_water"] > 0


# -- merge_point_dirs ordering and resilience --------------------------


def _point_dir(tmp_path, name, records):
    point = tmp_path / name
    point.mkdir()
    with open(point / TRACE_FILE, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return str(point)


def test_merge_sorts_by_time_then_point_then_sequence(tmp_path):
    """The documented merge order: (sim-time, point position, emit
    sequence), stable across runners."""
    from repro.telemetry.exporters import merge_point_dirs

    a = _point_dir(tmp_path, "a", [
        {"kind": "interval", "t": 2000.0},
        {"kind": "decision", "t": 2000.0, "seq_marker": "a-second"},
        {"kind": "interval", "t": 4000.0},
    ])
    b = _point_dir(tmp_path, "b", [
        {"kind": "interval", "t": 1000.0},
        {"kind": "interval", "t": 2000.0},
    ])
    outdir = str(tmp_path / "merged")
    paths = merge_point_dirs(outdir, [("a", a), ("b", b)])
    with open(paths["trace"], "r", encoding="utf-8") as fh:
        merged = [json.loads(line) for line in fh]
    assert [(r["t"], r["point"]) for r in merged] == [
        (1000.0, "b"),            # earliest sim-time wins
        (2000.0, "a"),            # tie at t=2000: point order a < b...
        (2000.0, "a"),            # ...then a's own emit sequence
        (2000.0, "b"),
        (4000.0, "a"),
    ]
    assert merged[2]["seq_marker"] == "a-second"


def test_merge_skips_missing_point_dir_with_warning(tmp_path):
    from repro.telemetry.exporters import merge_point_dirs

    a = _point_dir(tmp_path, "a", [{"kind": "interval", "t": 1.0}])
    missing = str(tmp_path / "never-written")
    outdir = str(tmp_path / "merged")
    with pytest.warns(RuntimeWarning, match="killed sweep"):
        paths = merge_point_dirs(
            outdir, [("a", a), ("gone", missing)]
        )
    with open(paths["manifest"], "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    assert manifest[0]["records"] == 1 and "skipped" not in manifest[0]
    assert manifest[1]["skipped"] == "missing trace.jsonl"
    with open(paths["trace"], "r", encoding="utf-8") as fh:
        assert len(fh.readlines()) == 1


def test_merge_skips_torn_trace_with_warning(tmp_path):
    from repro.telemetry.exporters import merge_point_dirs

    a = _point_dir(tmp_path, "a", [{"kind": "interval", "t": 1.0}])
    torn = tmp_path / "torn"
    torn.mkdir()
    (torn / TRACE_FILE).write_text(
        json.dumps({"kind": "interval", "t": 2.0}) + "\n"
        + '{"kind": "interval", "t": 3'  # killed mid-line
    )
    outdir = str(tmp_path / "merged")
    with pytest.warns(RuntimeWarning, match="unparsable"):
        paths = merge_point_dirs(
            outdir, [("a", a), ("torn", str(torn))]
        )
    with open(paths["trace"], "r", encoding="utf-8") as fh:
        merged = [json.loads(line) for line in fh]
    # The torn point is dropped whole; the healthy one survives.
    assert [r["point"] for r in merged] == ["a"]
