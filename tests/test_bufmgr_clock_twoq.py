"""Unit + property tests for the CLOCK and 2Q replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bufmgr.clock import ClockPool
from repro.bufmgr.twoq import TwoQPool


# -- CLOCK ---------------------------------------------------------------


def test_clock_evicts_unreferenced_first():
    pool = ClockPool(capacity=2)
    pool.insert(1)
    pool.insert(2)
    pool.touch(1)  # give page 1 a second chance
    assert pool.insert(3) == [2]
    assert 1 in pool


def test_clock_sweep_clears_bits():
    pool = ClockPool(capacity=2)
    pool.insert(1)
    pool.insert(2)
    pool.touch(1)
    pool.touch(2)
    # All referenced: the hand sweeps, clears both bits, then evicts
    # the first page it revisits (page 1, the oldest).
    assert pool.insert(3) == [1]


def test_clock_approximates_lru_on_simple_pattern():
    pool = ClockPool(capacity=3)
    for page in (1, 2, 3):
        pool.insert(page)
    pool.touch(1)
    pool.touch(3)
    assert pool.insert(4) == [2]


def test_clock_resize_and_remove():
    pool = ClockPool(capacity=4)
    for page in (1, 2, 3, 4):
        pool.insert(page)
    pool.touch(4)
    evicted = pool.resize(2)
    assert len(evicted) == 2
    assert len(pool) == 2
    assert pool.remove(next(iter(pool.page_ids())))


# -- 2Q ---------------------------------------------------------------


def test_twoq_first_touch_goes_to_probation():
    pool = TwoQPool(capacity=8)
    pool.insert(1)
    assert 1 in pool
    assert pool.hot_pages == 0


def test_twoq_ghost_rereference_promotes_to_hot():
    pool = TwoQPool(capacity=4, in_fraction=0.25, out_fraction=1.0)
    # Fill probation beyond its share so page 1 becomes a ghost.
    evicted = []
    for page in (1, 2, 3, 4, 5):
        evicted += pool.insert(page)
    assert 1 in evicted
    assert pool.ghost_pages >= 1
    pool.insert(1)  # remembered -> admitted hot
    assert pool.hot_pages == 1


def test_twoq_scan_does_not_pollute_hot_queue():
    """A long one-touch scan must leave the hot queue untouched."""
    pool = TwoQPool(capacity=8, in_fraction=0.25, out_fraction=0.5)
    # Establish hot pages 100, 101 via ghost re-reference.
    for page in (100, 101):
        pool.insert(page)
    for page in range(1, 10):
        pool.insert(page)            # pushes 100/101 out through A1out
    for page in (100, 101):
        pool.insert(page)            # back in, now hot
    hot_before = pool.hot_pages
    assert hot_before == 2
    for page in range(200, 260):     # the scan
        pool.insert(page)
    assert 100 in pool and 101 in pool
    assert pool.hot_pages == hot_before


def test_twoq_probation_hits_do_not_promote():
    pool = TwoQPool(capacity=8)
    pool.insert(1)
    pool.touch(1)
    assert pool.hot_pages == 0


def test_twoq_parameter_validation():
    with pytest.raises(ValueError):
        TwoQPool(capacity=4, in_fraction=0.0)
    with pytest.raises(ValueError):
        TwoQPool(capacity=4, out_fraction=0.0)


@pytest.mark.parametrize("pool_cls", [ClockPool, TwoQPool])
def test_zero_capacity(pool_cls):
    pool = pool_cls(0)
    assert pool.insert(1) == [1]
    assert len(pool) == 0


@given(
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=0, max_value=40),
             min_size=1, max_size=300),
)
@settings(max_examples=80)
def test_property_capacity_and_consistency(capacity, pages):
    """Both policies: size bound and membership/iteration agreement."""
    for pool in (ClockPool(capacity), TwoQPool(capacity)):
        present = set()
        for page in pages:
            evicted = pool.insert(page)
            present.add(page)
            present -= set(evicted)
            assert len(pool) <= capacity
            assert present == set(pool.page_ids())
            for cached in present:
                assert cached in pool


def test_manager_accepts_new_policies():
    from repro.bufmgr.costs import CostObserver
    from repro.bufmgr.heat import GlobalHeatRegistry
    from repro.bufmgr.manager import NodeBufferManager

    for policy in ("clock", "2q"):
        manager = NodeBufferManager(
            node_id=0, total_bytes=8 * 4096, page_size=4096,
            clock=lambda: 0.0, global_heat=GlobalHeatRegistry(),
            costs=CostObserver(), is_last_copy=lambda p, n: False,
            policy=policy,
        )
        manager.set_dedicated_bytes(1, 2 * 4096)
        for page in range(6):
            hit, _ = manager.probe(page, 1)
            if not hit:
                manager.admit(page, 1)
        assert manager.cached_pages()
