"""Tests for the fault layer and the injector process."""

from repro.cluster.cluster import Cluster
from repro.faults import FaultInjector, FaultLayer, FaultSchedule
from repro.sim.rng import RandomStreams


def _run_with(fast_config, spec: str, until: float, seed: int = 0):
    cluster = Cluster(fast_config, seed=seed)
    injector = FaultInjector(cluster, FaultSchedule.parse(spec))
    injector.start()
    cluster.env.run(until=until)
    return cluster, injector


# -- FaultLayer --------------------------------------------------------


def test_layer_idle_draws_no_randomness():
    rng = RandomStreams(0)
    layer = FaultLayer(rng)
    state = rng.stream("faults/drops").getstate()
    for _ in range(50):
        assert not layer.should_drop()
    assert rng.stream("faults/drops").getstate() == state


def test_layer_drop_probability_extremes():
    layer = FaultLayer(RandomStreams(0))
    layer.drop_p = 1.0
    assert all(layer.should_drop() for _ in range(20))
    layer.drop_p = 0.0
    assert not any(layer.should_drop() for _ in range(20))


def test_down_delay_counts_down_and_self_clears():
    layer = FaultLayer(RandomStreams(0))
    layer.mark_down(1, until_ms=500.0)
    assert layer.down_delay(1, now=100.0) == 400.0
    assert layer.down_delay(0, now=100.0) == 0.0
    assert layer.down_delay(1, now=600.0) == 0.0
    assert 1 not in layer._down_until  # entry removed once elapsed


def test_coordinator_down_state_counts_crashes_and_expires():
    layer = FaultLayer(RandomStreams(0))
    assert not layer.coordinator_down(0.0)
    assert layer.coord_crashes == 0
    layer.mark_coordinator_down(until_ms=500.0)
    assert layer.coord_crashes == 1
    assert layer.coordinator_down(499.0)
    assert not layer.coordinator_down(500.0)
    # A second, shorter outage still counts; the longer window wins.
    layer.mark_coordinator_down(until_ms=800.0)
    layer.mark_coordinator_down(until_ms=600.0)
    assert layer.coord_crashes == 3
    assert layer.coordinator_down(700.0)


def test_partition_state_per_node_and_self_clears():
    layer = FaultLayer(RandomStreams(0))
    layer.mark_partitioned((0, 2), until_ms=400.0)
    assert layer.partitioned(0, now=100.0)
    assert not layer.partitioned(1, now=100.0)
    assert layer.partitioned_nodes(100.0) == (0, 2)
    assert layer.partitioned_nodes(400.0) == ()
    assert not layer.partitioned(0, now=500.0)
    assert not layer._partition_until  # entries removed once elapsed


# -- injector: state transitions ---------------------------------------


def test_crash_wipes_cache_and_marks_node_down(fast_config):
    cluster = Cluster(fast_config, seed=0)

    def reader():
        for page in range(0, 30, 3):  # pages homed at node 0
            yield from cluster.access_page(0, page, 0)

    cluster.env.process(reader())
    injector = FaultInjector(
        cluster, FaultSchedule.parse("crash@4000:node=0:restart=1500")
    )
    injector.start()
    cluster.env.run(until=4500.0)
    assert cluster.nodes[0].buffers.cached_pages() == []
    assert injector.layer.down_delay(0, 4500.0) == 1000.0
    [fault] = injector.injected
    assert fault.kind == "crash"
    assert fault.node == 0
    assert fault.dropped_pages > 0


def test_netloss_episode_sets_and_restores_drop_probability(fast_config):
    cluster, injector = _run_with(
        fast_config, "netloss@1000:dur=2000:p=0.4", until=1500.0
    )
    assert injector.layer.drop_p == 0.4
    cluster.env.run(until=3500.0)
    assert injector.layer.drop_p == 0.0


def test_netdelay_episode_adds_and_removes_latency(fast_config):
    cluster, injector = _run_with(
        fast_config, "netdelay@1000:dur=1000:extra=2.5", until=1500.0
    )
    assert injector.layer.extra_ms == 2.5
    assert cluster.network.faults is injector.layer
    cluster.env.run(until=2500.0)
    assert injector.layer.extra_ms == 0.0


def test_diskslow_episode_scales_and_restores_service(fast_config):
    cluster, injector = _run_with(
        fast_config, "diskslow@1000:node=2:dur=1000:factor=4", until=1500.0
    )
    assert cluster.nodes[2].disk.fault_factor == 4.0
    assert cluster.nodes[0].disk.fault_factor == 1.0
    cluster.env.run(until=2500.0)
    assert cluster.nodes[2].disk.fault_factor == 1.0


def test_empty_schedule_spawns_no_process(fast_config):
    cluster = Cluster(fast_config, seed=0)
    injector = FaultInjector(cluster, FaultSchedule([]))
    injector.start()
    cluster.env.run()
    assert cluster.env.now == 0.0
    assert injector.injected == []
    # The layer is still attached (hot paths see it, but it is inert).
    assert cluster.faults is injector.layer


def test_injection_ledger_is_deterministic(fast_config):
    spec = (
        "crash:every=3000:node=any:restart=500;"
        "netloss@5000:dur=1000:p=0.2"
    )
    _, first = _run_with(fast_config, spec, until=12_000.0, seed=5)
    _, second = _run_with(fast_config, spec, until=12_000.0, seed=5)
    assert first.injected == second.injected
    _, other = _run_with(fast_config, spec, until=12_000.0, seed=6)
    assert len(other.injected) == len(first.injected)


def test_coordcrash_event_marks_coordinator_down(fast_config):
    cluster, injector = _run_with(
        fast_config, "coordcrash@1000:dur=2000", until=1500.0
    )
    assert injector.layer.coordinator_down(1500.0)
    assert injector.layer.coord_crashes == 1
    [fault] = injector.injected
    assert fault.kind == "coordcrash"
    assert fault.node is None
    cluster.env.run(until=3500.0)
    assert not injector.layer.coordinator_down(3500.0)


def test_partition_event_cuts_listed_nodes(fast_config):
    cluster, injector = _run_with(
        fast_config, "partition@1000:nodes=0,1:dur=2000", until=1500.0
    )
    assert injector.layer.partitioned_nodes(1500.0) == (0, 1)
    [fault] = injector.injected
    assert fault.kind == "partition"
    assert fault.nodes == (0, 1)
    cluster.env.run(until=3500.0)
    assert injector.layer.partitioned_nodes(3500.0) == ()


def test_crashed_node_access_waits_out_the_downtime(fast_config):
    cluster = Cluster(fast_config, seed=0)
    injector = FaultInjector(
        cluster, FaultSchedule.parse("crash@1000:node=0:restart=2000")
    )
    injector.start()
    done = {}

    def reader():
        yield cluster.env.timeout(1100.0)  # node 0 is down until 3000
        yield from cluster.access_page(0, 0, 0)
        done["at"] = cluster.env.now

    cluster.env.process(reader())
    cluster.env.run(until=10_000.0)
    assert done["at"] >= 3000.0


def test_disk_slowdown_stretches_read_times(fast_config):
    plain = Cluster(fast_config, seed=0)
    slowed = Cluster(fast_config, seed=0)
    slowed.nodes[0].disk.fault_factor = 5.0
    times = {}

    def read_on(cluster, key):
        def proc():
            yield from cluster.nodes[0].disk.read(fast_config.page_size)
            times[key] = cluster.env.now
        return proc

    plain.env.process(read_on(plain, "plain")())
    slowed.env.process(read_on(slowed, "slowed")())
    plain.env.run()
    slowed.env.run()
    assert times["slowed"] > 4.0 * times["plain"]
