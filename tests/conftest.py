"""Shared fixtures: scaled-down configurations that keep DES tests fast.

The fast config shrinks the database and buffers by ~8x and shortens
the observation interval; ratios (cache/database, pages per op) stay
close to the paper's so behaviours transfer.
"""

from __future__ import annotations

import pytest

from repro.cluster.config import NodeParameters, SystemConfig
from repro.workload.spec import ClassSpec, WorkloadSpec, partition_pages


@pytest.fixture
def fast_config() -> SystemConfig:
    """3 nodes, 256 KB cache each, 400-page database, 2 s intervals."""
    return SystemConfig(
        num_nodes=3,
        num_pages=400,
        node=NodeParameters(buffer_bytes=256 * 1024),
        observation_interval_ms=2000.0,
    )


@pytest.fixture
def fast_workload(fast_config) -> WorkloadSpec:
    """One goal class + no-goal class on disjoint halves of the DB."""
    nogoal_pages, goal_pages = partition_pages(fast_config.num_pages, 2)
    return WorkloadSpec(
        classes=[
            ClassSpec(
                class_id=0,
                goal_ms=None,
                pages=nogoal_pages,
                pages_per_op=4,
                arrival_rate_per_node=0.02,
            ),
            ClassSpec(
                class_id=1,
                goal_ms=5.0,
                pages=goal_pages,
                pages_per_op=4,
                arrival_rate_per_node=0.02,
            ),
        ]
    )
