"""Property tests pinning the MVA solvers against independent theory.

Two anchors, per the analytic-fast-path acceptance criteria:

* exact MVA must reproduce the machine-repairman (M/M/1//N) closed
  form — an independent derivation via the product-form solution — on
  any single-class single-station network;
* Schweitzer/Bard must satisfy the exact queueing-law invariants on
  any topology, and stay within 5% of exact MVA at moderate
  (≤0.7) bottleneck utilization on bridge-shaped networks — its
  accuracy is regime-dependent, degrading to ~25% at saturation,
  which the bridge's saturation guard keeps out of reach.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.analytic.mva import (
    DELAY,
    QUEUE,
    ClosedNetwork,
    Station,
    exact_mva,
    machine_repairman,
    schweitzer_mva,
)

#: Service demands and think times drawn over two orders of magnitude
#: so both near-idle and contended stations appear.
demand_st = st.floats(min_value=0.1, max_value=10.0)
think_st = st.floats(min_value=5.0, max_value=500.0)


@settings(max_examples=60, deadline=None)
@given(
    population=st.integers(min_value=1, max_value=25),
    demand=demand_st,
    think=think_st,
)
def test_exact_mva_matches_machine_repairman(population, demand, think):
    net = ClosedNetwork(
        stations=(Station("s"),),
        class_names=("only",),
        demands=((demand,),),
        population=(population,),
        think_ms=(think,),
    )
    sol = exact_mva(net)
    response, throughput = machine_repairman(population, demand, think)
    # The closed form computes R = N/X - Z, which cancels
    # catastrophically when D << Z; scale the floor accordingly.
    assert sol.response_ms[0] == pytest.approx(
        response, rel=1e-9, abs=1e-11 * (response + think)
    )
    assert sol.throughput_per_ms[0] == pytest.approx(
        throughput, rel=1e-9
    )
    # Sanity bounds any closed network obeys: R >= D, X <= 1/D,
    # N = X * (R + Z) (Little's law).
    assert sol.response_ms[0] >= demand - 1e-12
    assert sol.throughput_per_ms[0] <= 1.0 / demand + 1e-12
    assert sol.throughput_per_ms[0] * (
        sol.response_ms[0] + think
    ) == pytest.approx(population, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    num_stations=st.integers(min_value=1, max_value=4),
    num_classes=st.integers(min_value=1, max_value=3),
)
def test_schweitzer_solutions_obey_queueing_laws(
    data, num_stations, num_classes
):
    # Accuracy is regime-dependent (see the grid test below), but the
    # fixed point must satisfy the exact-theorem invariants on ANY
    # topology: no class responds faster than its raw demand, and
    # Little's law closes every class's cycle.
    stations = tuple(
        Station(
            f"s{i}",
            kind=data.draw(
                st.sampled_from([QUEUE, QUEUE, DELAY]), label=f"kind{i}"
            ),
        )
        for i in range(num_stations)
    )
    demands = tuple(
        tuple(
            data.draw(demand_st, label=f"d{c},{s}")
            for s in range(num_stations)
        )
        for c in range(num_classes)
    )
    population = tuple(
        data.draw(
            st.integers(min_value=1, max_value=6), label=f"n{c}"
        )
        for c in range(num_classes)
    )
    think = tuple(
        data.draw(think_st, label=f"z{c}") for c in range(num_classes)
    )
    net = ClosedNetwork(
        stations=stations,
        class_names=tuple(f"c{c}" for c in range(num_classes)),
        demands=demands,
        population=population,
        think_ms=think,
    )
    approx = schweitzer_mva(net)
    for c in range(num_classes):
        total_demand = sum(demands[c])
        assert approx.response_ms[c] >= total_demand - 1e-9
        assert approx.throughput_per_ms[c] * (
            approx.response_ms[c] + think[c]
        ) == pytest.approx(population[c], rel=1e-6)


def _bridge_shaped_network(classes, stations, pop, asymmetry):
    """Balanced-population network with think = 64x demand, as the
    bridge's slack factor produces (`repro.analytic.bridge`)."""
    demands = tuple(
        tuple(
            (1.0 + (asymmetry - 1.0) * c / max(1, classes - 1))
            * (0.5 + 0.5 * s)
            for s in range(stations)
        )
        for c in range(classes)
    )
    return ClosedNetwork(
        stations=tuple(Station(f"s{i}") for i in range(stations)),
        class_names=tuple(f"c{c}" for c in range(classes)),
        demands=demands,
        population=(pop,) * classes,
        think_ms=tuple(64.0 * sum(d) for d in demands),
    )


def test_schweitzer_accuracy_tracks_utilization():
    # The empirical accuracy contract the prescreen relies on, swept
    # over bridge-shaped networks from idle to saturation: within 5%
    # of exact below 0.7 bottleneck utilization (observed worst ~3%),
    # degrading to ~25% only as the bottleneck saturates — which the
    # bridge's open-system saturation guard rejects before solving.
    checked_moderate = 0
    for classes in (1, 2, 3):
        for stations in (1, 2, 3):
            for pop in (4, 8, 16, 32, 48):
                for asymmetry in (1.0, 4.0):
                    net = _bridge_shaped_network(
                        classes, stations, pop, asymmetry
                    )
                    exact = exact_mva(net)
                    approx = schweitzer_mva(net)
                    util = exact.bottleneck()[1]
                    worst = max(
                        abs(approx.response_ms[c] - exact.response_ms[c])
                        / exact.response_ms[c]
                        for c in range(classes)
                    )
                    if util <= 0.7:
                        checked_moderate += 1
                        assert worst <= 0.05, (
                            f"{classes}x{stations} pop={pop} "
                            f"util={util:.2f}: {worst:.1%}"
                        )
                    else:
                        assert worst <= 0.25, (
                            f"{classes}x{stations} pop={pop} "
                            f"util={util:.2f}: {worst:.1%}"
                        )
    assert checked_moderate >= 50  # the 5% claim is actually exercised


@settings(max_examples=30, deadline=None)
@given(
    population=st.integers(min_value=1, max_value=15),
    demand=demand_st,
    think=think_st,
    extra=st.integers(min_value=1, max_value=10),
)
def test_exact_response_monotone_in_population(
    population, demand, think, extra
):
    # More customers can only slow each other down.
    def response(n):
        net = ClosedNetwork(
            stations=(Station("s"),),
            class_names=("only",),
            demands=((demand,),),
            population=(n,),
            think_ms=(think,),
        )
        return exact_mva(net).response_ms[0]

    assert response(population + extra) >= response(population) - 1e-9
