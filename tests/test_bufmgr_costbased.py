"""Unit tests for the cost-based benefit replacement (§6)."""

import pytest

from repro.bufmgr.costbased import BenefitModel, CostBasedPool
from repro.bufmgr.costs import AccessLevel, CostObserver
from repro.bufmgr.heat import GlobalHeatRegistry, HeatTracker


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_model(last_copies=(), node_id=0):
    clock = ManualClock()
    local = HeatTracker(k=2)
    registry = GlobalHeatRegistry(k=2)
    costs = CostObserver()
    model = BenefitModel(
        node_id=node_id,
        local_heat=local,
        global_heat=registry,
        costs=costs,
        is_last_copy=lambda page, node: page in last_copies,
        clock=clock,
    )
    return model, clock, local, registry, costs


def test_benefit_zero_for_cold_page():
    model, clock, *_ = make_model()
    clock.now = 100.0
    assert model.benefit(1) == 0.0


def test_benefit_grows_with_local_heat():
    model, clock, local, _, _ = make_model()
    local.record(1, 40.0)
    local.record(1, 50.0)   # heat = 2 / 10
    local.record(2, 0.0)
    local.record(2, 50.0)   # heat = 2 / 50
    clock.now = 50.0
    assert model.benefit(1) > model.benefit(2)


def test_last_copy_priced_higher():
    """Dropping the last cached copy forces disk accesses system-wide."""
    model, clock, local, registry, _ = make_model(last_copies={1})
    for page in (1, 2):
        local.record(page, 0.0)
        local.record(page, 10.0)
        registry.record(page, 0.0)
        registry.record(page, 10.0)
    clock.now = 10.0
    assert model.benefit(1) > model.benefit(2)


def test_benefit_uses_measured_costs():
    model, clock, local, _, costs = make_model()
    local.record(1, 0.0)
    local.record(1, 10.0)
    clock.now = 10.0
    before = model.benefit(1)
    # Remote accesses got much more expensive -> keeping pages locally
    # is worth more.
    for _ in range(50):
        costs.observe(AccessLevel.REMOTE, 5.0)
    after = model.benefit(1)
    assert after > before


def test_pool_evicts_lowest_benefit():
    model, clock, local, _, _ = make_model()
    pool = CostBasedPool(capacity=2, model=model)
    # Page 10 hot, page 20 cold.
    local.record(10, 0.0)
    local.record(10, 1.0)
    local.record(20, 0.0)
    clock.now = 50.0
    pool.insert(10)
    pool.insert(20)
    pool.touch(10)
    pool.touch(20)
    evicted = pool.insert(30)
    assert evicted == [20]
    assert 10 in pool


def test_pool_revalidates_stale_entries():
    """A page whose heat collapsed after insertion must become victim."""
    model, clock, local, _, _ = make_model()
    pool = CostBasedPool(capacity=2, model=model, revalidate=2)
    local.record(1, 0.0)
    local.record(1, 1.0)
    local.record(2, 0.0)
    local.record(2, 1.0)
    clock.now = 1.0
    pool.insert(1)
    pool.insert(2)
    # Later, page 2 is reheated; page 1 cools down.
    clock.now = 1000.0
    local.record(2, 999.0)
    local.record(2, 1000.0)
    pool.touch(2)
    evicted = pool.insert(3)
    assert evicted == [1]


def test_pool_heap_compaction_keeps_consistency():
    model, clock, local, _, _ = make_model()
    pool = CostBasedPool(capacity=8, model=model)
    for round_ in range(40):
        clock.now = float(round_)
        for page in range(16):
            if page in pool:
                pool.touch(page)
            else:
                pool.insert(page)
    assert len(pool) == 8
    assert set(pool.page_ids()) <= set(range(16))


def test_benefit_of_requires_cached_page():
    model, *_ = make_model()
    pool = CostBasedPool(capacity=2, model=model)
    with pytest.raises(KeyError):
        pool.benefit_of(1)


def test_revalidate_must_be_positive():
    model, *_ = make_model()
    with pytest.raises(ValueError):
        CostBasedPool(capacity=2, model=model, revalidate=0)


def test_touch_with_falling_benefit_surfaces_page():
    """A cooled page must not hide behind its stale high-priced entry.

    ``touch`` defers heap pushes when the estimate rises (the stale
    lower-priced entry surfaces no later than it should), but a falling
    estimate must enter the heap immediately — otherwise, with a small
    ``revalidate`` budget, the victim search never reaches the stale
    high-priced entry and the cold page escapes eviction.
    """
    model, clock, local, _, _ = make_model()
    pool = CostBasedPool(capacity=2, model=model, revalidate=1)
    local.record(1, 9.0)
    local.record(1, 10.0)   # page 1 very hot at insert time
    local.record(2, 0.0)
    local.record(2, 10.0)   # page 2 lukewarm
    clock.now = 10.0
    pool.insert(1)
    pool.insert(2)
    # Much later page 2 is re-heated while page 1 went cold.
    clock.now = 1000.0
    local.record(2, 999.0)
    local.record(2, 1000.0)
    pool.touch(2)           # rising estimate: deferred, no heap push
    pool.touch(1)           # falling estimate: pushed immediately
    assert pool.insert(3) == [1]
    assert 2 in pool and 3 in pool
