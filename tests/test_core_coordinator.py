"""Unit tests for the per-class coordinator (phases b, c, d)."""

import numpy as np
import pytest

from repro.core.agent import AgentReport
from repro.core.coordinator import Coordinator
from repro.core.tolerance import GoalTolerance

MB = 1024 * 1024


def make_coordinator(goal_ms=10.0, num_nodes=3, **kwargs):
    kwargs.setdefault(
        "tolerance", GoalTolerance(relative_floor=0.1, low_side_slack=0.3)
    )
    return Coordinator(
        class_id=1,
        node_sizes=[2 * MB] * num_nodes,
        goal_ms=goal_ms,
        page_size=4096,
        **kwargs,
    )


def report(node_id, rt, rate=0.01, class_id=1, time=0.0):
    return AgentReport(
        node_id=node_id,
        class_id=class_id,
        arrivals=int(rate * 5000),
        completions=int(rate * 5000),
        mean_response_ms=rt,
        arrival_rate=rate,
        time=time,
    )


def feed(coordinator, rts, nogoal_rts=None, time=0.0):
    for node_id, rt in enumerate(rts):
        coordinator.receive_goal_report(report(node_id, rt, time=time))
    if nogoal_rts is not None:
        for node_id, rt in enumerate(nogoal_rts):
            coordinator.receive_nogoal_report(
                report(node_id, rt, class_id=0, time=time)
            )


def test_coordinator_requires_goal_class():
    with pytest.raises(ValueError):
        Coordinator(class_id=0, node_sizes=[MB], goal_ms=1.0)


def test_no_reports_is_satisfied_noop():
    coordinator = make_coordinator()
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.satisfied
    assert decision.observed_rt is None
    assert decision.new_allocation is None


def test_goal_met_within_tolerance_takes_no_action():
    coordinator = make_coordinator(goal_ms=10.0)
    feed(coordinator, [10.2, 9.9, 10.1], [1.0, 1.0, 1.0])
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.satisfied
    assert decision.new_allocation is None


def test_violation_triggers_warmup_before_window_ready():
    coordinator = make_coordinator(goal_ms=10.0, warmup_fraction=0.25)
    feed(coordinator, [20.0, 20.0, 20.0], [1.0, 1.0, 1.0])
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert not decision.satisfied
    assert decision.mechanism == "warmup"
    assert decision.new_allocation == pytest.approx([0.5 * MB] * 3)


def test_warmup_steps_generate_independent_points():
    """Successive warm-up proposals must differ along rotating axes so
    every iteration adds a linearly independent measure point."""
    coordinator = make_coordinator(goal_ms=5.0, num_nodes=3)
    allocations = []
    for i in range(4):
        feed(coordinator, [20.0] * 3, [1.0] * 3, time=float(i))
        decision = coordinator.evaluate(
            now=float(i), other_dedicated=[0, 0, 0]
        )
        assert decision.new_allocation is not None
        coordinator.receive_granted(list(decision.new_allocation))
        allocations.append(np.array(decision.new_allocation))
    assert coordinator.window.ready(now=3.0)


def test_lp_used_once_window_ready():
    coordinator = make_coordinator(goal_ms=10.0, settle_intervals=0)
    # Pre-fill the window with a clean linear response surface:
    # rt = 25 - 5/MB * total_alloc (per-node slope equal).
    allocs = [
        np.zeros(3),
        np.array([MB, 0.0, 0.0]),
        np.array([0.0, MB, 0.0]),
        np.array([0.0, 0.0, MB]),
    ]
    for i, alloc in enumerate(allocs):
        rt = 25.0 - 5.0 * alloc.sum() / MB
        coordinator.window.observe(alloc, rt, 1.0 + alloc.sum() / MB,
                                   time=float(i))
    coordinator.receive_granted([0, 0, MB])
    feed(coordinator, [20.0] * 3, [1.0] * 3, time=5.0)
    decision = coordinator.evaluate(now=5.0, other_dedicated=[0, 0, 0])
    assert decision.mechanism == "lp"
    # Goal 10 needs 3 MB total under the surface rt = 25 - 5*total.
    assert decision.new_allocation.sum() == pytest.approx(
        3 * MB, rel=0.01
    )


def _fill_window(coordinator):
    """Install a clean linear response surface into the window."""
    allocs = [
        np.zeros(3),
        np.array([MB, 0.0, 0.0]),
        np.array([0.0, MB, 0.0]),
        np.array([0.0, 0.0, MB]),
    ]
    for i, alloc in enumerate(allocs):
        rt = 25.0 - 5.0 * alloc.sum() / MB
        coordinator.window.observe(
            alloc, rt, 1.0 + alloc.sum() / MB, time=float(i)
        )


def test_settle_skips_measurement_after_lp_growth():
    coordinator = make_coordinator(goal_ms=10.0, settle_intervals=1)
    _fill_window(coordinator)
    coordinator.receive_granted([0, 0, MB])
    feed(coordinator, [20.0] * 3, [1.0] * 3)
    first = coordinator.evaluate(now=5.0, other_dedicated=[0, 0, 0])
    assert first.mechanism == "lp"
    assert first.new_allocation is not None
    coordinator.receive_granted(list(first.new_allocation))
    points_before = len(coordinator.window)
    feed(coordinator, [15.0] * 3, [1.0] * 3, time=6.0)
    second = coordinator.evaluate(now=6.0, other_dedicated=[0, 0, 0])
    assert second.new_allocation is None       # settling
    assert len(coordinator.window) == points_before
    feed(coordinator, [15.0] * 3, [1.0] * 3, time=7.0)
    third = coordinator.evaluate(now=7.0, other_dedicated=[0, 0, 0])
    assert third.new_allocation is not None    # active again


def test_warmup_repartitions_do_not_settle():
    coordinator = make_coordinator(goal_ms=10.0, settle_intervals=1)
    feed(coordinator, [20.0] * 3, [1.0] * 3)
    first = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert first.mechanism == "warmup"
    coordinator.receive_granted(list(first.new_allocation))
    feed(coordinator, [18.0] * 3, [1.0] * 3, time=1.0)
    second = coordinator.evaluate(now=1.0, other_dedicated=[0, 0, 0])
    assert second.new_allocation is not None   # no settling pause


def test_shrink_damping_limits_reduction():
    coordinator = make_coordinator(goal_ms=10.0, shrink_damping=0.5)
    coordinator.receive_granted([MB, MB, MB])
    proposal = np.zeros(3)
    damped = coordinator._damp_shrink(proposal)
    assert damped == pytest.approx([0.5 * MB] * 3)


def test_growth_not_damped():
    coordinator = make_coordinator(shrink_damping=0.5)
    coordinator.receive_granted([0, 0, 0])
    proposal = np.array([MB, MB, MB], dtype=float)
    assert coordinator._damp_shrink(proposal) is proposal


def test_set_goal_resets_tolerance():
    coordinator = make_coordinator(goal_ms=10.0)
    coordinator.tolerance.record_stable_interval(10.0)
    coordinator.tolerance.record_stable_interval(10.0)
    coordinator.tolerance.record_stable_interval(10.0)
    assert coordinator.tolerance.calibrated
    coordinator.set_goal(20.0)
    assert coordinator.goal_ms == 20.0
    assert not coordinator.tolerance.calibrated
    with pytest.raises(ValueError):
        coordinator.set_goal(0.0)


def test_weighted_rt_uses_arrival_rates():
    coordinator = make_coordinator()
    coordinator.receive_goal_report(report(0, rt=10.0, rate=0.03))
    coordinator.receive_goal_report(report(1, rt=20.0, rate=0.01))
    assert coordinator._weighted_rt(coordinator.goal_reports) == (
        pytest.approx(12.5)
    )


def test_nodes_without_completions_ignored_in_weighting():
    coordinator = make_coordinator()
    coordinator.receive_goal_report(report(0, rt=10.0, rate=0.01))
    empty = AgentReport(
        node_id=1, class_id=1, arrivals=0, completions=0,
        mean_response_ms=0.0, arrival_rate=0.0, time=0.0,
    )
    coordinator.receive_goal_report(empty)
    assert coordinator._weighted_rt(coordinator.goal_reports) == (
        pytest.approx(10.0)
    )


def test_allocation_respects_other_classes_memory():
    coordinator = make_coordinator(goal_ms=5.0)
    feed(coordinator, [20.0] * 3, [1.0] * 3)
    decision = coordinator.evaluate(
        now=0.0, other_dedicated=[2 * MB, 0, 0]
    )
    # Node 0 is fully taken by another class -> nothing allocated there.
    assert decision.new_allocation[0] == 0.0


def test_allocation_rounded_to_pages():
    coordinator = make_coordinator(goal_ms=5.0)
    feed(coordinator, [20.0] * 3, [1.0] * 3)
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    for value in decision.new_allocation:
        assert value % 4096 == 0
