"""Unit tests for the CPU, disk, and network device models."""

import pytest

from repro.cluster.config import (
    CpuParameters,
    DiskParameters,
    NetworkParameters,
)
from repro.cluster.cpu import Cpu
from repro.cluster.disk import Disk
from repro.cluster.messages import MessageKind, message_size
from repro.cluster.network import Network
from repro.sim.engine import Environment


def test_cpu_consume_takes_service_time():
    env = Environment()
    cpu = Cpu(env, CpuParameters(mips=100.0))
    done = []

    def proc():
        yield from cpu.consume(100_000)  # 1 ms at 100 MIPS
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(1.0)]


def test_cpu_requests_queue_fcfs():
    env = Environment()
    cpu = Cpu(env, CpuParameters(mips=100.0))
    done = []

    def proc(name):
        yield from cpu.consume(100_000)
        done.append((name, env.now))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_disk_read_takes_access_time():
    env = Environment()
    disk = Disk(env, DiskParameters(avg_seek_ms=4.0, avg_rotational_ms=2.0,
                                    transfer_mb_per_s=20.0))
    done = []

    def proc():
        yield from disk.read(4096)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(6.2048, rel=1e-3)]
    assert disk.reads == 1
    assert disk.service_stats.mean == pytest.approx(6.2048, rel=1e-3)


def test_disk_contention_queues():
    env = Environment()
    disk = Disk(env, DiskParameters(avg_seek_ms=5.0, avg_rotational_ms=0.0,
                                    transfer_mb_per_s=1000.0))
    done = []

    def proc():
        yield from disk.read(0)
        done.append(env.now)

    env.process(proc())
    env.process(proc())
    env.run()
    assert done[1] == pytest.approx(10.0, rel=1e-3)
    assert disk.mean_queue_wait == pytest.approx(2.5, rel=1e-3)


def test_network_transfer_accounts_bytes():
    env = Environment()
    net = Network(env, NetworkParameters())

    def proc():
        yield from net.send_message(MessageKind.PAGE_REQUEST)
        yield from net.send_message(MessageKind.PAGE_SHIP, page_size=4096)

    env.process(proc())
    env.run()
    acc = net.accounting
    assert acc.messages_by_kind[MessageKind.PAGE_REQUEST] == 1
    assert acc.bytes_by_kind[MessageKind.PAGE_SHIP] == message_size(
        MessageKind.PAGE_SHIP, 4096
    )
    assert acc.total_bytes == 64 + 4096 + 64


def test_network_is_shared_medium():
    env = Environment()
    net = Network(env, NetworkParameters(bandwidth_mbit_per_s=100.0,
                                         latency_ms=0.0))
    done = []

    def proc():
        yield from net.transfer(MessageKind.PAGE_SHIP, 12_500)  # 1 ms
        done.append(env.now)

    env.process(proc())
    env.process(proc())
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]


def test_account_only_skips_wire_time():
    env = Environment()
    net = Network(env, NetworkParameters())
    net.account_only(MessageKind.AGENT_REPORT)
    assert net.accounting.total_bytes == message_size(
        MessageKind.AGENT_REPORT
    )
    assert env.now == 0.0
