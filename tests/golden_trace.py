"""Golden workload trace for kernel-equivalence testing.

The (time, node, class, pages) operation trace of a seeded figure2 run
depends only on the DES kernel's event ordering and the named RNG
streams — open-system arrivals and Zipfian page draws never observe
buffer-manager state.  The checked-in golden file was recorded with the
pre-fast-path kernel, so reproducing it event-for-event proves that the
kernel optimizations (``__slots__``, the fused timeout→resume path, the
hoisted run loop) changed no simulated behaviour.

Regenerate (only after an *intentional* change to kernel ordering or
RNG semantics) with::

    PYTHONPATH=src python -m tests.golden_trace
"""

from __future__ import annotations

import os

from repro.cluster.config import NodeParameters, SystemConfig
from repro.experiments.calibration import GoalRange
from repro.experiments.figure2 import run_figure2
from repro.workload.trace import TraceRecorder

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_trace_figure2.jsonl"
)

#: The seeded 2-interval figure2 setup the golden trace pins down.
SEED = 42
INTERVALS = 2
WARMUP_MS = 4_000.0
CONFIG = SystemConfig(
    num_nodes=3,
    num_pages=400,
    node=NodeParameters(buffer_bytes=256 * 1024),
    observation_interval_ms=2000.0,
)
#: Fixed so the run needs no calibration phase.
GOAL_RANGE = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=8.0)


def generate_trace() -> TraceRecorder:
    """Run the pinned figure2 configuration and record its trace."""
    recorder = TraceRecorder()
    run_figure2(
        seed=SEED,
        intervals=INTERVALS,
        config=CONFIG,
        goal_range=GOAL_RANGE,
        warmup_ms=WARMUP_MS,
        recorder=recorder,
    )
    return recorder


def main() -> None:
    """Regenerate the golden file from the current kernel."""
    recorder = generate_trace()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    recorder.save(GOLDEN_PATH)
    print(f"{len(recorder.records)} records written to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
