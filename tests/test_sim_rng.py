"""Unit tests for reproducible named random streams."""

import pytest

from repro.sim.rng import RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(seed=42)
    b = RandomStreams(seed=42)
    assert [a.random("x") for _ in range(10)] == [
        b.random("x") for _ in range(10)
    ]


def test_different_seeds_differ():
    a = RandomStreams(seed=1)
    b = RandomStreams(seed=2)
    assert [a.random("x") for _ in range(5)] != [
        b.random("x") for _ in range(5)
    ]


def test_streams_are_independent():
    """Consuming one stream must not perturb another."""
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    for _ in range(100):
        a.random("noise")  # extra consumption on stream 'noise'
    assert [a.random("signal") for _ in range(10)] == [
        b.random("signal") for _ in range(10)
    ]


def test_stream_identity_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("s") is streams.stream("s")


def test_exponential_mean():
    streams = RandomStreams(seed=3)
    n = 20_000
    mean = sum(streams.exponential("e", 10.0) for _ in range(n)) / n
    assert mean == pytest.approx(10.0, rel=0.05)


def test_exponential_requires_positive_mean():
    streams = RandomStreams(seed=0)
    with pytest.raises(ValueError):
        streams.exponential("e", 0.0)


def test_uniform_bounds():
    streams = RandomStreams(seed=5)
    draws = [streams.uniform("u", 2.0, 3.0) for _ in range(1000)]
    assert all(2.0 <= d <= 3.0 for d in draws)


def test_randint_inclusive_bounds():
    streams = RandomStreams(seed=5)
    draws = {streams.randint("i", 0, 3) for _ in range(500)}
    assert draws == {0, 1, 2, 3}


def test_choice_draws_from_items():
    streams = RandomStreams(seed=5)
    items = ["a", "b", "c"]
    assert all(
        streams.choice("c", items) in items for _ in range(50)
    )
