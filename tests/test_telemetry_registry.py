"""Unit tests for the telemetry metrics registry and ring log."""

import pytest

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.ring import RingLog
from repro.telemetry.trace import TraceLog


def test_counter_accumulates():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_gauge_set_and_callable():
    gauge = Gauge()
    gauge.set(3.5)
    assert gauge.read() == 3.5
    sampled = Gauge(fn=lambda: 7.0)
    assert sampled.read() == 7.0


def test_histogram_tracks_stats_and_p95():
    hist = Histogram()
    for v in range(1, 101):
        hist.add(float(v))
    assert hist.count == 100
    assert hist.stats.mean == pytest.approx(50.5)
    assert hist.sum == pytest.approx(5050.0)
    assert hist.p95.value == pytest.approx(95.0, rel=0.05)


def test_registry_memoizes_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("hits", node=0)
    b = registry.counter("hits", node=0)
    c = registry.counter("hits", node=1)
    assert a is b
    assert a is not c
    a.inc()
    assert registry.counter("hits", node=0).value == 1


def test_registry_label_order_is_irrelevant():
    registry = MetricsRegistry()
    a = registry.counter("m", node=0, cls=1)
    b = registry.counter("m", cls=1, node=0)
    assert a is b


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("m")
    with pytest.raises(ValueError):
        registry.gauge("m")


def test_registry_samples_sorted():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a", node=1)
    registry.counter("a", node=0)
    names = [
        (name, labels) for _, name, labels, _ in registry.samples()
    ]
    assert names == sorted(names)


def test_ring_log_is_a_true_ring():
    ring = RingLog(3)
    for i in range(7):
        ring.append(i)
    assert list(ring) == [4, 5, 6]
    assert len(ring) == 3
    assert ring.appended == 7
    assert ring.evicted == 4
    assert ring[-1] == 6
    assert ring[0] == 4
    assert ring[1:] == [5, 6]


def test_ring_log_limit_shrink_keeps_newest():
    ring = RingLog(10)
    for i in range(6):
        ring.append(i)
    ring.limit = 2
    assert list(ring) == [4, 5]
    ring.append(6)
    assert list(ring) == [5, 6]


def test_ring_log_rejects_nonpositive_limit():
    with pytest.raises(ValueError):
        RingLog(0)


def test_trace_log_emits_and_counts_kinds():
    trace = TraceLog()
    trace.emit("a", 1.0, x=1)
    trace.emit("b", 2.0)
    trace.emit("a", 3.0)
    assert len(trace) == 3
    assert trace.kinds() == {"a": 2, "b": 1}
    assert trace.records[0] == {"kind": "a", "t": 1.0, "x": 1}
