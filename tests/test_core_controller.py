"""Integration tests for the feedback-loop controller inside the DES."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.messages import CONTROL_KINDS, MessageKind
from repro.core.controller import GoalOrientedController
from repro.workload.generator import WorkloadGenerator


def build_sim(fast_config, fast_workload, seed=0, **kwargs):
    cluster = Cluster(fast_config, seed=seed)
    goals = {c.class_id: c.goal_ms for c in fast_workload.goal_classes}
    controller = GoalOrientedController(cluster, goals, **kwargs)
    generator = WorkloadGenerator(cluster, fast_workload, sink=controller)
    generator.start()
    controller.start()
    return cluster, controller, generator


def test_interval_pacing(fast_config, fast_workload):
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    cluster.env.run(until=5 * fast_config.observation_interval_ms + 1)
    assert controller.interval_index == 5


def test_series_recorded_per_interval(fast_config, fast_workload):
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    cluster.env.run(until=6 * fast_config.observation_interval_ms + 1)
    series = controller.series[1]
    assert len(series.goal.values) == 6
    assert len(series.satisfied) == 6
    assert len(series.observed_rt.values) >= 1


def test_allocations_applied_to_cluster(fast_config, fast_workload):
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    cluster.env.run(until=10 * fast_config.observation_interval_ms + 1)
    # With a tight default goal the controller must have dedicated
    # memory to class 1 at some point.
    assert max(controller.series[1].dedicated_bytes.values) > 0


def test_dedicated_memory_never_exceeds_total(fast_config, fast_workload):
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    for _ in range(12):
        cluster.env.run(
            until=cluster.env.now + fast_config.observation_interval_ms
        )
        for node in cluster.nodes:
            assert (
                node.buffers.total_dedicated_bytes()
                + node.buffers.no_goal_bytes()
                == fast_config.node.buffer_bytes
            )


def test_control_messages_accounted(fast_config, fast_workload):
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    cluster.env.run(until=10 * fast_config.observation_interval_ms + 1)
    acc = cluster.network.accounting
    control = sum(
        acc.messages_by_kind.get(kind, 0) for kind in CONTROL_KINDS
    )
    assert control > 0
    assert acc.messages_by_kind.get(MessageKind.AGENT_REPORT, 0) > 0


def test_control_traffic_is_tiny_fraction(fast_config, fast_workload):
    """§7.5: control messages < 0.1 % of total traffic."""
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    cluster.env.run(until=15 * fast_config.observation_interval_ms + 1)
    assert cluster.network.accounting.control_fraction < 0.001


def test_set_goal_changes_recorded_goal(fast_config, fast_workload):
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    cluster.env.run(until=2 * fast_config.observation_interval_ms + 1)
    controller.set_goal(1, 42.0)
    cluster.env.run(until=4 * fast_config.observation_interval_ms + 1)
    assert controller.series[1].goal.values[-1] == 42.0


def test_interval_hooks_invoked(fast_config, fast_workload):
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    seen = []
    controller.on_interval(lambda ctrl, idx: seen.append(idx))
    cluster.env.run(until=4 * fast_config.observation_interval_ms + 1)
    assert seen == [1, 2, 3, 4]


def test_controller_cannot_start_twice(fast_config, fast_workload):
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    with pytest.raises(RuntimeError):
        controller.start()


def test_coordinator_homes_spread_round_robin(fast_config):
    cluster = Cluster(fast_config, seed=0)
    controller = GoalOrientedController(
        cluster, goals={1: 5.0, 2: 8.0, 3: 9.0, 4: 11.0}
    )
    homes = controller.coordinator_home
    assert homes[1] == 1
    assert homes[2] == 2
    assert homes[3] == 0  # 3 % 3 nodes
    assert homes[4] == 1


def test_unknown_class_completions_ignored(fast_config, fast_workload):
    """Operations of classes without coordinators must not crash."""
    cluster, controller, _ = build_sim(fast_config, fast_workload)
    controller.on_arrival(0, 77, now=cluster.env.now)
    controller.on_complete(0, 77, 1.0, now=cluster.env.now)
    cluster.env.run(until=2 * fast_config.observation_interval_ms + 1)
    assert controller.interval_index == 2
