"""Unit tests for measure points and the coordinator's point window."""

import numpy as np
import pytest

from repro.core.measure import MeasurePoint, MeasureWindow


def test_observe_creates_points():
    window = MeasureWindow(num_nodes=2)
    window.observe([100.0, 0.0], rt_goal=10.0, rt_nogoal=2.0, time=1.0)
    assert len(window) == 1
    assert window.newest.rt_goal == 10.0


def test_same_allocation_updates_with_smoothing():
    window = MeasureWindow(num_nodes=2, smoothing=0.5)
    window.observe([100.0, 0.0], rt_goal=10.0, rt_nogoal=2.0, time=1.0)
    window.observe([100.0, 0.0], rt_goal=20.0, rt_nogoal=4.0, time=2.0)
    assert len(window) == 1
    assert window.newest.rt_goal == pytest.approx(15.0)
    assert window.newest.rt_nogoal == pytest.approx(3.0)
    assert window.newest.time == 2.0


def test_smoothing_one_replaces():
    window = MeasureWindow(num_nodes=1, smoothing=1.0)
    window.observe([0.0], rt_goal=10.0, rt_nogoal=1.0, time=1.0)
    window.observe([0.0], rt_goal=30.0, rt_nogoal=3.0, time=2.0)
    assert window.newest.rt_goal == 30.0


def test_invalid_smoothing_rejected():
    with pytest.raises(ValueError):
        MeasureWindow(num_nodes=1, smoothing=0.0)


def test_wrong_allocation_shape_rejected():
    window = MeasureWindow(num_nodes=2)
    with pytest.raises(ValueError):
        window.observe([1.0], rt_goal=1.0, rt_nogoal=1.0, time=0.0)


def test_ready_after_n_plus_one_independent_points():
    window = MeasureWindow(num_nodes=2)
    window.observe([0.0, 0.0], 10.0, 1.0, time=0.0)
    assert not window.ready()
    window.observe([100.0, 0.0], 9.0, 1.1, time=1.0)
    assert not window.ready()
    window.observe([0.0, 100.0], 9.5, 1.2, time=2.0)
    assert window.ready()


def test_dependent_points_do_not_make_ready():
    window = MeasureWindow(num_nodes=2)
    # All allocations on a line in 2-D.
    window.observe([0.0, 0.0], 10.0, 1.0, time=0.0)
    window.observe([100.0, 100.0], 9.0, 1.1, time=1.0)
    window.observe([200.0, 200.0], 8.0, 1.2, time=2.0)
    window.observe([300.0, 300.0], 7.0, 1.3, time=3.0)
    assert not window.ready()
    assert len(window.selected_points()) == 2


def test_selection_prefers_most_recent():
    window = MeasureWindow(num_nodes=1)
    window.observe([0.0], 10.0, 1.0, time=0.0)
    window.observe([100.0], 9.0, 1.0, time=1.0)
    window.observe([200.0], 8.0, 1.0, time=2.0)
    points = window.selected_points()
    assert len(points) == 2
    assert points[0].allocation[0] == 200.0   # newest is the reference
    assert points[1].allocation[0] == 100.0   # most recent independent


def test_fit_planes_recovers_linear_surface():
    window = MeasureWindow(num_nodes=2)
    # RT_goal = 20 - 0.01*a - 0.02*b ; RT_nogoal = 1 + 0.005*(a+b)
    for i, (a, b) in enumerate([(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]):
        window.observe(
            [a, b],
            rt_goal=20.0 - 0.01 * a - 0.02 * b,
            rt_nogoal=1.0 + 0.005 * (a + b),
            time=float(i),
        )
    goal_plane, nogoal_plane = window.fit_planes()
    assert goal_plane.coefficients == pytest.approx([-0.01, -0.02])
    assert goal_plane.intercept == pytest.approx(20.0)
    assert nogoal_plane.coefficients == pytest.approx([0.005, 0.005])


def test_fit_planes_requires_ready_window():
    window = MeasureWindow(num_nodes=2)
    window.observe([0.0, 0.0], 10.0, 1.0, time=0.0)
    with pytest.raises(ValueError):
        window.fit_planes()


def test_max_age_expires_stale_points():
    window = MeasureWindow(num_nodes=1, max_age=10.0)
    window.observe([0.0], 10.0, 1.0, time=0.0)
    window.observe([100.0], 9.0, 1.0, time=8.0)
    assert window.ready(now=9.0)
    assert not window.ready(now=50.0)  # the t=0 point aged out


def test_history_limit_bounds_memory():
    window = MeasureWindow(num_nodes=1, history_limit=3)
    for i in range(10):
        window.observe([float(i * 10)], 10.0, 1.0, time=float(i))
    assert len(window) == 3


def test_same_allocation_tolerance():
    point = MeasurePoint(
        allocation=np.array([4096.0]), rt_goal=1.0, rt_nogoal=1.0, time=0.0
    )
    assert point.same_allocation([4096.2])
    assert not point.same_allocation([8192.0])
